"""The object server: serve a database over TCP and talk to it.

Run with::

    python examples/object_server.py

Starts an in-process :class:`~repro.server.ServerThread` on an
ephemeral port, then drives it from plain blocking clients: a CRUD
round trip, three concurrent writers interleaving appends on one
shared object, and a look at the request metrics the server records
through the observability registry.  The same client functions then
run unchanged against a 4-shard server — sharding is invisible on the
wire.
"""

import struct
import threading

from repro.api import EOSDatabase
from repro.server import EOSClient, ServerThread, ShardSet


def crud_roundtrip(port):
    with EOSClient(port=port) as c:
        print(f"  ping: {c.ping(b'hello')!r} echoed")
        oid = c.create(b"The quick brown fox", size_hint=4096)
        c.append(oid, b" jumps over the lazy dog")
        c.insert(oid, 19, b" really")
        size = c.size(oid)
        text = c.read(oid, 0, size)
        print(f"  oid {oid}: {size} bytes -> {text.decode()!r}")
        stat = c.stat(oid)
        print(
            f"  stat: {stat.segments} segment(s), height {stat.height}, "
            f"root page {stat.root_page}"
        )
        assert text == b"The quick brown fox really jumps over the lazy dog"
        return oid


def concurrent_appenders(port, n_writers=3, rounds=8):
    """Each writer appends tagged 32-byte chunks to one shared object."""
    with EOSClient(port=port) as c:
        shared = c.create(size_hint=n_writers * rounds * 32)

    def writer(wid):
        with EOSClient(port=port) as c:
            for seq in range(rounds):
                chunk = struct.pack("<II", wid, seq) + bytes(24)
                c.append(shared, chunk)

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(n_writers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    with EOSClient(port=port) as c:
        blob = c.read(shared, 0, c.size(shared))
    # Appends serialized on the object's root lock: every chunk landed
    # whole, none torn, none lost.
    tags = sorted(
        struct.unpack_from("<II", blob, off) for off in range(0, len(blob), 32)
    )
    assert tags == sorted(
        (w, s) for w in range(n_writers) for s in range(rounds)
    )
    print(
        f"  {n_writers} writers x {rounds} appends -> {len(blob)} bytes, "
        f"all {len(tags)} chunks intact"
    )


def sharded_server() -> None:
    """The identical workload against 4 shared-nothing shards."""
    shardset = ShardSet.create(4, num_pages=2048, page_size=512)
    with ServerThread(shards=shardset, port=0) as srv:
        print(f"serving 4 shards on 127.0.0.1:{srv.port}")
        oid = crud_roundtrip(srv.port)
        concurrent_appenders(srv.port)
        print(f"  oid {oid} lives on shard {oid % 4} (oid mod n_shards)")
        requests = srv.server.obs.metrics.counter("server.requests").value
        per_shard = {
            shard.index: shard.created for shard in shardset.shards
        }
        print(
            f"  served {requests} requests; objects per shard {per_shard}"
        )
    assert srv.leaked_tasks == []
    shardset.close()


def main() -> None:
    db = EOSDatabase.create(num_pages=4096, page_size=512)
    db.obs.enable()  # per-request spans, counters, latency histogram
    with ServerThread(db, port=0) as srv:
        print(f"serving on 127.0.0.1:{srv.port}")
        crud_roundtrip(srv.port)
        concurrent_appenders(srv.port)

        metrics = db.stats.metrics()
        lat = metrics["server.latency_ms"]
        print(
            f"  served {metrics['server.requests']} requests "
            f"({metrics['span.server.request']} traced spans), "
            f"mean latency {lat['sum'] / lat['count']:.2f} ms"
        )
    assert srv.leaked_tasks == []
    db.close()
    print("server stopped cleanly, no tasks leaked")

    sharded_server()
    print("sharded server stopped cleanly, no tasks leaked")


if __name__ == "__main__":
    main()
