"""A document editor over one large object, with transactional undo.

Section 1: office automation needs documents where "elements may be
removed from or new ones inserted at any place"; Section 4.5 sketches
how EOS protects such objects from failures.  This example:

1. loads a "manuscript" into a large object;
2. performs an editing session — inserts, cuts, and find-replace —
   entirely through piece-wise operations (the document is never
   rewritten wholesale);
3. runs one edit batch inside a transaction and aborts it, showing
   operation-level undo from the log;
4. simulates a crash in the middle of an update and recovers, showing
   the shadow-paged index switch kept the document consistent.

Run with::

    python examples/document_editor.py
"""

from repro import EOSConfig, EOSDatabase
from repro.recovery import RecoveryManager, SimulatedCrash

PAGE = 4096

LOREM = (
    b"Large objects are becoming an increasingly important issue of many "
    b"so called unconventional database applications. "
)


def build_manuscript(db):
    manuscript = db.create_object()
    for chapter in range(40):
        header = f"\n\n== Chapter {chapter} ==\n".encode()
        manuscript.append(header + LOREM * 50)
    manuscript.trim()
    return manuscript


def find(obj, needle: bytes, start: int = 0) -> int:
    """Naive search by chunked reads (the object may exceed memory)."""
    chunk = 64 * 1024
    overlap = len(needle) - 1
    position = start
    size = obj.size()
    while position < size:
        window = obj.read(position, min(chunk + overlap, size - position))
        hit = window.find(needle)
        if hit >= 0:
            return position + hit
        position += chunk
    return -1


def main() -> None:
    with EOSDatabase.create(
        num_pages=8192, page_size=PAGE,
        config=EOSConfig(page_size=PAGE, threshold=8),
    ) as db:
        edit_session(db)


def edit_session(db) -> None:
    manuscript = build_manuscript(db)
    print(f"manuscript: {manuscript.size():,} bytes, "
          f"{manuscript.stats().segments} segments")

    # --- ordinary editing -------------------------------------------------
    at = find(manuscript, b"== Chapter 7 ==")
    manuscript.insert(at, b"\n[EDITOR'S NOTE: chapter under revision]\n")
    cut_from = find(manuscript, b"== Chapter 20 ==")
    cut_to = find(manuscript, b"== Chapter 21 ==")
    manuscript.delete(cut_from, cut_to - cut_from)
    print(f"inserted a note, cut chapter 20: {manuscript.size():,} bytes")
    assert find(manuscript, b"== Chapter 20 ==") == -1
    assert find(manuscript, b"EDITOR'S NOTE") >= 0
    manuscript.verify()

    # --- a transactional edit batch, aborted ------------------------------
    recovery = RecoveryManager(db)
    before = manuscript.read_all()
    txn = recovery.begin()
    draft = txn.open(manuscript)
    draft.insert(0, b"DRAFT DRAFT DRAFT\n")
    draft.delete(draft.size() // 2, 10_000)
    draft.replace(100, b"<working title>")
    print(f"in transaction: {draft.size():,} bytes "
          f"({len(recovery.log)} log records)")
    txn.abort()
    assert manuscript.read_all() == before
    print("aborted: every operation undone from the log "
          f"({len(recovery.log)} log records incl. compensation)")

    # --- crash in the middle of an update ---------------------------------
    txn = recovery.begin()
    draft = txn.open(manuscript)
    draft.insert(500, b"half-done edit #1 ")
    recovery.crash_before_root_write = True
    try:
        draft.insert(900, b"half-done edit #2 ")
    except SimulatedCrash as crash:
        print(f"simulated crash: {crash}")
    recovery.crash_before_root_write = False
    undone = recovery.recover()
    print(f"recovery undid {undone[txn.txn_id]} committed update(s) of the "
          f"loser transaction; second insert needed no undo (never switched)")
    assert manuscript.read_all() == before
    manuscript.verify()
    print("document byte-identical to the pre-transaction state")


if __name__ == "__main__":
    main()
