"""An "insertable array" — a long list stored as one large object.

Section 1 names "general-purpose advanced data modeling constructs such
as long lists or 'insertable' arrays" as a core use case: "in
manipulating a long list stored as a large object, elements may be
removed from or new ones inserted at any place within the list."

This example builds a tiny persistent-array abstraction on the public
API: fixed-size records addressed by index, with O(bytes-moved) insert
and remove anywhere — the operations a positional tree makes cheap and a
Starburst-style flat layout makes O(list size).

Run with::

    python examples/long_array.py
"""

import struct

from repro import EOSConfig, EOSDatabase
from repro.baselines import StarburstStore
from repro.core.object import LargeObject

PAGE = 4096
RECORD = struct.Struct("<q32s")  # a key and a fixed-width payload


class PersistentArray:
    """Fixed-width records in a large object, insertable at any index."""

    def __init__(self, obj: LargeObject) -> None:
        self.obj = obj

    def __len__(self) -> int:
        return self.obj.size() // RECORD.size

    def get(self, index: int) -> tuple[int, bytes]:
        raw = self.obj.read(index * RECORD.size, RECORD.size)
        key, payload = RECORD.unpack(raw)
        return key, payload.rstrip(b"\0")

    def set(self, index: int, key: int, payload: bytes) -> None:
        self.obj.replace(index * RECORD.size, RECORD.pack(key, payload))

    def insert(self, index: int, key: int, payload: bytes) -> None:
        self.obj.insert(index * RECORD.size, RECORD.pack(key, payload))

    def remove(self, index: int) -> None:
        self.obj.delete(index * RECORD.size, RECORD.size)

    def append(self, key: int, payload: bytes) -> None:
        self.obj.append(RECORD.pack(key, payload))

    def keys(self) -> list[int]:
        size = self.obj.size()
        out = []
        for offset in range(0, size, 64 * RECORD.size):
            block = self.obj.read(offset, min(64 * RECORD.size, size - offset))
            for i in range(0, len(block), RECORD.size):
                key, _ = RECORD.unpack(block[i : i + RECORD.size])
                out.append(key)
        return out


def main() -> None:
    with EOSDatabase.create(
        num_pages=8192, page_size=PAGE,
        config=EOSConfig(page_size=PAGE, threshold=8),
    ) as db:
        run(db)


def run(db) -> None:
    array = PersistentArray(db.create_object())

    # --- bulk load ---------------------------------------------------------
    for key in range(0, 40_000, 2):  # even keys only
        array.append(key, b"payload-%d" % key)
    array.obj.trim()
    print(f"loaded {len(array):,} records "
          f"({array.obj.size():,} bytes, {array.obj.stats().segments} segments)")

    # --- list surgery ------------------------------------------------------
    array.insert(10_000 // 2, 9_999, b"odd one in")   # splice in the middle
    assert array.get(5_000) == (9_999, b"odd one in")
    assert array.get(5_001) == (10_000, b"payload-10000")
    array.remove(0)
    assert array.get(0) == (2, b"payload-2")
    array.set(100, 777, b"overwritten")
    assert array.get(100) == (777, b"overwritten")
    print("insert / remove / overwrite at arbitrary indexes verified")

    # --- middle insert cost: EOS vs a Starburst-style flat layout ----------
    with db.stats.delta(cold=True) as eos_cost:
        array.insert(len(array) // 2, -1, b"eos probe")
    star = StarburstStore(db.buddy, db.segio)
    flat = star.create(bytes(array.obj.size()), size_hint=array.obj.size())
    with db.stats.delta(cold=True) as star_cost:
        star.insert(flat, star.size(flat) // 2, RECORD.pack(-1, b"star probe"))
    print(
        f"middle insert: EOS {eos_cost.page_transfers} page transfers vs "
        f"flat layout {star_cost.page_transfers} (copies the whole right half)"
    )
    assert eos_cost.page_transfers < star_cost.page_transfers / 5

    # --- invariants ---------------------------------------------------------
    array.obj.verify()
    keys = array.keys()
    assert len(keys) == len(array)
    print(f"scan of {len(keys):,} records intact; structure verified")


if __name__ == "__main__":
    main()
