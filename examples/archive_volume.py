"""A persistent archive volume: streams, save/reopen, inspect, fsck.

Shows the "production" surface of the library beyond the paper's core
algorithms:

1. ingest several blobs through the file-like :class:`ObjectStream`
   (``shutil.copyfileobj`` works unmodified);
2. persist the whole database to a single image file;
3. re-open it in a fresh process state and keep editing;
4. dump structures with the inspection tools and run fsck.

Run with::

    python examples/archive_volume.py
"""

import io
import shutil
import tempfile
from pathlib import Path

from repro import EOSConfig, EOSDatabase, ObjectStream
from repro.tools import dump_volume, fsck
from repro.util.fmt import human_bytes

PAGE = 4096


def synthetic_blob(name: str, size: int) -> bytes:
    seed = sum(name.encode())
    return bytes((i * 7 + seed) % 256 for i in range(size))


def main() -> None:
    blobs = {
        "sensor.log": synthetic_blob("sensor.log", 700_000),
        "image.raw": synthetic_blob("image.raw", 2_000_000),
        "notes.txt": synthetic_blob("notes.txt", 12_345),
    }
    image = Path(tempfile.mkdtemp()) / "archive.db"
    oids = ingest(image, blobs)
    reopen_and_verify(image, blobs, oids)


def ingest(image, blobs) -> dict:
    # --- ingest through the stream interface ------------------------------
    with EOSDatabase.create(
        num_pages=8192, page_size=PAGE,
        config=EOSConfig(page_size=PAGE, threshold=8),
    ) as db:
        oids = {}
        for name, data in blobs.items():
            obj = db.create_object()
            with ObjectStream(obj) as stream:
                shutil.copyfileobj(io.BytesIO(data), stream, length=64 * 1024)
            oids[name] = obj.oid
            print(f"ingested {name}: {human_bytes(len(data))} -> oid {obj.oid}")

        # --- persist (before close: a closed database refuses to save) ----
        db.save(image)
        print(f"\nsaved volume image: {image} "
              f"({human_bytes(image.stat().st_size)})")
    return oids


def reopen_and_verify(image, blobs, oids) -> None:
    # --- reopen and keep working ----------------------------------------------
    archive = EOSDatabase.open_file(image)
    print("\nreopened:")
    print(dump_volume(archive))

    log = archive.get_object(oids["sensor.log"])
    with ObjectStream(log) as stream:
        stream.seek(0, io.SEEK_END)
        stream.write(b"APPENDED AFTER RESTART\n" * 100)
    assert log.read_all().endswith(b"APPENDED AFTER RESTART\n")
    print(f"\nappended to sensor.log after restart: now "
          f"{human_bytes(log.size())}")

    # Verify a reopened blob byte-for-byte.
    img = archive.get_object(oids["image.raw"])
    assert img.read_all() == blobs["image.raw"]
    print("image.raw verified byte-for-byte after reopen")

    # --- integrity -------------------------------------------------------------
    report = fsck(archive)
    print("\n" + report.summary())
    assert report.clean

    # --- delete and check space comes back --------------------------------------
    free_before = archive.free_pages()
    archive.delete_object(archive.get_object(oids["image.raw"]))
    freed = archive.free_pages() - free_before
    print(f"\ndeleted image.raw: {freed} pages "
          f"({human_bytes(freed * PAGE)}) reclaimed")
    assert fsck(archive).clean


if __name__ == "__main__":
    main()
