"""Tuning the segment-size threshold T to a workload (Section 4.4).

The paper's guidance: "For often-updated objects, the T value should be
somewhat larger than the size of the search operations expected to be
applied on the object ... for more static objects where the cost of
updates is of little or no concern, the larger the segment size the
better the overall performance."

This example shows the workflow a real deployment would use:

1. group objects into *files* carrying per-file threshold hints
   ("per-object or per-file basis");
2. measure a candidate workload under a few T values;
3. apply the winner to the file — existing objects pick it up, since
   "the threshold value does not have to be constant during the lifetime
   of a large object".

Run with::

    python examples/threshold_tuning.py
"""

from repro import EOSConfig, EOSDatabase
from repro.storage.geometry import DISK_1992
from repro.workloads.generator import random_edits, random_reads

PAGE = 512
OBJECT_BYTES = 150_000
READ_BYTES = 8 * PAGE


def measure(threshold: int, reads: int, edits: int) -> float:
    """Total modelled ms for one read/edit mix at one threshold."""
    with EOSDatabase.create(
        num_pages=8192, page_size=PAGE,
        config=EOSConfig(page_size=PAGE, threshold=threshold),
    ) as db:
        obj = db.create_object(
            bytes(i % 251 for i in range(OBJECT_BYTES)), size_hint=OBJECT_BYTES
        )
        ops = list(random_edits(OBJECT_BYTES, edits, edit_bytes=48, seed=1))
        ops += list(random_reads(OBJECT_BYTES - 10_000, READ_BYTES, reads, seed=2))
        with db.stats.delta(cold=True) as delta:
            for op in ops:
                if op.kind == "insert":
                    obj.insert(op.offset, op.data)
                elif op.kind == "delete":
                    obj.delete(op.offset, op.length)
                else:
                    obj.read(op.offset, op.length)
        return DISK_1992.cost_ms(delta.seeks, delta.page_transfers, PAGE)


def main() -> None:
    mixes = {"archive (read-heavy)": (90, 10), "workspace (edit-heavy)": (10, 90)}
    candidates = (1, 4, 16, 32)

    print(f"profiling {len(mixes)} workload mixes x T in {candidates} "
          f"(reads are {READ_BYTES // PAGE} pages)\n")
    winners = {}
    for name, (reads, edits) in mixes.items():
        costs = {t: measure(t, reads, edits) for t in candidates}
        best = min(costs, key=costs.get)
        winners[name] = best
        row = "  ".join(f"T={t}: {ms:6.0f}ms" for t, ms in costs.items())
        print(f"{name:<24} {row}   -> best T={best}")

    # Apply the findings through per-file hints.
    with EOSDatabase.create(
        num_pages=8192, page_size=PAGE, config=EOSConfig(page_size=PAGE)
    ) as db:
        archive = db.create_file(
            "archive", threshold=winners["archive (read-heavy)"]
        )
        workspace = db.create_file(
            "workspace", threshold=winners["workspace (edit-heavy)"]
        )
        a = archive.create_object(bytes(50_000))
        w = workspace.create_object(bytes(50_000))
        print(f"\nfiles configured: archive T={a.policy.base}, "
              f"workspace T={w.policy.base}")

        # Access patterns changed? Retune the whole file at once.
        workspace.set_threshold(max(4, winners["archive (read-heavy)"] // 2))
        print(f"workspace retuned to T={w.policy.base} "
              f"(objects pick the new hint up immediately)")
        assert w.policy.base == workspace.threshold


if __name__ == "__main__":
    main()
