"""A multimedia clip store: the paper's motivating application.

Section 1: multimedia applications "require displaying images, showing
movies, or playing digital sound recordings in real time" — sustained
sequential throughput — and editing: "movie spots may be edited to
remove or add frames".

This example stores a "video" as one large object (fixed-size frames),
then:

1. plays it back frame by frame, showing that the modelled I/O rate is
   close to the disk's raw transfer rate (objective 3);
2. cuts a scene (delete a frame range) and splices in new footage
   (insert), neither of which rewrites the rest of the clip;
3. compares playback on EOS against WiSS-style slice storage, where
   "virtually every disk page fetch will most likely result in a disk
   seek".

Run with::

    python examples/multimedia_store.py
"""

from repro import EOSConfig, EOSDatabase
from repro.baselines import Placement, WissStore
from repro.storage.geometry import DISK_1992
from repro.util.fmt import human_bytes

PAGE = 4096
FRAME_BYTES = 24 * 1024          # a small "frame"
N_FRAMES = 400                   # ~9.4 MB clip
FRAME_RATE = 24                  # frames/second the player must sustain


def frame(i: int) -> bytes:
    return bytes((i + j) % 256 for j in range(FRAME_BYTES))


def playback(db, read_frame) -> tuple[int, int, float]:
    """Play every frame; returns (seeks, transfers, modelled ms)."""
    with db.stats.delta(cold=True) as d:
        for i in range(N_FRAMES):
            read_frame(i)
    return d.seeks, d.page_transfers, DISK_1992.cost_ms(
        d.seeks, d.page_transfers, PAGE
    )


def main() -> None:
    with EOSDatabase.create(
        num_pages=8240,
        page_size=PAGE,
        config=EOSConfig(page_size=PAGE, threshold=16),
        # Several buddy spaces: lets the WiSS comparison model an aged,
        # shared volume where slice allocations scatter.
        space_capacity=1024,
    ) as db:
        run(db)


def run(db) -> None:
    # --- ingest: the camera appends frames as they arrive ----------------
    clip = db.create_object()
    for i in range(N_FRAMES):
        clip.append(frame(i))
    clip.trim()
    stats = clip.stats()
    print(
        f"ingested {N_FRAMES} frames ({human_bytes(stats.size_bytes)}) into "
        f"{stats.segments} segments / {stats.leaf_pages} pages"
    )

    # --- playback ----------------------------------------------------------
    seeks, transfers, ms = playback(
        db, lambda i: clip.read(i * FRAME_BYTES, FRAME_BYTES)
    )
    budget_ms = N_FRAMES / FRAME_RATE * 1000
    print(
        f"playback: {seeks} seeks, {transfers} page transfers, "
        f"~{ms:.0f} ms modelled (realtime budget at {FRAME_RATE} fps: "
        f"{budget_ms:.0f} ms) -> {'OK' if ms < budget_ms else 'TOO SLOW'}"
    )

    # --- editing: cut frames 100..149, splice 10 new frames at 200 -------
    clip.delete(100 * FRAME_BYTES, 50 * FRAME_BYTES)
    new_footage = b"".join(frame(1000 + i) for i in range(10))
    clip.insert((200 - 50) * FRAME_BYTES, new_footage)
    clip.verify()
    n_frames_now = clip.size() // FRAME_BYTES
    print(f"edited: cut 50 frames, spliced 10 -> {n_frames_now} frames")
    # The frame that was at 150 before the cut is at 100 now.
    assert clip.read(100 * FRAME_BYTES, FRAME_BYTES) == frame(150)
    # The spliced footage begins at frame 150.
    assert clip.read(150 * FRAME_BYTES, FRAME_BYTES) == frame(1000)

    seeks, transfers, ms = playback(
        db, lambda i: clip.read(i * FRAME_BYTES, FRAME_BYTES)
        if i < n_frames_now else None
    )
    print(
        f"playback after editing: {seeks} seeks, ~{ms:.0f} ms "
        f"(threshold T=16 kept the segments large)"
    )

    # --- the same clip on WiSS-style slices --------------------------------
    wiss = WissStore(db.buddy, db.segio, placement=Placement.SCATTERED,
                     max_slices=4000)
    wiss_clip = wiss.create(b"".join(frame(i) for i in range(N_FRAMES)))
    with db.stats.delta(cold=True) as d:
        for i in range(N_FRAMES):
            wiss.read(wiss_clip, i * FRAME_BYTES, FRAME_BYTES)
    wiss_ms = DISK_1992.cost_ms(d.seeks, d.page_transfers, PAGE)
    print(
        f"the same playback on WiSS slices: {d.seeks} seeks, ~{wiss_ms:.0f} ms "
        f"({wiss_ms / ms:.0f}x slower — {'misses' if wiss_ms > budget_ms else 'meets'} "
        f"the realtime budget)"
    )


if __name__ == "__main__":
    main()
