"""Quickstart: the EOS large object manager in ten operations.

Run with::

    python examples/quickstart.py

Creates an in-memory database, stores a large object, and exercises
every operation the paper defines — append, read, replace, insert,
delete, truncate — while showing the object's physical shape and the
I/O each step performed.
"""

from repro import EOSConfig, EOSDatabase
from repro.storage.geometry import DISK_1992
from repro.util.fmt import human_bytes


def show(db, obj, label):
    stats = obj.stats()
    print(
        f"  {label:<28} size={human_bytes(stats.size_bytes):>9}  "
        f"segments={stats.segments:>3}  leaf pages={stats.leaf_pages:>4}  "
        f"tree height={stats.height}  utilization={stats.utilization(db.config.page_size):.1%}"
    )


def main() -> None:
    # A 64 MB simulated volume with 4 KB pages and a segment-size
    # threshold of 8 pages (Section 4.4's middle-of-the-road setting).
    # The context manager flushes and releases everything on exit.
    with EOSDatabase.create(
        num_pages=16_384,
        page_size=4096,
        config=EOSConfig(page_size=4096, threshold=8),
    ) as db:
        run(db)


def run(db) -> None:
    print("formatted volume:", human_bytes(db.disk.size_bytes),
          f"({db.volume.n_spaces} buddy space(s))")

    # --- create with a size hint: one exactly-sized segment -------------
    payload = bytes(i % 251 for i in range(1_000_000))
    obj = db.create_object(size_hint=len(payload))
    obj.append(payload)
    obj.trim()
    show(db, obj, "created 1 MB (size hint)")

    # --- sequential scan: one seek per segment ---------------------------
    with db.stats.delta(cold=True) as d:
        for offset in range(0, obj.size(), 64 * 1024):
            obj.read(offset, min(64 * 1024, obj.size() - offset))
    print(
        f"  full scan: {d.seeks} seeks, {d.page_reads} page transfers "
        f"(~{DISK_1992.cost_ms(d.seeks, d.page_transfers, db.config.page_size):.0f} ms on a 1992 disk)"
    )

    # --- piece-wise updates ----------------------------------------------
    obj.replace(500_000, b"[REPLACED IN PLACE]")
    show(db, obj, "after replace")

    obj.insert(250_000, b"<" + bytes(5_000) + b">")
    show(db, obj, "after 5 KB insert")

    obj.delete(100_000, 50_000)
    show(db, obj, "after 50 KB delete")

    obj.truncate(800_000)
    show(db, obj, "after truncate to 800 KB")

    # --- the data is exactly what it should be ---------------------------
    model = bytearray(payload)
    model[500_000:500_019] = b"[REPLACED IN PLACE]"
    model[250_000:250_000] = b"<" + bytes(5_000) + b">"
    del model[100_000:150_000]
    del model[800_000:]
    assert obj.read_all() == bytes(model)
    print("  content verified against a reference model")

    # --- structural invariants and space accounting ---------------------
    obj.verify()
    free_before = db.free_pages()
    db.delete_object(obj)
    print(
        f"  object destroyed: {db.free_pages() - free_before} pages returned "
        f"to the buddy system"
    )


if __name__ == "__main__":
    main()
