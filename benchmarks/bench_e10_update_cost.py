"""E10 — the Section 4.3 I/O-cost statements, measured one by one.

* Insert: "one or two (physically adjacent) pages from the original leaf
  segment have to be read" and "the algorithm will add at most two new
  entries in the parent" (basic algorithm, T=1).
* Delete: "deletions where the last byte to be deleted happens to be the
  last byte of a page ... can be completed without accessing any
  segment"; truncation and whole-object deletion likewise.
* Otherwise one leaf page is read (the one with the last deleted byte),
  plus one or two more if bytes are shuffled.
"""

from repro.bench.harness import make_database
from repro.bench.reporting import ExperimentReport

PAGE = 512
SIZE = 100_000


def fresh_object(db):
    payload = bytes(i % 251 for i in range(SIZE))
    obj = db.create_object(payload, size_hint=SIZE)
    db.checkpoint()
    return obj


def leaf_reads_during(db, obj, action):
    """Count reads that touch the object's current leaf pages."""
    leaf_pages = {
        e.child + i for _, e in obj.segments() for i in range(e.pages)
    }
    db.pool.clear()
    touched = []
    original = db.disk.read_pages

    def spy(first, n=1):
        touched.extend(range(first, first + n))
        return original(first, n)

    db.disk.read_pages = spy
    try:
        action()
    finally:
        db.disk.read_pages = original
    return len(set(touched) & leaf_pages)


def test_e10_update_cost_statements(benchmark):
    report = ExperimentReport(
        "E10",
        "Leaf pages read per update (basic algorithms, T=1)",
        ["operation", "leaf pages read", "paper's statement"],
        page_size=PAGE,
    )
    db = make_database(page_size=PAGE, num_pages=8192, threshold=1)

    obj = fresh_object(db)
    n = leaf_reads_during(db, obj, lambda: obj.insert(SIZE // 2 + 100, b"i" * 50))
    report.add_row(["insert mid-page", n, "one or two pages"])
    assert 1 <= n <= 2

    obj = fresh_object(db)
    n = leaf_reads_during(db, obj, lambda: obj.insert(SIZE // 2 + 100, b"i" * 3000))
    report.add_row(["insert large blob", n, "one or two pages"])
    assert 1 <= n <= 2

    obj = fresh_object(db)
    entries_before = len(obj.segments())
    obj.insert(SIZE // 2 + 100, b"x" * 40)
    assert len(obj.segments()) <= entries_before + 2  # at most two new entries

    obj = fresh_object(db)
    n = leaf_reads_during(db, obj, lambda: obj.delete(3 * PAGE + 100, 50))
    report.add_row(["delete mid-page", n, "one page (+shuffle donors)"])
    assert 1 <= n <= 3

    obj = fresh_object(db)
    n = leaf_reads_during(db, obj, lambda: obj.delete(2 * PAGE, 4 * PAGE))
    report.add_row(["delete ending on page boundary", n, "no segment access"])
    assert n == 0

    obj = fresh_object(db)
    n = leaf_reads_during(db, obj, lambda: obj.truncate(SIZE // 3))
    report.add_row(["truncate", n, "no segment access"])
    assert n == 0

    obj = fresh_object(db)
    n = leaf_reads_during(db, obj, lambda: obj.delete(0, SIZE))
    report.add_row(["delete whole object", n, "no segment access"])
    assert n == 0

    report.note("index pages are read (buffered); leaf segments only when bytes move")
    report.attach_stats(db)
    report.emit()

    db2 = make_database(page_size=PAGE, num_pages=8192, threshold=1)
    obj2 = fresh_object(db2)
    offsets = iter(range(1000, SIZE, 997))

    def one_insert():
        obj2.insert(next(offsets), b"y" * 30)

    benchmark.pedantic(one_insert, rounds=20, iterations=1)
