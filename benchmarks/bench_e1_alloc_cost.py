"""E1 — allocation cost: one directory page, regardless of segment size.

Objective 4 (Section 1): "allocation of large physically contiguous disk
space should be fast; ideally, 1 disk access regardless of the space
size."  Section 3.3: "the entire activity of allocating and deallocating
segments is carried out by examining the directory page only", and the
superdirectory keeps multi-space databases from probing every directory.

The foil is a block-at-a-time bitmap allocator over the same number of
pages: its first-fit scan must walk the occupied prefix of the volume,
touching one map page per 4096 pages scanned, and then flip a bit for
every page of the run.

The volume is ~60,000 pages of 512 bytes (31 buddy spaces), half full
before each measured allocation.
"""

from repro.bench.reporting import ExperimentReport
from repro.buddy.bitmap import BitmapAllocator
from repro.buddy.directory import max_capacity
from repro.buddy.manager import BuddyManager
from repro.storage.disk import DiskVolume
from repro.storage.volume import Volume

PAGE = 512
SPACE_CAPACITY = max_capacity(PAGE)  # 1936 pages
N_SPACES = 31
CAPACITY = N_SPACES * SPACE_CAPACITY


def fresh_buddy():
    disk = DiskVolume(num_pages=1 + N_SPACES * (1 + SPACE_CAPACITY), page_size=PAGE)
    volume = Volume.format(disk, n_spaces=N_SPACES, space_capacity=SPACE_CAPACITY)
    manager = BuddyManager.format(volume, write_through=False)
    # Fill the first half of the volume.
    for _ in range(N_SPACES):
        if manager.free_pages() <= CAPACITY // 2:
            break
        manager.allocate(manager.max_segment_pages)
    return disk, manager


def fresh_bitmap():
    disk = DiskVolume(num_pages=CAPACITY + 32, page_size=PAGE)
    bitmap = BitmapAllocator(disk, first_page=0, capacity=CAPACITY)
    bitmap.allocate(CAPACITY // 2)
    return disk, bitmap


def test_e1_allocation_touches_one_page(benchmark):
    report = ExperimentReport(
        "E1",
        "Disk pages touched per allocation (half-full 60k-page volume, cold cache)",
        ["segment pages", "buddy dir reads", "buddy dir writes", "bitmap map touches"],
        page_size=PAGE,
    )
    max_seg = None
    for size in (1, 16, 128, 1024):
        disk, manager = fresh_buddy()
        max_seg = manager.max_segment_pages
        manager.pool.clear()
        disk.stats.reset()
        with disk.stats.delta() as d:
            manager.allocate(size)
            manager.pool.flush_all()
        bdisk, bitmap = fresh_bitmap()
        bitmap.map_page_touches = 0
        bitmap.allocate(size)
        report.add_row([size, d.page_reads, d.page_writes, bitmap.map_page_touches])
        # The headline claim: one directory read, any segment size.  The
        # superdirectory steers straight to a space with room, so the 15
        # full spaces are never touched.
        assert d.page_reads == 1
        assert d.page_writes == 1
        assert bitmap.map_page_touches > 2
    assert max_seg == 1024
    report.note(
        "the bitmap's first-fit scan walks ~30,000 occupied bits (8 map "
        "pages) before finding room; the buddy system's superdirectory + "
        "count array goes straight to the right directory page"
    )
    report.emit()

    disk, manager = fresh_buddy()

    def alloc_free_cycle():
        ref = manager.allocate(1024)
        manager.free_segment(ref)

    benchmark(alloc_free_cycle)
