"""E6 — the Exodus page-size dilemma vs the EOS threshold.

Section 2: Exodus's fixed leaf size "does not help applications that
want to simultaneously optimize both search time and storage utilization
because the size of the leaf page has diametrically different effects on
them.  Large pages waste too much space at the end of partially full
pages (but offer good search time), and small pages offer good storage
utilization (but require doing many I/O's for reads)."

Both systems run the same build + edit + scan workload.  Exodus is swept
over leaf sizes; EOS over thresholds.  The table shows Exodus trading
one metric for the other while EOS's larger T improves both.
"""

from repro.bench.harness import apply_trace, make_database, run_trace_measured
from repro.bench.reporting import ExperimentReport
from repro.baselines import EOSStore, ExodusStore, Placement
from repro.workloads.generator import random_edits, sequential_scan

PAGE = 512
OBJECT_BYTES = 200_000
EDITS = 150
CHUNK = 16 * PAGE


def run_store(db, store):
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    handle = store.create(payload, size_hint=OBJECT_BYTES)
    apply_trace(
        store, handle, random_edits(OBJECT_BYTES, EDITS, edit_bytes=60, seed=3)
    )
    if hasattr(handle, "trim"):
        handle.trim()
    stats = store.stats(handle)
    delta = run_trace_measured(
        db, store, handle, sequential_scan(store.size(handle), CHUNK),
        cold_cache=True,
    )
    return stats, delta


def run_all():
    rows = []
    for leaf_pages in (1, 2, 4, 8):
        db = make_database(page_size=PAGE, num_pages=16384, space_capacity=1024)
        store = ExodusStore(
            db.buddy, db.segio, db.pager, leaf_pages=leaf_pages,
            placement=Placement.SCATTERED,
        )
        rows.append((store.name, *run_store(db, store)))
    for threshold in (1, 4, 16):
        db = make_database(
            page_size=PAGE, num_pages=16384, threshold=threshold,
            space_capacity=1024,
        )
        rows.append((f"EOS(T={threshold})", *run_store(db, EOSStore(db))))
    return rows


def test_e6_tradeoff(benchmark):
    rows = run_all()
    report = ExperimentReport(
        "E6",
        f"Utilization vs scan cost after {EDITS} edits (~200 KB object)",
        ["system", "utilization", "scan seeks", "scan ms"],
        page_size=PAGE,
    )
    data = {}
    for name, stats, delta in rows:
        report.add_row(
            [
                name,
                f"{stats.utilization(PAGE):.1%}",
                delta.seeks,
                f"{report.cost_ms(delta):.0f}",
            ]
        )
        data[name] = (stats.utilization(PAGE), delta.seeks)
    # Exodus's dilemma: utilization falls as leaves grow...
    assert data["Exodus(1p)"][0] > data["Exodus(8p)"][0]
    # ...while seeks fall as leaves grow.
    assert data["Exodus(1p)"][1] > data["Exodus(8p)"][1]
    # EOS with a bigger threshold improves BOTH metrics.
    assert data["EOS(T=16)"][0] >= data["EOS(T=1)"][0]
    assert data["EOS(T=16)"][1] < data["EOS(T=1)"][1]
    # And EOS(T=16) beats every Exodus configuration on seeks while
    # matching the best Exodus utilization.
    assert all(
        data["EOS(T=16)"][1] <= data[f"Exodus({l}p)"][1] for l in (1, 2, 4, 8)
    )
    report.note(
        "Exodus must pick a side of the trade-off; variable-size segments "
        "with a threshold optimize search time and utilization together"
    )
    report.emit()

    benchmark.pedantic(run_all, rounds=1, iterations=1)
