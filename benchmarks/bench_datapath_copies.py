"""DATAPATH — copies per scanned byte, disk to caller and disk to wire.

The zero-copy data path promises exactly one Python-level payload copy
per read: the final assembly that hands the caller owned bytes.  This
bench *measures* it with the :mod:`repro.util.copytrace` ledger — every
sanctioned copy site reports its byte count — rather than trusting the
code to be as zero-copy as it claims:

* ``direct`` — 1 MB chunked scan of a 64 MB object via
  :meth:`LargeObject.read`; the one copy is the final
  ``b"".join`` of borrowed page views (``search.assemble``).
* ``server_e2e`` — the same scan through a live TCP server with
  :meth:`EOSClient.read_into`; the one copy is the server-side
  assembly, the response rides the wire as borrowed iovec frames and
  lands in the client's buffer via ``recv_into``.

The committed pre-change baseline (``benchmarks/results/baseline/``)
recorded 2 copies/byte direct and 4 copies/byte end-to-end;
``benchmarks/regress.py`` fails CI if either count ever rises again.
"""

import time

from common import ExperimentReport

from repro.api import EOSDatabase
from repro.server import EOSClient, ServerThread
from repro.util import copytrace

PAGE = 4096
OBJECT_MB = 64
OBJECT_BYTES = OBJECT_MB << 20
CHUNK = 1 << 20
# Any copy site beyond the single sanctioned assembly shows up as at
# least one page per chunk, i.e. >> this slack (which only absorbs
# stray index-page pool misses).
COPY_SLACK = 0.02


# Copy counts are deterministic; wall time is not.  Each path scans
# PASSES times and reports the best pass, which damps scheduler noise
# without hiding a real regression.
PASSES = 2


def _scan_direct(obj):
    """Best-of-PASSES full scans; returns (copies_per_byte, mb_per_s)."""
    best = 0.0
    for _ in range(PASSES):
        with copytrace.tracking() as ledger:
            t0 = time.perf_counter()
            got = 0
            for off in range(0, OBJECT_BYTES, CHUNK):
                got += len(obj.read(off, min(CHUNK, OBJECT_BYTES - off)))
            elapsed = time.perf_counter() - t0
        assert got == OBJECT_BYTES
        best = max(best, OBJECT_MB / elapsed)
    return ledger.bytes_copied / OBJECT_BYTES, best


def _scan_server(port, oid):
    """Best-of-PASSES scans via read_into; returns (copies_per_byte, mb_per_s)."""
    dest = bytearray(CHUNK)
    best = 0.0
    with EOSClient(port=port, timeout=120.0) as c:
        c.read_into(oid, 0, CHUNK, dest)  # warm the connection
        for _ in range(PASSES):
            with copytrace.tracking() as ledger:
                t0 = time.perf_counter()
                got = 0
                for off in range(0, OBJECT_BYTES, CHUNK):
                    got += c.read_into(
                        oid, off, min(CHUNK, OBJECT_BYTES - off), dest
                    )
                elapsed = time.perf_counter() - t0
            assert got == OBJECT_BYTES
            best = max(best, OBJECT_MB / elapsed)
    return ledger.bytes_copied / OBJECT_BYTES, best


def run_all():
    db = EOSDatabase.create(num_pages=33000, page_size=PAGE)
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    obj = db.create_object(size_hint=OBJECT_BYTES)
    obj.append(payload)
    obj.trim()
    # Warm-up pass: pools the index pages and checks content fidelity,
    # so the measured passes count data-path copies only.
    assert obj.read(0, CHUNK) == payload[:CHUNK]
    assert obj.read(OBJECT_BYTES - CHUNK, CHUNK) == payload[-CHUNK:]

    direct_copies, direct_mbs = _scan_direct(obj)
    with ServerThread(db, port=0) as srv:
        server_copies, server_mbs = _scan_server(srv.port, obj.oid)

    snap = db.stats.snapshot()
    io = {
        "seeks": snap.seeks,
        "page_transfers": snap.page_transfers,
        "page_reads": snap.page_reads,
        "page_writes": snap.page_writes,
    }
    db.close()
    return (
        [
            ["direct", round(direct_copies, 3), round(direct_mbs, 1)],
            ["server_e2e", round(server_copies, 3), round(server_mbs, 1)],
        ],
        io,
    )


def test_datapath_copies(benchmark):
    t0 = time.perf_counter()
    rows, io = run_all()
    wall_ms = (time.perf_counter() - t0) * 1000.0
    report = ExperimentReport(
        "DATAPATH",
        f"Data-path copy count and throughput, {OBJECT_MB} MB sequential scan",
        ["path", "copies_per_byte", "mb_per_s"],
        page_size=PAGE,
    )
    report.set_params(object_mb=OBJECT_MB, chunk_bytes=CHUNK)
    report.set_io(io)
    report.set_wall_ms(wall_ms)
    for row in rows:
        report.add_row(row)
    by_path = {row[0]: row for row in rows}
    # The acceptance bar: at most one Python-level copy per byte on both
    # paths (the baseline measured 2 direct, 4 end-to-end).
    assert by_path["direct"][1] <= 1.0 + COPY_SLACK, by_path
    assert by_path["server_e2e"][1] <= 1.0 + COPY_SLACK, by_path
    report.note(
        "copies measured by the copytrace ledger: the single sanctioned "
        "copy is the read's final assembly; the wire path adds none "
        "(iovec send, recv_into receive)"
    )
    report.emit()

    benchmark.pedantic(run_all, rounds=1, iterations=1)


if __name__ == "__main__":
    rows, io = run_all()
    for path, copies, mbs in rows:
        print(f"{path}: {copies:.3f} copies/byte, {mbs:.0f} MB/s")
