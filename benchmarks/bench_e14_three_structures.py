"""E14 — the [Bili91b] summary: three storage structures, one table.

The paper's conclusion points to a companion study, "The Performance of
Three Database Storage Structures for Managing Large Objects"
(EOS vs Exodus [Care86] vs Starburst [Lehm89]).  That TR is not
available; this benchmark reconstructs its headline table from this
paper's claims: one workload mix — create, sequential scan, random
reads, small inserts, small deletes — run identically against all three
systems, reporting modelled time per phase and final utilization.

Expected shape (each system's §2 characterisation):

* create: all three are fine (big extents);
* scan / random read: EOS ≈ Starburst (contiguous) beat Exodus;
* insert / delete: EOS ≈ Exodus (local updates) beat Starburst
  (copy-right) by orders of magnitude;
* utilization: EOS beats Exodus (variable segments vs fixed leaves);
* only EOS is in the best group of *every* row — the paper's thesis.
"""

from repro.bench.harness import make_database, run_trace_measured
from repro.bench.reporting import ExperimentReport
from repro.baselines import EOSStore, ExodusStore, Placement, StarburstStore
from repro.workloads.generator import (
    append_build,
    random_edits,
    random_reads,
    sequential_scan,
)

PAGE = 512
OBJECT_BYTES = 250_000
EDITS = 60


def build_stores(db):
    return [
        EOSStore(db),
        ExodusStore(db.buddy, db.segio, db.pager, leaf_pages=2,
                    placement=Placement.SCATTERED),
        StarburstStore(db.buddy, db.segio),
    ]


def run_system(store_factory_index):
    db = make_database(
        page_size=PAGE, num_pages=16384, threshold=8, space_capacity=1024
    )
    store = build_stores(db)[store_factory_index]
    phases = {}

    handle = store.create()
    phases["create"] = run_trace_measured(
        db, store, handle, append_build(OBJECT_BYTES, 8 * PAGE, seed=1),
        cold_cache=True,
    )
    phases["scan"] = run_trace_measured(
        db, store, handle, sequential_scan(OBJECT_BYTES, 16 * PAGE),
        cold_cache=True,
    )
    phases["random read"] = run_trace_measured(
        db, store, handle, random_reads(OBJECT_BYTES, 2048, 25, seed=2),
        cold_cache=True,
    )
    phases["edits"] = run_trace_measured(
        db, store, handle,
        random_edits(OBJECT_BYTES, EDITS, edit_bytes=60, seed=3),
        cold_cache=True,
    )
    stats = store.stats(handle)
    return store.name, phases, stats


def test_e14_three_structures(benchmark):
    report = ExperimentReport(
        "E14",
        f"One workload, three storage structures (~244 KB object, modelled ms)",
        ["system", "create", "scan", "25 rand reads", f"{EDITS} edits", "utilization"],
        page_size=PAGE,
    )
    results = {}
    for index in range(3):
        name, phases, stats = run_system(index)
        results[name] = (phases, stats)
        report.add_row(
            [
                name,
                f"{report.cost_ms(phases['create']):.0f}",
                f"{report.cost_ms(phases['scan']):.0f}",
                f"{report.cost_ms(phases['random read']):.0f}",
                f"{report.cost_ms(phases['edits']):.0f}",
                f"{stats.utilization(PAGE):.1%}",
            ]
        )

    def ms(name, phase):
        return report.cost_ms(results[name][0][phase])

    # Scan + random read: contiguity wins.
    assert ms("EOS", "scan") < ms("Exodus(2p)", "scan") / 3
    assert ms("EOS", "random read") < ms("Exodus(2p)", "random read")
    # Edits: piece-wise updates win.
    assert ms("EOS", "edits") < ms("Starburst", "edits") / 3
    # Utilization: variable-size segments win.
    eos_util = results["EOS"][1].utilization(PAGE)
    exodus_util = results["Exodus(2p)"][1].utilization(PAGE)
    assert eos_util > exodus_util
    # The thesis: EOS is within 2x of the best system on every phase.
    for phase in ("create", "scan", "random read", "edits"):
        best = min(ms(n, phase) for n in results)
        assert ms("EOS", phase) <= best * 2, phase
    report.note(
        "EOS is in the winning group of every row; Exodus loses the scan "
        "rows, Starburst loses the edit row — each missing objectives the "
        "other satisfies, as Section 2 argues"
    )
    report.emit()

    benchmark.pedantic(lambda: run_system(0), rounds=1, iterations=1)
