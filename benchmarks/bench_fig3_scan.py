"""F3 — Figure 3 + the Section 3.1 walkthrough: the jump scan.

"In order to locate a free segment of a given size, there is no need to
check every single byte of the allocation map."  The paper's example
finds the free size-8 segment at page 72 by probing segments 0, 64 and
72 only; this benchmark reproduces that byte state, asserts the probe
count is exactly 3, and times the scan.
"""

from repro.bench.reporting import ExperimentReport
from repro.buddy.space import BuddySpace


def build_figure3_space() -> BuddySpace:
    space = BuddySpace.create(page_size=128, capacity=80)
    assert space.allocate(64) == 0
    assert space.allocate(1) == 64
    assert space.allocate(1) == 65
    assert space.allocate(1) == 66
    space.free(64, 1)
    return space


def test_fig3_jump_scan(benchmark):
    space = build_figure3_space()
    assert space.amap.raw[0] == 0xC6      # allocated 64-page segment at 0
    assert space.amap.raw[16] == 0b0110   # 64 free, 65-66 allocated, 67 free
    assert space.amap.raw[17] == 0x82     # free 4-page segment at 68
    assert space.amap.raw[18] == 0x83     # free 8-page segment at 72

    def scan():
        space.scan_stats.probes = 0
        space.scan_stats.scans = 0
        return space.find_free(3)

    found = benchmark(scan)
    assert found == 72
    assert space.scan_stats.probes == 3  # segments 0, 64, 72 — as in the paper

    report = ExperimentReport(
        "F3",
        "Jump scan on the Figure 3 map (locate a free 8-page segment)",
        ["probe", "segment", "what the byte said", "next step"],
    )
    report.add_row([1, 0, "allocated, 64 pages", "S = 0 + max(8, 64) = 64"])
    report.add_row([2, 64, "free, 1 page", "S = 64 + max(8, 1) = 72"])
    report.add_row([3, 72, "free, 8 pages", "found"])
    report.note("map is 20 bytes; the scan touched 3 of them")
    report.emit()
