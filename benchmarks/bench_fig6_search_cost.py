"""F6 — the Section 4.2 worked example: search cost in seeks + transfers.

"Suppose we want to read 320 bytes starting from byte 1470 of the object
shown in Figure 5.c ... The cost of the above example operation,
including indices except the root, is the cost of 3 disk seeks plus the
cost to transfer 6 pages.  If we had to perform this operation on the
object of Figure 5.a ... the cost of the operation would be 1 disk seek
plus [the paper's prose says 5; its own page arithmetic gives 4] page
transfers."
"""

from repro import EOSConfig, EOSDatabase
from repro.bench.reporting import ExperimentReport
from repro.core.node import Entry, Node


def make_db():
    config = EOSConfig(page_size=100, threshold=1)
    return EOSDatabase.create(num_pages=3000, page_size=100, config=config)


def data(n: int, seed: int = 0) -> bytes:
    return bytes((i * 17 + seed) % 251 for i in range(n))


def build_5a(db):
    obj = db.create_object(size_hint=1820)
    obj.append(data(1820))
    obj.trim()
    return obj


def build_5c(db):
    layouts = ([(400, 4), (400, 4), (220, 3)], [(280, 3), (430, 5), (90, 1)])
    children = []
    for layout in layouts:
        entries = []
        for byte_count, pages in layout:
            ref = db.buddy.allocate(pages)
            db.segio.write_segment(ref.first_page, data(byte_count, seed=pages))
            entries.append(Entry(byte_count, ref.first_page, pages))
        page = db.pager.allocate()
        db.pager.write_new(page, Node(0, entries))
        children.append((sum(c for c, _ in layout), page))
    obj = db.create_object()
    db.pager.write_root(
        obj.root_page, Node(1, [Entry(c, p, 0) for c, p in children])
    )
    db.checkpoint()
    return obj


def measure(db, obj):
    db.pool.clear()
    obj.tree.read_root()  # the paper's costs exclude the (cached) root
    db.disk.stats.head = None
    with db.disk.stats.delta() as delta:
        obj.read(1470, 320)
    return delta


def test_fig6_search_cost(benchmark):
    db = make_db()
    obj_a = build_5a(db)
    obj_c = build_5c(db)

    delta_a = measure(db, obj_a)
    delta_c = measure(db, obj_c)
    assert (delta_a.seeks, delta_a.page_reads) == (1, 4)
    assert (delta_c.seeks, delta_c.page_reads) == (3, 6)

    report = ExperimentReport(
        "F6",
        "Read 320 bytes at offset 1470 (Section 4.2 example)",
        ["object", "seeks", "page transfers", "paper says", "modelled ms (1992 disk)"],
        page_size=100,
    )
    report.add_row(
        ["Figure 5.a", delta_a.seeks, delta_a.page_reads,
         "1 seek + 5 pages (erratum: formula gives 4)", f"{report.cost_ms(delta_a):.1f}"]
    )
    report.add_row(
        ["Figure 5.c", delta_c.seeks, delta_c.page_reads,
         "3 seeks + 6 pages", f"{report.cost_ms(delta_c):.1f}"]
    )
    report.note(
        "seek dominance: on the 1992 geometry the 5.c read costs "
        f"{report.cost_ms(delta_c) / report.cost_ms(delta_a):.1f}x the 5.a read"
    )
    report.emit()

    benchmark.pedantic(lambda: measure(db, obj_c), rounds=5, iterations=1)
