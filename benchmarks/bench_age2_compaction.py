"""AGE2 — online compaction reclaims aged-volume throughput under load.

AGE1 established that an aged volume scans slower than a fresh one and
bounded how far the buddy allocator lets it slip.  AGE2 closes the
loop: after the same seeded churn, :func:`repro.compact.compact_pass`
runs *online* — rate-limited, on a live database serving a continuous
foreground read workload — and must buy the throughput back without
taxing the foreground.

The run:

1. **fresh** — :class:`~repro.workloads.aging.AgingWorkload` fills a
   multi-space volume to the utilization target; every live object is
   scanned cold-cache and the head model prices the I/O (modelled
   MB/s), exactly as in AGE1;
2. **aged** — seeded churn epochs fragment the volume; the aged scan
   and health snapshot are recorded.  Churn changes the *composition*
   of the live set (survivors differ from the build set), so the
   recovery gate's baseline is **rebuilt**: the surviving objects
   copied in oid order onto a brand-new volume and scanned — the best
   layout this exact byte population can have;
3. **compact under load** — a foreground thread scans random live
   objects back-to-back (each scan timed) while the compactor runs a
   full two-phase pass (scored victims, then one space evacuation)
   paced at ``COMPACT_BUDGET_PAGES_PER_S``.  The foreground's p99
   during compaction is compared against its idle p99 measured just
   before;
4. **compacted** — the live set is scanned again like phase 1.

Three gates, asserted in-run:

* the compacted scan recovers to ≥ ``SCAN_RATIO_FLOOR`` of the rebuilt
  baseline;
* the volume frag index drops by ≥ ``FRAG_DROP_FLOOR`` of its aged
  value (the evacuation phase's free-space coalescing);
* foreground p99 during compaction stays ≤ ``P99_RATIO_CEILING`` × the
  idle p99 (the rate limiter's yield-to-foreground guarantee).

The churn and the victim plan are seeded and reads never mutate, so the
frag trajectory, est. seeks/MB, and modelled scan numbers are
machine-stable; :mod:`repro.bench.regress` gates them against the
committed baseline.  The p99 ratio is host wall-clock and is enforced
only by the in-run assert (the VER1 precedent for tail statistics).
"""

import random
import threading
import time

from common import ExperimentReport

from repro.bench.harness import make_database
from repro.compact.engine import compact_pass
from repro.compact.policy import RateLimiter
from repro.obs.health import collect_volume_health
from repro.workloads.aging import AgingWorkload

PAGE = 4096
PAGES = 8192  # 32 MB volume
#: Three 8 MB buddy spaces: the evacuation phase needs a second space
#: for the evacuees, and one emptied space is the coalesced free extent
#: the frag gate measures.
SPACE_CAPACITY = 2048
SCAN_CHUNK = 16 * PAGE
MIX = "mixed"
#: High enough that free space is scarce and shattered after churn, low
#: enough that the other spaces can absorb an evacuated space's objects.
TARGET_UTILIZATION = 0.65
EPOCHS = 6
OPS_PER_EPOCH = 120
#: Background page budget (read + written pages/sec).  Sized so the
#: compactor's op-lock holds collide with well under 1% of foreground
#: scans — the p99 gate is the proof.
COMPACT_BUDGET_PAGES_PER_S = 256.0
#: Aged-then-compacted modelled scan throughput vs. the same live set
#: rebuilt on a fresh volume.
SCAN_RATIO_FLOOR = 0.95
#: The volume frag index must drop by at least this fraction.
FRAG_DROP_FLOOR = 0.5
#: Foreground scan p99 while compacting vs. idle.
P99_RATIO_CEILING = 1.3
#: Foreground scans timed for the idle baseline.
IDLE_SCANS = 2000


def _scan_modelled_mb_s(db, report, oids):
    """Cold-cache scan of every object, each priced with a cold head.

    Pricing per object isolates what compaction owns — each object's
    own contiguity — from where *other* objects happen to sit: a
    volume-wide running-head model would credit the rebuilt baseline
    for consecutive oids landing adjacent (a creation-order artifact no
    compactor can, or should, reproduce).
    """
    total_bytes = 0
    total_ms = 0.0
    for oid in oids:
        size = db.op_stat(oid).size_bytes
        with db.stats.delta(cold=True) as delta:
            offset = 0
            while offset < size:
                chunk = db.op_read(
                    oid, offset=offset, length=min(SCAN_CHUNK, size - offset)
                )
                offset += len(chunk)
        total_ms += report.cost_ms(delta)
        total_bytes += size
    if not total_ms:
        return 0.0
    return (total_bytes / (1 << 20)) / (total_ms / 1000.0)


def _p99(samples_us):
    ordered = sorted(samples_us)
    return ordered[min(int(len(ordered) * 0.99), len(ordered) - 1)]


def _foreground_scan(db, oids, rng):
    """One timed foreground op: chunked scan of one random live object."""
    oid = oids[rng.randrange(len(oids))]
    t0 = time.perf_counter()
    size = db.op_size(oid)
    offset = 0
    while offset < size:
        chunk = db.op_read(
            oid, offset=offset, length=min(SCAN_CHUNK, size - offset)
        )
        offset += len(chunk)
    return (time.perf_counter() - t0) * 1e6


def run_all():
    report = ExperimentReport(
        "AGE2",
        "Online compaction under continuing foreground load",
        ["phase", "util", "frag index", "est seeks/MB", "modelled MB/s"],
        page_size=PAGE,
    )
    db = make_database(
        page_size=PAGE, num_pages=PAGES, threshold=8,
        space_capacity=SPACE_CAPACITY,
    )
    try:
        workload = AgingWorkload(
            db, mix=MIX, seed=42, target_utilization=TARGET_UTILIZATION
        )
        workload.build()
        fresh_mb_s = _scan_modelled_mb_s(db, report, workload.live_oids())
        fresh = collect_volume_health(db)
        report.add_row([
            "fresh", round(fresh.utilization, 4), round(fresh.frag_index, 4),
            round(fresh.mean_seeks_per_mb(), 2), round(fresh_mb_s, 2),
        ])

        for _ in range(EPOCHS):
            workload.run_epoch(OPS_PER_EPOCH)
        oids = workload.live_oids()
        aged_mb_s = _scan_modelled_mb_s(db, report, oids)
        aged = collect_volume_health(db)
        report.add_row([
            "aged", round(aged.utilization, 4), round(aged.frag_index, 4),
            round(aged.mean_seeks_per_mb(), 2), round(aged_mb_s, 2),
        ])

        # The recovery baseline: the surviving live set, copied in oid
        # order onto a brand-new identical volume — the best layout this
        # exact byte population can have.
        rebuilt_db = make_database(
            page_size=PAGE, num_pages=PAGES, threshold=8,
            space_capacity=SPACE_CAPACITY,
        )
        try:
            rebuilt_oids = [
                rebuilt_db.op_create(
                    db.get_object(oid).read_all(),
                    size_hint=db.op_size(oid) or None,
                )
                for oid in sorted(oids)
            ]
            rebuilt_mb_s = _scan_modelled_mb_s(rebuilt_db, report, rebuilt_oids)
            rebuilt = collect_volume_health(rebuilt_db)
            report.add_row([
                "rebuilt", round(rebuilt.utilization, 4),
                round(rebuilt.frag_index, 4),
                round(rebuilt.mean_seeks_per_mb(), 2), round(rebuilt_mb_s, 2),
            ])
        finally:
            rebuilt_db.close()

        # Phase 3: compact online.  Foreground scans run back-to-back on
        # this thread; the compactor paces itself on its own thread, so
        # every sample that collides with a relocation's op-lock hold
        # lands in the `during` population the p99 gate inspects.
        rng = random.Random(99)
        idle_us = [_foreground_scan(db, oids, rng) for _ in range(IDLE_SCANS)]
        done = threading.Event()
        outcome = {}

        def compact_online():
            t0 = time.perf_counter()
            outcome["report"] = compact_pass(
                db, limiter=RateLimiter(COMPACT_BUDGET_PAGES_PER_S)
            )
            outcome["wall_s"] = time.perf_counter() - t0
            done.set()

        compactor = threading.Thread(target=compact_online, name="age2-compact")
        compactor.start()
        during_us = []
        while not done.is_set():
            during_us.append(_foreground_scan(db, oids, rng))
        compactor.join()
        pass_report = outcome["report"]

        compacted_mb_s = _scan_modelled_mb_s(db, report, oids)
        compacted = collect_volume_health(db)
        report.add_row([
            "compacted", round(compacted.utilization, 4),
            round(compacted.frag_index, 4),
            round(compacted.mean_seeks_per_mb(), 2), round(compacted_mb_s, 2),
        ])

        scan = {
            "fresh_mb_s": round(fresh_mb_s, 2),
            "aged_mb_s": round(aged_mb_s, 2),
            "rebuilt_mb_s": round(rebuilt_mb_s, 2),
            "compacted_mb_s": round(compacted_mb_s, 2),
            "aged_ratio": (
                round(aged_mb_s / rebuilt_mb_s, 4) if rebuilt_mb_s else 0.0
            ),
            "compacted_ratio": (
                round(compacted_mb_s / rebuilt_mb_s, 4) if rebuilt_mb_s else 0.0
            ),
        }
        frag = {
            "aged": round(aged.frag_index, 4),
            "compacted": round(compacted.frag_index, 4),
            "drop": (
                round(1.0 - compacted.frag_index / aged.frag_index, 4)
                if aged.frag_index else 0.0
            ),
        }
        foreground = {
            "idle_p99_us": round(_p99(idle_us), 1),
            "during_p99_us": round(_p99(during_us), 1),
            "during_samples": len(during_us),
            "p99_ratio": round(_p99(during_us) / _p99(idle_us), 4),
            "compaction_wall_s": round(outcome["wall_s"], 2),
        }
        compaction = {
            "objects_moved": pass_report.objects_moved,
            "objects_skipped": pass_report.objects_skipped,
            "pages_moved": pass_report.pages_moved,
            "evacuated_space": pass_report.evacuated_space,
            "throttle_s": round(pass_report.throttle_s, 2),
            "stopped": pass_report.stopped,
        }
        return report, scan, frag, foreground, compaction
    finally:
        db.close()


def test_age2_compaction(benchmark):
    t0 = time.perf_counter()
    report, scan, frag, foreground, compaction = run_all()
    wall_ms = (time.perf_counter() - t0) * 1000.0
    report.set_wall_ms(wall_ms)
    report.set_params(
        target_utilization=TARGET_UTILIZATION,
        space_capacity=SPACE_CAPACITY,
        epochs=EPOCHS,
        ops_per_epoch=OPS_PER_EPOCH,
        compact_budget_pages_per_s=COMPACT_BUDGET_PAGES_PER_S,
        scan=scan,
        frag=frag,
        foreground=foreground,
        compaction=compaction,
    )
    report.note(
        f"scan: aged {scan['aged_mb_s']:.1f} -> compacted "
        f"{scan['compacted_mb_s']:.1f} MB/s modelled vs rebuilt "
        f"{scan['rebuilt_mb_s']:.1f} "
        f"({scan['compacted_ratio']:.2f}x rebuilt, floor {SCAN_RATIO_FLOOR}x)"
    )
    report.note(
        f"frag index {frag['aged']:.4f} -> {frag['compacted']:.4f} "
        f"({frag['drop']:.0%} drop, floor {FRAG_DROP_FLOOR:.0%}); "
        f"moved {compaction['objects_moved']} objects / "
        f"{compaction['pages_moved']} pages, evacuated space "
        f"{compaction['evacuated_space']}"
    )
    report.note(
        f"foreground p99 {foreground['idle_p99_us']:.0f}us idle -> "
        f"{foreground['during_p99_us']:.0f}us during compaction "
        f"({foreground['p99_ratio']:.2f}x, ceiling {P99_RATIO_CEILING}x) "
        f"over {foreground['during_samples']} scans; compactor throttled "
        f"{foreground['compaction_wall_s']:.1f}s wall"
    )
    report.emit()
    # (a) Compaction must actually buy the aged throughput back.
    assert scan["compacted_ratio"] >= SCAN_RATIO_FLOOR, (
        f"compacted scan only {scan['compacted_ratio']:.3f}x of the "
        f"rebuilt baseline (floor {SCAN_RATIO_FLOOR}x): {scan}"
    )
    # (b) Free space must coalesce, not just objects defragment.
    assert frag["drop"] >= FRAG_DROP_FLOOR, (
        f"frag index dropped {frag['drop']:.0%} "
        f"(floor {FRAG_DROP_FLOOR:.0%}): {frag}"
    )
    # (c) Online means online: the foreground must not feel it.
    assert foreground["p99_ratio"] <= P99_RATIO_CEILING, (
        f"foreground p99 rose {foreground['p99_ratio']:.2f}x during "
        f"compaction (ceiling {P99_RATIO_CEILING}x): {foreground}"
    )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
