"""F1 — Figure 1: buddy-space directory layout and its derived limits.

The paper derives, for 4 KB pages: a maximum segment type of
``log2(2*4096) = 13`` (2^13 pages = 32 MB segments) and an allocation
map of "at most 4096 - 2*14 = 4068 bytes ... buddy spaces of at most
4068*4 = 16,272 pages (approximately, 63.5 megabytes)".  This benchmark
regenerates that arithmetic for a range of page sizes and times the
directory's serialise/deserialise round trip (the unit of work behind
"the entire process of allocating and deallocating segments is performed
on the directory page only").
"""

from repro.bench.reporting import ExperimentReport
from repro.buddy.directory import max_capacity, max_segment_type
from repro.buddy.space import BuddySpace
from repro.util.fmt import human_bytes


def test_fig1_directory_limits(benchmark):
    report = ExperimentReport(
        "F1",
        "Directory-page limits by page size (paper: 4 KB row)",
        ["page size", "max seg type", "max seg size", "max space pages", "max space size"],
    )
    for page_size in (1024, 2048, 4096, 8192, 16384):
        k = max_segment_type(page_size)
        cap = max_capacity(page_size)
        report.add_row(
            [
                human_bytes(page_size),
                k,
                human_bytes((1 << k) * page_size),
                cap,
                human_bytes(cap * page_size),
            ]
        )
    report.note(
        "paper derives 16,272 pages for 4 KB with a bare count array; the "
        "6-byte directory header here costs 24 pages of capacity"
    )
    assert max_segment_type(4096) == 13
    assert max_capacity(4096) == 16272 - 24

    space = BuddySpace.create(page_size=4096, capacity=max_capacity(4096))
    for size in (11, 100, 1000):
        space.allocate(size)

    def round_trip():
        image = space.to_page()
        return BuddySpace.from_page(4096, image)

    restored = benchmark(round_trip)
    assert restored.counts == space.counts
    report.note(
        "directory (counts + amap for 16k pages) serialise+parse timed by "
        "pytest-benchmark below"
    )
    report.emit()
