"""E15 — tuning T to the workload (the Section 4.4 guidance).

"The tradeoffs in selecting the T value are simple: larger T values
improve the storage utilization and the performance of append,
(sequential and random) read, and replace operations; the only aspect
that might be affected negatively by larger segments is the costs of
inserts and deletes.  For often-updated objects, the T value should be
somewhat larger than the size of the search operations expected to be
applied on the object ...  Again, for more static objects where the cost
of updates is of little or no concern, the larger the segment size the
better the overall performance."

Three workload mixes (update-heavy, balanced, read-heavy) run under a
sweep of T; the table reports total modelled time per mix and marks each
mix's best T.  The paper's guidance predicts the optimum shifts right as
reads dominate — asserted below.
"""

from repro.bench.harness import make_database, run_trace_measured
from repro.bench.reporting import ExperimentReport
from repro.baselines.eos_adapter import EOSStore
from repro.workloads.generator import random_edits, random_reads

PAGE = 512
OBJECT_BYTES = 200_000
READ_BYTES = 8 * PAGE  # "the size of the search operations expected"

# (name, reads, edits) — total op count is constant across mixes.
MIXES = [
    ("update-heavy", 20, 180),
    ("balanced", 100, 100),
    ("read-heavy", 180, 20),
]
THRESHOLDS = (1, 2, 4, 8, 16, 32)


def run_mix(threshold: int, reads: int, edits: int) -> float:
    db = make_database(page_size=PAGE, num_pages=16384, threshold=threshold)
    store = EOSStore(db)
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    obj = store.create(payload, size_hint=OBJECT_BYTES)
    total_ms = 0.0
    # Interleave edit and read batches so reads see the edited object.
    edit_trace = list(random_edits(OBJECT_BYTES, edits, edit_bytes=48, seed=21))
    read_trace = list(random_reads(OBJECT_BYTES - 20_000, READ_BYTES, reads, seed=22))
    for i in range(4):
        chunk_e = edit_trace[i * edits // 4 : (i + 1) * edits // 4]
        chunk_r = read_trace[i * reads // 4 : (i + 1) * reads // 4]
        from repro.storage.geometry import DISK_1992

        delta = run_trace_measured(db, store, obj, chunk_e, cold_cache=True)
        total_ms += DISK_1992.cost_ms(delta.seeks, delta.page_transfers, PAGE)
        delta = run_trace_measured(db, store, obj, chunk_r, cold_cache=True)
        total_ms += DISK_1992.cost_ms(delta.seeks, delta.page_transfers, PAGE)
    return total_ms


def test_e15_threshold_tuning(benchmark):
    report = ExperimentReport(
        "E15",
        f"Total modelled ms for 200 ops, by mix and threshold "
        f"(reads are {READ_BYTES // PAGE} pages)",
        ["T", *(name for name, _, _ in MIXES)],
        page_size=PAGE,
    )
    costs = {name: {} for name, _, _ in MIXES}
    for threshold in THRESHOLDS:
        row = [threshold]
        for name, reads, edits in MIXES:
            ms = run_mix(threshold, reads, edits)
            costs[name][threshold] = ms
            row.append(f"{ms:.0f}")
        report.add_row(row)
    best = {name: min(c, key=c.get) for name, c in costs.items()}
    report.note(f"best T per mix: {best}")
    # The optimum moves toward larger T as reads dominate...
    assert best["read-heavy"] >= best["update-heavy"]
    # ...and for the read-heavy ("more static") mix, "the larger the
    # segment size the better": the biggest T beats the smallest.
    assert costs["read-heavy"][32] < costs["read-heavy"][1]
    # For every mix, T somewhat above the read size (8 pages) is never
    # worse than no threshold at all.
    for name, _, _ in MIXES:
        assert costs[name][16] <= costs[name][1] * 1.15
    report.emit()

    benchmark.pedantic(
        lambda: run_mix(8, 25, 25), rounds=1, iterations=1
    )
