"""F2 — Figure 2: the allocation-map byte encoding.

Exhaustively exercises the three byte forms (large-segment start, quad
bits, continuation) and times a full decode of a realistically mixed
map — the operation underlying every allocation scan.
"""

from repro.bench.reporting import ExperimentReport
from repro.buddy.amap import decode_large, encode_large
from repro.buddy.space import BuddySpace


def test_fig2_encoding_roundtrip(benchmark):
    report = ExperimentReport(
        "F2",
        "Allocation-map byte encoding (Figure 2)",
        ["byte form", "example", "meaning"],
    )
    report.add_row(["1 s tttttt", f"0x{encode_large(6, True):02X}", "allocated 2^6-page segment starts here"])
    report.add_row(["1 s tttttt", f"0x{encode_large(2, False):02X}", "free 2^2-page segment starts here"])
    report.add_row(["0 ... bbbb", "0x06", "pages: free, alloc, alloc, free"])
    report.add_row(["0x00", "0x00", "continuation of an earlier segment"])

    # Round-trip every legal large-start byte.
    for t in range(2, 64):
        for allocated in (False, True):
            assert decode_large(encode_large(t, allocated)) == (t, allocated)

    # A busy space: mixed segment sizes, then decode the whole map.
    space = BuddySpace.create(page_size=4096, capacity=4096)
    for size in (64, 11, 1, 2, 300, 7, 128, 3):
        space.allocate(size)
    space.free(64 + 3, 5)
    amap = space.amap

    segments = benchmark(amap.decode)
    report.add_row(["decode", f"{len(segments)} segments", "full-map decode timed below"])
    report.note("exhaustive byte-level round-trip asserted for types 2..63")
    report.emit()
