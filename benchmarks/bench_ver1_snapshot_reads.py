"""VER1 — lock-free snapshot reads under a concurrent heavy appender.

The whole point of copy-on-write versioning is that readers of a
committed version never take locks: the version's pages are immutable
and flushed, so the server answers versioned READs on its default
executor — off the shard worker, outside the
:class:`~repro.locking.manager.LockManager` — while writers commit new
versions at full speed.

The workload is one object with a frozen 256 KB prefix.  An appender
client mutates *that same object* with a steady stream of appends —
every one a full version commit with the object's root X-locked and
the shard worker busy.  Readers
issue random chunk reads against the prefix, and the bench measures
read p99 in four cells:

* versioned server, reads pinned to the frozen version — idle, then
  with the appender running, in ``REPS`` back-to-back pairs.  The
  lock-free snapshot path: the minimum per-rep contended-over-idle p99
  ratio must stay within ``RATIO_CEILING`` (1.3x), asserted here and
  gated against the committed baseline by :mod:`repro.bench.regress`.
* unversioned server, plain latest reads — the same two phases as a
  control for context.  These reads S-lock the very root the appender
  X-locks and queue on the shard worker behind its commits; at this
  paced commit rate they survive too, but their degradation grows with
  writer duty where the snapshot path's does not (reported, not
  asserted).

The shard's volume sits behind a :class:`~repro.storage.timing.TimedDisk`
(the SRV2 idiom): every read pays a modelled per-page transfer time, so
read latency reflects a real disk arm rather than a dict lookup.  That
matters for measurement hygiene — everything here shares one CPython
process (and possibly one core), so a commit's interpreter work is
unavoidably stolen from whatever read overlaps it, locks or no locks.
Against a realistic multi-millisecond read service time that theft is
noise; against a microsecond dict read it would be the whole signal.
For the same reason the appender is paced to a fixed offered rate
rather than closed-loop (a closed-loop writer saturates the GIL and
time-shares every thread, measuring interpreter scheduling, not locks),
GC is paused, and the run lowers the interpreter's thread switch
interval (a single default GIL hand-off stall is 5 ms).
"""

import gc
import random
import statistics
import sys
import threading
import time

from common import ExperimentReport

from repro.core.config import EOSConfig
from repro.server import EOSClient, ServerThread
from repro.server.sharding import ShardSet
from repro.storage.disk import DiskVolume
from repro.storage.timing import TimedDisk

PAGE = 512
PAGES = 32768
FROZEN_BYTES = 256 * 1024
CHUNK = 128 * 1024
APPEND_CHUNK = 1024
SIZE_HINT_BYTES = 384 * 1024
APPEND_PACE_S = 0.004
# The pinned snapshot must outlive every commit the appender makes, so
# retention is set beyond the run's total commit count; the reclaimer's
# bounded-retention behaviour is exercised by the test suite, not here.
RETAIN = 4096
N_READERS = 1
READS_PER_READER = 200
WARMUP_READS = 30
# One disk arm, transfer-time only: a 128 KB read is ~5 ms of modelled
# service, a 1 KB commit a fraction of that.
SEEK_MS = 0.0
TRANSFER_MS_PER_PAGE = 0.02
#: Paired idle/contended repetitions per server.  The asserted ratio is
#: the *minimum* over reps: environmental tail noise (GC, scheduler
#: jitter) inflates individual p99 samples but a genuine lock-queueing
#: regression inflates every rep, so the min isolates the systematic
#: component the bench exists to detect.
REPS = 3
RATIO_CEILING = 1.3
SWITCH_INTERVAL_S = 0.0002


def _disk_factory(_index):
    return TimedDisk(
        DiskVolume(num_pages=PAGES, page_size=PAGE),
        seek_ms=SEEK_MS,
        transfer_ms_per_page=TRANSFER_MS_PER_PAGE,
    )


def _percentile(sorted_ms, q):
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, round(q * (len(sorted_ms) - 1)))
    return sorted_ms[idx]


def _reader_worker(port, oid, version, reader_id, latencies_out, errors):
    """One reader: random chunk reads of the object's frozen prefix."""
    rng = random.Random(reader_id)
    lat = []
    try:
        with EOSClient(port=port, timeout=120.0) as c:
            for _ in range(READS_PER_READER):
                off = rng.randrange(0, FROZEN_BYTES - CHUNK)
                t0 = time.perf_counter()
                data = c.read(oid, off, CHUNK, version=version)
                lat.append((time.perf_counter() - t0) * 1000.0)
                if len(data) != CHUNK:
                    raise AssertionError(f"short read at {off}")
    except Exception as exc:  # pragma: no cover - failure path
        errors.append(f"reader {reader_id}: {exc}")
    latencies_out.extend(lat)


def _appender_worker(port, oid, stop, counts, errors):
    """The antagonist: paced appends to the readers' object.

    Each iteration commits one append then waits out the pace.  The
    frozen prefix is never rewritten, so latest reads of it stay
    byte-stable on the unversioned control server too.
    """
    payload = bytes(i % 253 for i in range(APPEND_CHUNK))
    try:
        with EOSClient(port=port, timeout=120.0) as c:
            while not stop.is_set():
                c.append(oid, payload)
                counts[0] += 1
                stop.wait(APPEND_PACE_S)
    except Exception as exc:  # pragma: no cover - failure path
        errors.append(f"appender: {exc}")


def _run_phase(port, oid, version):
    """One measurement phase; returns (reads/s, p50 ms, p99 ms)."""
    latencies: list[float] = []
    errors: list[str] = []
    threads = [
        threading.Thread(
            target=_reader_worker,
            args=(port, oid, version, i, latencies, errors),
            daemon=True,
        )
        for i in range(N_READERS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(240)
    elapsed = time.perf_counter() - t0
    assert not errors, errors
    assert len(latencies) == N_READERS * READS_PER_READER
    latencies.sort()
    return (
        len(latencies) / elapsed,
        _percentile(latencies, 0.50),
        _percentile(latencies, 0.99),
    )


def _run_server(versioned):
    """One idle/contended pair on a fresh server.

    Returns ``(idle, contended, appends_per_s)`` where each phase row
    is ``(reads/s, p50 ms, p99 ms)``.  A fresh server per rep keeps
    every rep in the same allocator and chain-length regime.
    """
    cfg = None
    if versioned:
        cfg = EOSConfig(page_size=PAGE, versioning=True, version_retain=RETAIN)
    shardset = ShardSet.create(
        1, PAGES, PAGE, config=cfg, disk_factory=_disk_factory
    )
    try:
        with ServerThread(shards=shardset, port=0, max_inflight=64) as srv:
            with EOSClient(port=srv.port, timeout=120.0) as admin:
                payload = bytes(i % 251 for i in range(FROZEN_BYTES))
                oid = admin.create(payload, size_hint=SIZE_HINT_BYTES)
                frozen = None
                if versioned:
                    frozen = max(v.version for v in admin.versions(oid))
                rng = random.Random(1234)
                for _ in range(WARMUP_READS):
                    off = rng.randrange(0, FROZEN_BYTES - CHUNK)
                    admin.read(oid, off, CHUNK, version=frozen)

            idle = _run_phase(srv.port, oid, frozen)

            stop = threading.Event()
            counts = [0]
            errors: list[str] = []
            appender = threading.Thread(
                target=_appender_worker,
                args=(srv.port, oid, stop, counts, errors),
                daemon=True,
            )
            appender.start()
            time.sleep(0.15)  # let the appender reach steady state
            t0 = time.perf_counter()
            contended = _run_phase(srv.port, oid, frozen)
            append_s = counts[0] / (time.perf_counter() - t0)
            stop.set()
            appender.join(60)
            assert not errors, errors
            assert counts[0] > 0, "appender never committed a mutation"
        return idle, contended, append_s
    finally:
        shardset.close()


def _pool(rows):
    """Merge per-rep phase rows: mean rate, median p50, median p99."""
    return (
        statistics.fmean(r[0] for r in rows),
        statistics.median(r[1] for r in rows),
        statistics.median(r[2] for r in rows),
    )


def run_all():
    """All four cells; returns {(server, mode): row}, ratios, rates."""
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(SWITCH_INTERVAL_S)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        rows = {}
        ratios = {}
        rates = {}
        for server, versioned in (("versioned", True), ("unversioned", False)):
            idle_rows = []
            contended_rows = []
            reps = []
            append_s = 0.0
            for _ in range(REPS):
                idle, contended, append_s = _run_server(versioned)
                idle_rows.append(idle)
                contended_rows.append(contended)
                reps.append(contended[2] / idle[2] if idle[2] else 0.0)
                gc.collect()
            rows[(server, "idle")] = _pool(idle_rows)
            rows[(server, "appender")] = _pool(contended_rows)
            ratios[server] = reps
            rates[server] = append_s
        return rows, ratios, rates
    finally:
        if gc_was_enabled:
            gc.enable()
        sys.setswitchinterval(old_interval)


def test_snapshot_reads_under_appender(benchmark):
    t0 = time.perf_counter()
    rows, ratios, rates = run_all()
    wall_ms = (time.perf_counter() - t0) * 1000.0
    report = ExperimentReport(
        "VER1",
        f"Snapshot-read p99 vs a concurrent appender, {CHUNK // 1024} KB "
        f"reads of a frozen prefix while the same object is appended to",
        ["server", "mode", "reads/s", "p50 ms", "p99 ms"],
        page_size=PAGE,
    )
    report.set_params(
        frozen_bytes=FROZEN_BYTES,
        chunk_bytes=CHUNK,
        append_chunk_bytes=APPEND_CHUNK,
        append_pace_ms=APPEND_PACE_S * 1000.0,
        seek_ms=SEEK_MS,
        transfer_ms_per_page=TRANSFER_MS_PER_PAGE,
        version_retain=RETAIN,
        n_readers=N_READERS,
        reads_per_reader=READS_PER_READER,
        reps=REPS,
    )
    report.set_wall_ms(wall_ms)
    for (server, mode), (rps, p50, p99) in rows.items():
        report.add_row([server, mode, round(rps), round(p50, 3), round(p99, 3)])
    ratio = min(ratios["versioned"])
    locked = min(ratios["unversioned"])
    per_rep = ", ".join(f"{r:.2f}" for r in ratios["versioned"])
    report.note(
        f"snapshot-read p99 under {rates['versioned']:.0f} commits/s = "
        f"{ratio:.2f}x idle (per rep: {per_rep}; ceiling {RATIO_CEILING}x); "
        f"locked latest-read control: {locked:.2f}x — snapshot reads never "
        "touch the lock table or the shard worker"
    )
    report.emit()
    # Shape: the whole point of lock-free snapshot reads.  If versioned
    # READs queued behind the appender's X-locked commits like the
    # control does, every rep's contended p99 would track commit
    # duration, not idle read latency.
    assert ratio <= RATIO_CEILING, (
        f"snapshot-read p99 degraded to {ratio:.2f}x idle in every rep "
        f"under a concurrent appender (ceiling {RATIO_CEILING}x; "
        f"per rep: {per_rep})"
    )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
