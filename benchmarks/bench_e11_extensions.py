"""E11 — the paper's extensions: adaptive T and logging vs shadowing.

Two ablations the paper discusses but defers:

* **Adaptive threshold** ([Bili91a], sketched in Section 4.4): "the
  closer we are to splitting an index, the higher the value of T should
  become"; on an imminent split, adjacent unsafe segments are coalesced.
  We count index pages and segments after an edit storm, fixed vs
  adaptive.
* **Logging vs shadowing granularity** (Section 4.5): "if segments are
  large and updates are small shadowing will be slower than logging."
  We measure page writes for a small replace under (a) EOS's actual
  policy (log the page), (b) hypothetical whole-segment shadowing —
  demonstrating why the update algorithms were designed to never
  overwrite leaf pages.
"""

from repro.bench.harness import apply_trace, make_database
from repro.bench.reporting import ExperimentReport
from repro.baselines.eos_adapter import EOSStore
from repro.recovery import RecoveryManager
from repro.workloads.generator import random_edits

PAGE = 512
OBJECT_BYTES = 250_000
EDITS = 250


def edit_storm(adaptive: bool):
    db = make_database(
        page_size=PAGE, num_pages=8192, threshold=4, adaptive=adaptive
    )
    store = EOSStore(db)
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    obj = store.create(payload, size_hint=OBJECT_BYTES)
    apply_trace(
        store, obj, random_edits(OBJECT_BYTES, EDITS, edit_bytes=48, seed=11)
    )
    obj.trim()
    obj.verify()
    return obj.stats(), obj


def test_e11_adaptive_threshold(benchmark):
    report = ExperimentReport(
        "E11a",
        f"Fixed vs adaptive threshold after {EDITS} edits (T base = 4)",
        ["policy", "segments", "index pages", "height", "mean seg pages"],
        page_size=PAGE,
    )
    fixed_stats, fixed_obj = edit_storm(adaptive=False)
    adaptive_stats, adaptive_obj = edit_storm(adaptive=True)
    for label, stats, obj in (
        ("fixed T=4", fixed_stats, fixed_obj),
        ("adaptive", adaptive_stats, adaptive_obj),
    ):
        report.add_row(
            [label, stats.segments, stats.index_pages, stats.height,
             f"{obj.mean_segment_pages():.1f}"]
        )
    # The adaptive policy consolidates segments, so the index stays
    # smaller (fewer entries to store) for the same workload.
    assert adaptive_stats.segments <= fixed_stats.segments
    assert adaptive_stats.index_pages <= fixed_stats.index_pages
    report.note(
        "coalescing unsafe runs before a split keeps the fan-out budget "
        "for real growth"
    )
    report.emit()

    benchmark.pedantic(lambda: edit_storm(True), rounds=1, iterations=1)


def test_e11_logging_vs_shadowing(benchmark):
    report = ExperimentReport(
        "E11b",
        "Recovery cost of a 100-byte replace in a 250 KB object",
        ["policy", "page writes", "modelled ms"],
        page_size=PAGE,
    )
    db = make_database(page_size=PAGE, num_pages=8192, threshold=8)
    manager = RecoveryManager(db)
    obj = db.create_object(bytes(OBJECT_BYTES), size_hint=OBJECT_BYTES)
    db.checkpoint()

    txn = manager.begin()
    tobj = txn.open(obj)
    db.disk.stats.head = None
    with db.disk.stats.delta() as logged:
        tobj.replace(OBJECT_BYTES // 2, b"r" * 100)
    txn.commit()
    report.add_row(
        ["logging (EOS: replace in place)", logged.page_writes,
         f"{report.cost_ms(logged):.0f}"]
    )

    # Hypothetical whole-segment shadowing: the smallest unit that keeps
    # a segment physically contiguous is the segment itself, so a
    # 100-byte change would rewrite every page of its segment.
    seg_pages = max(e.pages for _, e in obj.segments())
    shadow_writes = seg_pages + 1  # new copy + root switch
    report.add_row(
        ["whole-segment shadowing (hypothetical)", shadow_writes,
         f"{report.geometry.cost_ms(2, shadow_writes, PAGE):.0f}"]
    )
    assert logged.page_writes <= 2
    assert shadow_writes > logged.page_writes * 50
    report.note(
        '"to keep together the pages of a segment, the granularity of '
        'shadowing must be the whole segment" — hence logging for replace, '
        "shadowing only for the (small) index pages of the other updates"
    )
    report.attach_stats(db)
    report.emit()

    def one_insert_shadowed():
        t = manager.begin()
        t.open(obj).insert(1000, b"z" * 20)
        t.commit()

    benchmark.pedantic(one_insert_shadowed, rounds=5, iterations=1)
