"""SRV1 — object-server throughput under concurrent clients.

Drives a live :class:`~repro.server.EOSServer` (in-process, over real
TCP sockets) with N client threads, each issuing a mix of sequential
and random reads against a shared preloaded object, and reports
requests/second plus p50/p99 request latency per concurrency level.

The interesting shape: because reads take shared byte-range locks and
the admission window is wide, throughput should *grow* with client
count until the single worker executor saturates — concurrency comes
from overlapping network turnarounds, not parallel page reads.
"""

import random
import threading
import time

from common import ExperimentReport

from repro.api import EOSDatabase
from repro.server import EOSClient, ServerThread

PAGE = 512
OBJECT_BYTES = 256 * 1024
CHUNK = 4 * PAGE
OPS_PER_CLIENT = 60
CLIENT_COUNTS = (1, 2, 4, 8)


def _percentile(sorted_ms, q):
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, round(q * (len(sorted_ms) - 1)))
    return sorted_ms[idx]


def _client_worker(port, oid, client_id, latencies_out, errors):
    """One client: alternate a sequential sweep with random chunk reads."""
    rng = random.Random(client_id)
    lat = []
    try:
        with EOSClient(port=port, timeout=60.0) as c:
            offset = 0
            for op in range(OPS_PER_CLIENT):
                if op % 2 == 0:  # sequential leg
                    off = offset
                    offset = (offset + CHUNK) % OBJECT_BYTES
                else:  # random leg
                    off = rng.randrange(0, OBJECT_BYTES - CHUNK)
                t0 = time.perf_counter()
                data = c.read(oid, off, CHUNK)
                lat.append((time.perf_counter() - t0) * 1000.0)
                if len(data) != CHUNK:
                    raise AssertionError(f"short read at offset {off}")
    except Exception as exc:  # pragma: no cover - failure path
        errors.append(f"client {client_id}: {exc}")
    latencies_out.extend(lat)


def run_level(port, oid, n_clients):
    """Run one concurrency level; returns (req/s, p50 ms, p99 ms)."""
    latencies: list[float] = []
    errors: list[str] = []
    threads = [
        threading.Thread(
            target=_client_worker, args=(port, oid, i, latencies, errors),
            daemon=True,
        )
        for i in range(n_clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    elapsed = time.perf_counter() - t0
    assert not errors, errors
    n_requests = n_clients * OPS_PER_CLIENT
    assert len(latencies) == n_requests
    latencies.sort()
    return (
        n_requests / elapsed,
        _percentile(latencies, 0.50),
        _percentile(latencies, 0.99),
    )


def run_all():
    db = EOSDatabase.create(num_pages=8192, page_size=PAGE)
    db.obs.enable()
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    rows = []
    with ServerThread(db, port=0, max_inflight=64) as srv:
        with EOSClient(port=srv.port) as admin:
            oid = admin.create(payload, size_hint=OBJECT_BYTES)
        for n in CLIENT_COUNTS:
            rows.append((n, *run_level(srv.port, oid, n)))
    snap = db.stats.snapshot()
    io = {
        "seeks": snap.seeks,
        "page_transfers": snap.page_transfers,
        "page_reads": snap.page_reads,
        "page_writes": snap.page_writes,
    }
    db.close()
    return rows, io


def test_server_throughput(benchmark):
    t0 = time.perf_counter()
    rows, io = run_all()
    wall_ms = (time.perf_counter() - t0) * 1000.0
    report = ExperimentReport(
        "SRV1",
        f"Server read throughput, {CHUNK // 1024} KB chunks, "
        f"{OPS_PER_CLIENT} ops/client, 50/50 seq+random",
        ["clients", "req/s", "p50 ms", "p99 ms"],
        page_size=PAGE,
    )
    report.set_params(
        object_bytes=OBJECT_BYTES,
        chunk_bytes=CHUNK,
        ops_per_client=OPS_PER_CLIENT,
        client_counts=",".join(str(n) for n in CLIENT_COUNTS),
    )
    report.set_io(io)
    report.set_wall_ms(wall_ms)
    by_clients = {}
    for n, rps, p50, p99 in rows:
        report.add_row([n, round(rps), round(p50, 2), round(p99, 2)])
        by_clients[n] = rps
    # Shape, not absolutes: more clients must not collapse throughput.
    assert by_clients[8] > by_clients[1] * 0.5
    report.note(
        "single worker executor: scaling comes from overlapping request "
        "turnarounds; reads hold shared range locks so no client blocks another"
    )
    report.emit()

    benchmark.pedantic(run_all, rounds=1, iterations=1)
