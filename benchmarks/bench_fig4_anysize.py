"""F4 — Figure 4: any-size allocation and any-portion frees.

Replays the paper's full walkthrough — allocate 11 pages inside a
16-page segment (8+2+1 allocated, 1+4 freed in reverse order), free 7
pages starting at page 3, then free page 10 and watch the iterative
coalescing chain 10+11 -> 8..11 -> 8..15 — and times the sequence.
"""

from repro.bench.reporting import ExperimentReport
from repro.buddy.amap import SegmentView
from repro.buddy.space import BuddySpace


def run_walkthrough() -> BuddySpace:
    space = BuddySpace.create(page_size=128, capacity=16)
    assert space.allocate(11) == 0   # Figure 4.a/4.b
    space.free(3, 7)                 # Figure 4.c
    space.free(10, 1)                # Figure 4.d
    return space


def test_fig4_any_size_walkthrough(benchmark):
    space = benchmark(run_walkthrough)
    segments = space.verify()
    assert segments == [
        SegmentView(0, 1, True),
        SegmentView(1, 1, True),
        SegmentView(2, 1, True),
        SegmentView(3, 1, False),
        SegmentView(4, 4, False),
        SegmentView(8, 8, False),
    ]
    # "Segment 8 of size 8 and its buddy 0 can not be merged because the
    # latter is not a free segment of size 8."
    assert space.counts[3] == 1

    report = ExperimentReport(
        "F4",
        "Figure 4 walkthrough (16-page space)",
        ["step", "operation", "resulting free segments"],
    )
    report.add_row(["4.a/4.b", "allocate 11 = 8+2+1", "[11:1], [12:4]"])
    report.add_row(["4.c", "free 7 pages from page 3", "[3:1], [4:4], [8:2], [11:1], [12:4]"])
    report.add_row(["4.d", "free page 10 (coalesces x3)", "[3:1], [4:4], [8:8]"])
    report.note("allocation rounds 11 up to 16, then frees the 5-page remainder as 1+4")
    report.emit()
