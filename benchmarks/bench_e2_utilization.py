"""E2 — storage utilization vs the segment-size threshold T.

Section 4.4: "for segments of size T, the utilization per segment will
be on the average 1 - 1/2T.  For T = 4, 16 and 64, this evaluates to
utilization of 87%, 97%, and 99%, respectively."

We build an object, batter it with evenly distributed small inserts and
deletes (the workload that fragments segments), and report the measured
leaf utilization against the paper's formula.  The formula is a
steady-state prediction for segments *at* the threshold size; measured
values run slightly above it because many segments sit above T.
"""

from repro.bench.harness import apply_trace, make_database
from repro.bench.reporting import ExperimentReport
from repro.baselines.eos_adapter import EOSStore
from repro.workloads.generator import random_edits

PAGE = 512
OBJECT_BYTES = 400_000
EDITS = 600


def run_for_threshold(threshold: int):
    db = make_database(
        page_size=PAGE, num_pages=8192, threshold=threshold
    )
    store = EOSStore(db)
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    obj = store.create(payload, size_hint=OBJECT_BYTES)
    trace = random_edits(OBJECT_BYTES, EDITS, edit_bytes=48, seed=threshold)
    apply_trace(store, obj, trace)
    obj.trim()
    stats = obj.stats()
    return obj, stats


def test_e2_utilization_vs_threshold(benchmark):
    report = ExperimentReport(
        "E2",
        f"Leaf utilization after {EDITS} random edits (object ~400 KB, {PAGE}-byte pages)",
        ["T", "paper 1-1/2T", "measured leaf util", "segments", "mean seg pages"],
        page_size=PAGE,
    )
    measured = {}
    for threshold in (1, 2, 4, 8, 16, 64):
        obj, stats = run_for_threshold(threshold)
        util = stats.leaf_utilization(PAGE)
        measured[threshold] = util
        formula = 1 - 1 / (2 * threshold)
        report.add_row(
            [
                threshold,
                f"{formula:.0%}",
                f"{util:.1%}",
                stats.segments,
                f"{obj.mean_segment_pages():.1f}",
            ]
        )
    # Shape assertions: utilization improves monotonically-ish with T and
    # clears the paper's floor for the quoted values.
    assert measured[4] >= 1 - 1 / (2 * 4) - 0.03
    assert measured[16] >= 1 - 1 / (2 * 16) - 0.02
    assert measured[64] >= 1 - 1 / (2 * 64) - 0.02
    assert measured[64] > measured[1]
    report.note(
        "the paper's formula is the per-segment floor at size exactly T; "
        "measured objects also contain larger segments, so they sit at or "
        "above it"
    )
    report.emit()

    benchmark.pedantic(lambda: run_for_threshold(16), rounds=1, iterations=1)
