"""E9 — the superdirectory (Section 3.3).

"Larger databases will have many buddy spaces and thus, on a space
allocation request it is possible that the directory block of each buddy
space may have to be visited ...  To avoid this, we make use of a
superdirectory that contains the size of the largest free segment in
each buddy space."  It starts optimistic and is self-correcting: "the
first wrong guess ... will correct the superdirectory information."

The experiment fills most of a 24-space volume, then issues allocations
with and without the superdirectory and counts directory pages
inspected; a second table shows the self-correction converging.
"""

from repro.bench.reporting import ExperimentReport
from repro.buddy.directory import max_capacity
from repro.buddy.manager import BuddyManager
from repro.storage.disk import DiskVolume
from repro.storage.volume import Volume

PAGE = 512
N_SPACES = 24
CAPACITY = max_capacity(PAGE)


def build(use_superdirectory: bool):
    disk = DiskVolume(num_pages=1 + N_SPACES * (1 + CAPACITY), page_size=PAGE)
    volume = Volume.format(disk, n_spaces=N_SPACES, space_capacity=CAPACITY)
    manager = BuddyManager.format(volume, use_superdirectory=use_superdirectory)
    # Fill all but the last space completely.
    for index in range(N_SPACES - 1):
        while True:
            space = manager.load_space(index)
            t = space.max_free_type()
            if t < 0:
                break
            space.allocate(1 << t)
            manager.store_space(index, space)
    return manager


def allocations_probe(manager, n_allocs=16):
    # Fresh optimistic superdirectory (a restart), as the paper describes.
    rebuilt = BuddyManager(
        manager.volume, manager.pool,
        use_superdirectory=manager.use_superdirectory,
    )
    loads = []
    for _ in range(n_allocs):
        rebuilt.stats.directory_loads = 0
        rebuilt.allocate(64)
        loads.append(rebuilt.stats.directory_loads)
    return loads, rebuilt


def test_e9_superdirectory(benchmark):
    with_sd = build(use_superdirectory=True)
    without_sd = build(use_superdirectory=False)
    loads_sd, rebuilt = allocations_probe(with_sd)
    loads_no, _ = allocations_probe(without_sd)

    report = ExperimentReport(
        "E9",
        f"Directory pages inspected per 64-page allocation ({N_SPACES} spaces, 23 full)",
        ["allocation #", "with superdirectory", "without superdirectory"],
        page_size=PAGE,
    )
    for i, (a, b) in enumerate(zip(loads_sd, loads_no), start=1):
        report.add_row([i, a, b])
    # First request after restart: optimism sends it through every full
    # space once ("this information may be erroneous").
    assert loads_sd[0] == N_SPACES
    # But the wrong guesses corrected themselves; afterwards exactly one
    # directory (the space with room) is inspected.
    assert all(n == 1 for n in loads_sd[1:])
    # Without the superdirectory, every request probes all full spaces.
    assert all(n == N_SPACES for n in loads_no)
    assert rebuilt.stats.superdirectory_corrections == N_SPACES - 1
    report.note(
        "the first wrong guess corrects each space's entry; steady state "
        "is one directory page per request"
    )
    report.emit()

    benchmark.pedantic(
        lambda: allocations_probe(with_sd, n_allocs=4), rounds=1, iterations=1
    )
