"""F5 — Figure 5: the three 1820-byte object shapes.

(a) created with a size hint -> a root with "a single pair pointing to a
    leaf segment consisting of ceil(1820/100) = 19 pages";
(b) created by chunk-wise appends -> doubling segments 1, 2, 4, 8, then
    a trimmed 4;
(c) after edits -> a two-level tree (reproduced structurally in
    tests/test_paper_examples.py; here we produce an edited object
    organically and report its shape).

Pages are 100 bytes, as in the paper's examples.
"""

from repro import EOSConfig, EOSDatabase
from repro.bench.reporting import ExperimentReport


def make_db():
    config = EOSConfig(page_size=100, threshold=1)
    return EOSDatabase.create(num_pages=3000, page_size=100, config=config)


def data(n: int) -> bytes:
    return bytes(i % 251 for i in range(n))


def build_all():
    db = make_db()
    # (a) size hint
    a = db.create_object(size_hint=1820)
    a.append(data(1820))
    a.trim()
    # (b) unknown size, 90-byte chunks
    b = db.create_object()
    payload = data(1820)
    for start in range(0, 1820, 90):
        b.append(payload[start : start + 90])
    b.trim()
    # (c) edited: inserts and deletes reshape the tree
    c = db.create_object(data(1820), size_hint=1820)
    c.insert(1020, data(300))
    c.delete(1020, 300)
    c.insert(280, data(90))
    c.delete(280, 90)
    return db, a, b, c


def test_fig5_object_shapes(benchmark):
    db, a, b, c = benchmark.pedantic(build_all, rounds=3, iterations=1)
    report = ExperimentReport(
        "F5",
        "Figure 5 object shapes (1820 bytes, 100-byte pages)",
        ["object", "height", "segments", "segment pages", "leaf pages", "size from root"],
        page_size=100,
    )
    for label, obj in (("5.a hint", a), ("5.b appends", b), ("5.c edited", c)):
        stats = obj.stats()
        pages = [e.pages for _, e in obj.segments()]
        report.add_row(
            [label, stats.height, stats.segments, str(pages), stats.leaf_pages,
             obj.size()]
        )
        assert obj.size() == 1820
        obj.verify()
    assert [e.pages for _, e in a.segments()] == [19]
    assert [e.pages for _, e in b.segments()] == [1, 2, 4, 8, 4]
    assert len(c.segments()) > 1  # edits split the single segment
    report.note("the size of all three objects is read off the root's rightmost count")
    report.attach_stats(db)
    report.emit()
