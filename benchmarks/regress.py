"""CLI for the perf-regression gate — compare BENCH_*.json to a baseline.

Usage (what CI runs after the benchmark jobs)::

    PYTHONPATH=src python benchmarks/regress.py \
        --baseline benchmarks/results/baseline/ \
        --current benchmarks/results/ \
        --throughput-tolerance 0.15

Exits non-zero when any gated metric regresses past its tolerance:
throughput may drop up to the tolerance (benchmarks are noisy); copy
counts and head-model seek/transfer counts are deterministic, so any
increase fails.  See :mod:`repro.bench.regress` for the comparison
rules and :doc:`README` for how to refresh the baseline after an
intentional performance change.
"""

import argparse
import os
import sys

from repro.bench.regress import Tolerances, compare_dirs

HERE = os.path.dirname(os.path.abspath(__file__))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=os.path.join(HERE, "results", "baseline"),
        help="directory of committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current",
        default=os.path.join(HERE, "results"),
        help="directory of freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--throughput-tolerance",
        type=float,
        default=0.15,
        help="allowed fractional throughput drop (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--copies-tolerance",
        type=float,
        default=0.0,
        help="allowed fractional copies-per-byte increase (default 0)",
    )
    parser.add_argument(
        "--io-tolerance",
        type=float,
        default=0.0,
        help="allowed fractional seek/transfer increase (default 0)",
    )
    args = parser.parse_args(argv)
    report = compare_dirs(
        args.baseline,
        args.current,
        Tolerances(
            throughput=args.throughput_tolerance,
            copies=args.copies_tolerance,
            io=args.io_tolerance,
        ),
    )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
