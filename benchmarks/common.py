"""Shared helpers for the benchmark scripts in this directory.

``benchmarks/`` is not a package — pytest imports these files by path —
so the real implementations live in :mod:`repro.bench`; this module is
the stable, import-light spot benches (and CI) reach them from:

    from common import ExperimentReport, write_bench_json

Every :meth:`ExperimentReport.emit` writes three artifacts into
``benchmarks/results/``:

* ``<id>.txt`` — the paper-style text table;
* ``<id>.metrics.json`` — the stats/metrics sidecar (when a stats
  source is attached);
* ``BENCH_<ID>.json`` — the machine-readable run record (bench id,
  params, raw rows, seeks/transfers, wall ms) CI uploads and diffs.

Standalone scripts that do not want a table can call
:func:`write_bench_json` directly with the same schema.
"""

from repro.bench.jsonout import (
    SCHEMA,
    bench_json_path,
    load_bench_json,
    write_bench_json,
)
from repro.bench.reporting import RESULTS_DIR, ExperimentReport

__all__ = [
    "SCHEMA",
    "RESULTS_DIR",
    "ExperimentReport",
    "bench_json_path",
    "load_bench_json",
    "write_bench_json",
]
