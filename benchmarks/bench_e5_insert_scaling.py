"""E5 — update cost vs object size: bytes involved, not object size.

Objective 3 (Section 1): "the cost of the above piece-wise operations
must depend on the number of bytes involved in the operation, rather
than the size of the entire object."  Section 2 on Starburst: "byte
inserts and deletes ... require all segments to the right of and
including the segment on which the update is performed to be copied into
new segments."

A 100-byte insert lands in the middle of objects of growing size; EOS's
cost stays flat while Starburst's grows linearly with the tail it must
copy.
"""

from repro.bench.harness import make_database
from repro.bench.reporting import ExperimentReport
from repro.baselines import EOSStore, StarburstStore

PAGE = 512
SIZES = (50_000, 100_000, 200_000, 400_000, 800_000)


def insert_cost(db, store, size):
    payload = bytes(i % 251 for i in range(size))
    handle = store.create(payload, size_hint=size)
    db.pool.clear()
    db.disk.stats.head = None
    with db.disk.stats.delta() as delta:
        store.insert(handle, size // 2, b"x" * 100)
    assert store.read(handle, size // 2, 100) == b"x" * 100
    store.delete_object(handle)
    return delta


def run_all():
    rows = []
    for size in SIZES:
        db = make_database(page_size=PAGE, num_pages=16384, threshold=8)
        rows.append(
            (size, insert_cost(db, EOSStore(db), size),
             insert_cost(db, StarburstStore(db.buddy, db.segio), size))
        )
    return rows


def test_e5_insert_cost_scaling(benchmark):
    rows = run_all()
    report = ExperimentReport(
        "E5",
        "100-byte insert at the middle: page transfers vs object size",
        ["object", "EOS transfers", "EOS ms", "Starburst transfers", "Starburst ms"],
        page_size=PAGE,
    )
    eos_costs, star_costs = [], []
    for size, eos, star in rows:
        report.add_row(
            [
                f"{size // 1024} KB",
                eos.page_transfers,
                f"{report.cost_ms(eos):.0f}",
                star.page_transfers,
                f"{report.cost_ms(star):.0f}",
            ]
        )
        eos_costs.append(eos.page_transfers)
        star_costs.append(star.page_transfers)
    # Shape: EOS flat, Starburst linear in object size.
    assert max(eos_costs) <= min(eos_costs) + 2 * (PAGE and 32)
    assert star_costs[-1] > star_costs[0] * 8
    assert star_costs[-1] > eos_costs[-1] * 20
    report.note(
        "EOS touches O(threshold) pages regardless of size; Starburst "
        "re-copies the whole right half of the object"
    )
    report.emit()

    db = make_database(page_size=PAGE, num_pages=16384, threshold=8)
    benchmark.pedantic(
        lambda: insert_cost(db, EOSStore(db), 200_000), rounds=3, iterations=1
    )
