"""E7 — append/create: known vs unknown eventual size (Section 4.1).

Known size: "allocates a segment just large enough to hold the entire
object"; larger objects get "a sequence of maximum size segments".
Unknown size: "successive segments allocated for storage double in size
until the maximum segment size is reached ... the last allocated segment
is always trimmed."

The table reports segment counts, the doubling pattern, allocation calls
and the post-trim waste (always under one page).
"""

from repro.bench.harness import make_database
from repro.bench.reporting import ExperimentReport
from repro.util.bitops import ceil_div

PAGE = 512
TOTAL = 300_000
CHUNK = 3000


def build(known_size: bool):
    db = make_database(page_size=PAGE, num_pages=4096, threshold=8)
    hint = TOTAL if known_size else None
    obj = db.create_object(size_hint=hint)
    payload = bytes(i % 251 for i in range(TOTAL))
    allocs_before = db.buddy.stats.allocations
    for start in range(0, TOTAL, CHUNK):
        obj.append(payload[start : start + CHUNK])
    obj.trim()
    allocs = db.buddy.stats.allocations - allocs_before
    assert obj.read_all() == payload
    return db, obj, allocs


def test_e7_append_growth(benchmark):
    report = ExperimentReport(
        "E7",
        f"Create 300 KB by {CHUNK}-byte appends ({PAGE}-byte pages)",
        ["size hint", "segments", "segment pages", "allocations", "waste bytes"],
        page_size=PAGE,
    )
    results = {}
    for known in (True, False):
        db, obj, allocs = build(known)
        sizes = [e.pages for _, e in obj.segments()]
        stats = obj.stats()
        waste = stats.leaf_pages * PAGE - stats.size_bytes
        label = "known (exact)" if known else "unknown (doubling)"
        shown = str(sizes) if len(sizes) <= 12 else f"{sizes[:10]} ... x{len(sizes)}"
        report.add_row([label, stats.segments, shown, allocs, waste])
        results[known] = (sizes, waste)
        # Objective 5: waste after trimming is always less than one page.
        assert waste < PAGE
        obj.verify()
    known_sizes, _ = results[True]
    unknown_sizes, _ = results[False]
    # Known size: maximum-size segments plus an exact remainder.
    max_seg = 1024  # 2**10 for 512-byte pages
    assert all(s == max_seg for s in known_sizes[:-1])
    assert known_sizes[-1] == ceil_div(TOTAL, PAGE) - max_seg * (len(known_sizes) - 1)
    # Unknown size: doubling prefix 1, 2, 4, ... (trimmed tail may break
    # the pattern at the very end).
    expected = [min(2 ** i, max_seg) for i in range(len(unknown_sizes))]
    assert unknown_sizes[:-1] == expected[: len(unknown_sizes) - 1]
    report.note("doubling reaches the maximum segment size, then repeats it")
    report.attach_stats(db)
    report.emit()

    benchmark.pedantic(lambda: build(False), rounds=1, iterations=1)
