"""E3 — preserving clustering: what T=1 does to a busy object.

Section 4.4: without the threshold, "it is certain that a reasonable
number of such operations evenly distributed over the object will
deteriorate the physical continuity of all pages in which the large
object is stored, and leaf segments will be just 1-page long", with two
consequences: multi-page reads seek per page, and the tree grows.

The experiment edits one object under T in {1, 4, 16} and tracks mean
segment size, scan seeks, and tree height as edits accumulate.
"""

from repro.bench.harness import apply_trace, make_database
from repro.bench.reporting import ExperimentReport
from repro.baselines.eos_adapter import EOSStore
from repro.workloads.generator import random_edits, sequential_scan

PAGE = 512
OBJECT_BYTES = 300_000
CHUNK = 16 * PAGE


def scan_seeks(db, store, obj):
    db.pool.clear()
    db.disk.stats.head = None
    with db.disk.stats.delta() as d:
        apply_trace(store, obj, sequential_scan(store.size(obj), CHUNK))
    return d.seeks


def run(threshold: int, batches: int, edits_per_batch: int):
    db = make_database(page_size=PAGE, num_pages=8192, threshold=threshold)
    store = EOSStore(db)
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    obj = store.create(payload, size_hint=OBJECT_BYTES)
    rows = []
    for batch in range(batches):
        trace = random_edits(
            store.size(obj), edits_per_batch, edit_bytes=40, seed=batch * 7 + threshold
        )
        apply_trace(store, obj, trace)
        obj.trim()
        rows.append(
            (
                (batch + 1) * edits_per_batch,
                obj.mean_segment_pages(),
                scan_seeks(db, store, obj),
                obj.stats().height,
            )
        )
    return rows


def test_e3_clustering_degradation(benchmark):
    report = ExperimentReport(
        "E3",
        "Mean segment size / scan seeks / height vs accumulated edits",
        ["T", "edits", "mean seg pages", "scan seeks", "height"],
        page_size=PAGE,
    )
    finals = {}
    for threshold in (1, 4, 16):
        rows = run(threshold, batches=4, edits_per_batch=30)
        for edits, mean_pages, seeks, height in rows:
            report.add_row([threshold, edits, f"{mean_pages:.1f}", seeks, height])
        finals[threshold] = rows[-1]
    # Shape: T=1 fragments hardest; higher T keeps segments big and
    # scans cheap.
    assert finals[1][1] < finals[4][1] < finals[16][1]
    assert finals[1][2] > finals[16][2]
    report.note(
        "T=1 reproduces the paper's warning: segments shrink toward a page "
        "and every page touch becomes a seek; T>=4 repairs damage as it "
        "happens"
    )
    report.emit()

    benchmark.pedantic(
        lambda: run(4, batches=1, edits_per_batch=30), rounds=1, iterations=1
    )
