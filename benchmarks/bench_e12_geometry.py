"""E12 (extension) — are the paper's conclusions geometry-bound?

The paper's case for physical contiguity rests on the seek/transfer cost
ratio of late-1980s disks.  This ablation re-prices the E4 sequential
scan and the E5 middle-insert under three geometries:

* the 1992 disk the paper assumes (seek ≈ 12 page transfers at 4 KB);
* a modern HDD (seek ≈ 400 page transfers — contiguity matters MORE);
* an SSD-like device (seek ≈ 2 transfers — contiguity stops mattering,
  but EOS's update-cost and utilization wins are I/O-volume properties
  and survive).

No code changes between rows: the same measured seek/transfer counts are
re-priced, which is exactly the claim's structure.
"""

from repro.bench.harness import make_database, run_trace_measured
from repro.bench.reporting import ExperimentReport
from repro.baselines import EOSStore, StarburstStore, WissStore, Placement
from repro.storage.geometry import DISK_1992, MODERN_HDD, MODERN_SSD
from repro.workloads.generator import sequential_scan

PAGE = 512
OBJECT_BYTES = 150_000
GEOMETRIES = (DISK_1992, MODERN_HDD, MODERN_SSD)


def measure_scan():
    db = make_database(
        page_size=PAGE, num_pages=16384, threshold=8, space_capacity=1024
    )
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    out = {}
    eos = EOSStore(db)
    h = eos.create(payload, size_hint=OBJECT_BYTES)
    out["EOS"] = run_trace_measured(
        db, eos, h, sequential_scan(OBJECT_BYTES, 16 * PAGE), cold_cache=True
    )
    wiss = WissStore(db.buddy, db.segio, placement=Placement.SCATTERED,
                     max_slices=1000)
    hw = wiss.create(payload)
    out["WiSS"] = run_trace_measured(
        db, wiss, hw, sequential_scan(OBJECT_BYTES, 16 * PAGE), cold_cache=True
    )
    star = StarburstStore(db.buddy, db.segio)
    hs = star.create(payload, size_hint=OBJECT_BYTES)
    db.disk.stats.head = None
    with db.disk.stats.delta() as ins_star:
        star.insert(hs, OBJECT_BYTES // 2, b"x" * 100)
    h2 = eos.create(payload, size_hint=OBJECT_BYTES)
    db.disk.stats.head = None
    with db.disk.stats.delta() as ins_eos:
        eos.insert(h2, OBJECT_BYTES // 2, b"x" * 100)
    return out, ins_eos, ins_star


def test_e12_geometry_sensitivity(benchmark):
    scans, ins_eos, ins_star = measure_scan()
    report = ExperimentReport(
        "E12",
        "The same measured I/O, priced under three disk geometries (ms)",
        ["workload", "1992 disk", "modern HDD", "SSD-like"],
        page_size=PAGE,
    )
    ratios = {}
    for name, delta in scans.items():
        costs = [g.cost_ms(delta.seeks, delta.page_transfers, PAGE) for g in GEOMETRIES]
        report.add_row([f"scan 150 KB — {name}", *(f"{c:.0f}" for c in costs)])
        ratios[name] = costs
    for label, delta in (("insert — EOS", ins_eos), ("insert — Starburst", ins_star)):
        costs = [g.cost_ms(delta.seeks, delta.page_transfers, PAGE) for g in GEOMETRIES]
        report.add_row([label, *(f"{c:.1f}" for c in costs)])

    # The contiguity advantage (scan: EOS vs WiSS) grows on a modern HDD
    # and nearly vanishes on the SSD.
    gap_1992 = ratios["WiSS"][0] / ratios["EOS"][0]
    gap_hdd = ratios["WiSS"][1] / ratios["EOS"][1]
    gap_ssd = ratios["WiSS"][2] / ratios["EOS"][2]
    assert gap_hdd > gap_1992 > gap_ssd
    # A seek-per-page scan can cost at most ~(1 + seek-equivalent-pages)x
    # a contiguous one; on the SSD that bound collapses toward the
    # per-command overhead (and vanishes entirely at 4 KB pages, where
    # transfer and command cost are comparable).
    assert gap_ssd <= 1 + MODERN_SSD.seek_equivalent_pages(PAGE) * 1.2
    assert MODERN_SSD.seek_equivalent_pages(4096) < 3
    # The update-cost advantage (EOS vs Starburst) is an I/O-volume
    # property: it survives every geometry.
    for i in range(3):
        eos_cost = GEOMETRIES[i].cost_ms(ins_eos.seeks, ins_eos.page_transfers, PAGE)
        star_cost = GEOMETRIES[i].cost_ms(ins_star.seeks, ins_star.page_transfers, PAGE)
        assert star_cost > eos_cost * 3
    report.note(
        f"scan gap EOS-vs-WiSS: {gap_1992:.0f}x (1992) -> {gap_hdd:.0f}x "
        f"(modern HDD) -> {gap_ssd:.1f}x (SSD); the insert gap persists "
        f"everywhere because it is transfer volume, not seeks"
    )
    report.emit()

    benchmark.pedantic(measure_scan, rounds=1, iterations=1)
