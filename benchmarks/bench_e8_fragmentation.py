"""E8 — internal fragmentation: answering [Selt91].

Section 1: "previous work on the performance of the buddy system ...
suggests that this allocation policy is prone to severe internal
fragmentation.  Our design does not suffer from this problem because the
unused portion of an allocated segment is always less than a page."

Many objects of log-uniform sizes are created; we compare the pages a
*classic* power-of-two buddy would hand out (round up to 2^ceil) with
what EOS's carve-to-the-page allocation actually grants, and assert the
per-object waste bound.
"""

import random

from repro.bench.harness import make_database
from repro.bench.reporting import ExperimentReport
from repro.util.bitops import ceil_div, next_power_of_two

PAGE = 512
N_OBJECTS = 150


def run_all():
    db = make_database(page_size=PAGE, num_pages=32768, threshold=4)
    rng = random.Random(42)
    live = []
    total_bytes = 0
    classic_pages = 0
    for i in range(N_OBJECTS):
        scale = rng.choice([1, 1, 2, 4, 10, 40])
        size = rng.randint(PAGE // 2, PAGE * 6) * scale
        obj = db.create_object(size_hint=size)
        obj.append(bytes(size))
        obj.trim()
        live.append((obj, size))
        total_bytes += size
        needed = ceil_div(size, PAGE)
        # A classic buddy system rounds every request up to a power of two.
        classic_pages += next_power_of_two(needed)
        # Age the volume: occasionally drop an object.
        if rng.random() < 0.25 and len(live) > 3:
            victim, _ = live.pop(rng.randrange(len(live)))
            db.delete_object(victim)
    granted_pages = sum(obj.stats().leaf_pages for obj, _ in live)
    live_bytes = sum(size for _, size in live)
    return db, live, live_bytes, granted_pages, classic_pages, total_bytes


def test_e8_internal_fragmentation(benchmark):
    db, live, live_bytes, granted, classic, total = run_all()
    needed = ceil_div(live_bytes, PAGE)

    report = ExperimentReport(
        "E8",
        f"Internal fragmentation over {N_OBJECTS} log-uniform objects",
        ["allocator", "data pages granted", "overhead vs exact", "waste/object"],
        page_size=PAGE,
    )
    # EOS grants exactly ceil(size/PAGE) pages per (trimmed) object.
    eos_waste_pages = granted - sum(
        ceil_div(size, PAGE) for _, size in live
    )
    report.add_row(
        ["EOS buddy + trim", granted, f"{granted / needed - 1:.1%}",
         f"{eos_waste_pages / len(live):.2f} pages"]
    )
    # The classic policy is reported over the full creation stream (it is
    # a policy comparison, not a surviving-set comparison).
    report.add_row(
        ["classic pow2 buddy", classic,
         f"{classic * PAGE / total - 1:.1%}", "up to 2^k - n pages"]
    )
    assert eos_waste_pages == 0  # granted == needed, per object
    for obj, size in live:
        stats = obj.stats()
        # "the unused portion of an allocated segment is always less
        # than a page" — per object: waste < one page per segment's tail
        # and, trimmed, strictly less than one page overall.
        assert stats.leaf_pages * PAGE - size < PAGE * stats.segments
        assert stats.leaf_pages == ceil_div(size, PAGE)
    # The classic policy wastes substantially more than EOS's page-exact one.
    assert classic * PAGE > total * 1.15
    report.note(
        "classic power-of-two rounding averages ~33% overhead on uniform "
        "sizes; carving + trimming makes waste sub-page, answering [Selt91]"
    )
    report.attach_stats(db)
    report.emit()

    benchmark.pedantic(run_all, rounds=1, iterations=1)
