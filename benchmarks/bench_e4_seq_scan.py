"""E4 — sequential scan: I/O rates close to transfer rates.

Objective 3 (Section 1): "we want to minimize disk head seeks so that
I/O rates are close to transfer rates", which requires "disk space
allocated in large units of physically adjacent disk blocks, rather than
on a block-by-block basis".  Section 2's critique of System R and WiSS:
"blocks that store consecutive byte ranges of the object are scattered
over a disk volume.  As a result, reads will be slow because virtually
every disk page fetch will most likely result in a disk seek."

Each store builds an object of the same content on an aged (scattered-
placement) volume, then scans it in chunks; we report seeks, transfers,
and modelled time on the 1992 geometry.  System R is scanned at its own
32 KB cap (its hard limit *is* one of the results).
"""

import time

from repro.bench.harness import make_database, run_trace_measured
from repro.bench.reporting import ExperimentReport
from repro.baselines import (
    EOSStore,
    ExodusStore,
    Placement,
    StarburstStore,
    SystemRStore,
    WissStore,
)
from repro.workloads.generator import Operation, sequential_scan

PAGE = 512
OBJECT_BYTES = 200_000
CHUNK = 16 * PAGE


def build_stores(db):
    return [
        EOSStore(db),
        StarburstStore(db.buddy, db.segio),
        ExodusStore(db.buddy, db.segio, db.pager, leaf_pages=4,
                    placement=Placement.SCATTERED),
        ExodusStore(db.buddy, db.segio, db.pager, leaf_pages=1,
                    placement=Placement.SCATTERED),
        WissStore(db.buddy, db.segio, placement=Placement.SCATTERED,
                  max_slices=1000),
        SystemRStore(db.buddy, db.segio, placement=Placement.SCATTERED),
    ]


def run_all():
    db = make_database(
        page_size=PAGE, num_pages=16384, threshold=8, space_capacity=1024
    )
    rows = []
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    for store in build_stores(db):
        size = OBJECT_BYTES
        if store.name == "SystemR":
            size = 32 * 1024  # the system's own cap
        handle = store.create(payload[:size], size_hint=size)
        if store.name == "SystemR":
            # System R has no partial reads: one whole-object read.
            delta = run_trace_measured(
                db, store, handle, [Operation("read", 0, size)], cold_cache=True
            )
        else:
            delta = run_trace_measured(
                db, store, handle, sequential_scan(size, CHUNK), cold_cache=True
            )
        rows.append((store.name, size, delta))
        store.delete_object(handle)
    return db, rows


def test_e4_sequential_scan(benchmark):
    t0 = time.perf_counter()
    db, rows = run_all()
    wall_ms = (time.perf_counter() - t0) * 1000.0
    report = ExperimentReport(
        "E4",
        f"Sequential scan in {CHUNK // 1024} KB chunks on an aged volume",
        ["system", "object", "seeks", "page transfers", "seeks/MB", "modelled ms/MB"],
        page_size=PAGE,
    )
    report.set_wall_ms(wall_ms)
    results = {}
    for name, size, delta in rows:
        mb = size / (1 << 20)
        report.add_row(
            [
                name,
                f"{size // 1024} KB",
                delta.seeks,
                delta.page_transfers,
                f"{delta.seeks / mb:.0f}",
                f"{report.cost_ms(delta) / mb:.0f}",
            ]
        )
        results[name] = delta.seeks / mb
    # Shape: EOS and Starburst (big contiguous extents) scan with an
    # order of magnitude fewer seeks than the page-at-a-time systems.
    assert results["EOS"] < results["Exodus(4p)"]
    assert results["EOS"] < results["WiSS"] / 5
    assert results["EOS"] < results["SystemR"] / 5
    assert results["Starburst"] < results["WiSS"] / 5
    report.note(
        "EOS and Starburst approach transfer-rate-bound scanning; WiSS and "
        "System R seek on virtually every page, Exodus every leaf block"
    )
    report.attach_stats(db)
    report.emit()

    benchmark.pedantic(run_all, rounds=1, iterations=1)
