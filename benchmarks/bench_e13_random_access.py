"""E13 — random byte-range access: cost independent of object size.

Objective stated in Section 1: "good random access implies that the cost
of locating a given byte within the object is independent of the object
size.  This requirement by itself rules out solutions based on chaining
the pages ... in a linear linked list fashion."

The positional tree gives O(height) index reads + one contiguous leaf
read; height grows logarithmically (and is 1-2 for anything that fits a
laptop).  The linked-list foil must walk the chain from the head, paying
O(offset) page reads.  Compaction (the Section 4.4 maintenance idea,
wholesale) restores post-edit objects to their created-with-hint shape.
"""

from repro.bench.harness import make_database
from repro.bench.reporting import ExperimentReport
from repro.baselines import EOSStore
from repro.workloads.generator import random_edits

PAGE = 512
READ = 2048


def chained_read_cost(object_bytes: int, offset: int, page_size: int) -> int:
    """Page reads a linked-list layout needs to reach ``offset``."""
    return offset // page_size + 1


def run_eos(size):
    db = make_database(page_size=PAGE, num_pages=16384, threshold=8)
    store = EOSStore(db)
    payload = bytes(i % 251 for i in range(size))
    obj = store.create(payload, size_hint=size)
    db.checkpoint()
    offset = size * 3 // 4
    with db.stats.delta(cold=True) as delta:
        obj.read(offset, READ)
    return delta, obj, db


def test_e13_random_access(benchmark):
    report = ExperimentReport(
        "E13",
        f"Read {READ} B at the 75% offset (cold cache, index included)",
        ["object", "EOS seeks", "EOS page reads", "chained-list page reads"],
        page_size=PAGE,
    )
    eos_reads = []
    for size in (100_000, 400_000, 1_600_000):
        delta, obj, db = run_eos(size)
        chained = chained_read_cost(size, size * 3 // 4, PAGE)
        report.add_row([f"{size // 1024} KB", delta.seeks, delta.page_reads, chained])
        eos_reads.append(delta.page_reads)
    # EOS cost is ~flat (one extra index level at most); the chain is linear.
    assert max(eos_reads) <= min(eos_reads) + 2
    report.note(
        "EOS pays height-of-tree index reads plus ceil(2048/512)+1 leaf "
        "pages; a linked list pays one read per page before the offset"
    )
    report.attach_stats(db)
    report.emit()

    benchmark.pedantic(lambda: run_eos(400_000), rounds=2, iterations=1)


def test_e13_compaction_restores_clustering(benchmark):
    db = make_database(page_size=PAGE, num_pages=16384, threshold=1)
    store = EOSStore(db)
    size = 300_000
    obj = store.create(bytes(i % 251 for i in range(size)), size_hint=size)
    content_before = None
    for op_i, op in enumerate(random_edits(size, 250, edit_bytes=40, seed=13)):
        if op.kind == "insert":
            obj.insert(op.offset, op.data)
        else:
            obj.delete(op.offset, op.length)
    obj.trim()
    content_before = obj.read_all()
    fragged = obj.stats()

    segments_after = benchmark.pedantic(obj.compact, rounds=1, iterations=1)
    compacted = obj.stats()
    assert obj.read_all() == content_before
    obj.verify()

    report = ExperimentReport(
        "E13b",
        "Compaction after 250 edits at T=1 (fully fragmented object)",
        ["state", "segments", "leaf pages", "mean seg pages", "leaf util"],
        page_size=PAGE,
    )
    for label, stats in (("fragmented", fragged), ("compacted", compacted)):
        report.add_row(
            [
                label,
                stats.segments,
                stats.leaf_pages,
                f"{stats.leaf_pages / stats.segments:.1f}",
                f"{stats.leaf_utilization(PAGE):.1%}",
            ]
        )
    assert compacted.segments < fragged.segments / 10
    assert compacted.leaf_utilization(PAGE) > 0.99
    report.note("compaction = wholesale Section 4.4: back to hint-created shape")
    report.attach_stats(db)
    report.emit()
