"""AGE1 — fragmentation trajectory of an aged volume, plus monitor cost.

EOS's experiments (and every bench before this one) run on *fresh*
volumes.  Real volumes age: weeks of create/append/delete churn
fragment free space, scatter object extents, and — if the allocator is
bad at coalescing — make sequential scans seek-bound.  The buddy
system's whole pitch (Section 3) is that aggressive coalescing keeps
large free segments available, so an aged volume should still place new
objects contiguously and scan at close to fresh throughput.

The run, per size mix:

1. **fresh** — :class:`~repro.workloads.aging.AgingWorkload` fills a
   fresh volume to the utilization target, then every live object is
   scanned cold-cache and the head model prices the I/O on the 1992
   geometry (modelled MB/s);
2. **churn** — epochs of seeded create/append/delete churn age the
   volume inside a utilization band.  After each epoch the
   storage-health collector records the trajectory row: fragmentation
   index, per-object est. seeks/MB, utilization.  A
   :class:`~repro.obs.health.HealthMonitor` runs at its default
   interval *during* churn, and its measured sampling time must stay
   under ``MONITOR_OVERHEAD_CEILING`` of the churn wall clock;
3. **aged** — the monitor is stopped (its pool reads would perturb the
   head model), then the surviving live set is scanned exactly like
   phase 1.  The gate: modelled aged throughput must stay at or above
   ``SCAN_RATIO_FLOOR`` of fresh.

Everything is seeded, so the trajectory rows are machine-stable and
:mod:`repro.bench.regress` gates them with zero tolerance alongside the
scan ratio.
"""

import time

from common import ExperimentReport

from repro.bench.harness import make_database
from repro.obs.health import DEFAULT_INTERVAL_S, HealthMonitor, collect_volume_health
from repro.workloads.aging import AgingWorkload

PAGE = 4096
PAGES = 8192  # 32 MB volume
SCAN_CHUNK = 16 * PAGE
TARGET_UTILIZATION = 0.55
EPOCHS = 6
OPS_PER_EPOCH = 120
MIXES = ("small", "mixed")
#: Aged-volume modelled scan throughput must stay within this fraction
#: of the fresh volume's — the buddy allocator's anti-aging guarantee.
SCAN_RATIO_FLOOR = 0.8
#: The monitor's sampling time over the churn phase's wall clock.
MONITOR_OVERHEAD_CEILING = 0.02


def _scan_modelled_mb_s(db, report, oids):
    """Cold-cache sequential scan of every object; head-model MB/s.

    Wall-clock MB/s on an in-memory volume measures the interpreter,
    not the layout; the head model prices the same I/O pattern on the
    report's geometry, which is what fragmentation actually taxes.
    """
    total_bytes = 0
    with db.stats.delta(cold=True) as delta:
        for oid in oids:
            size = db.op_stat(oid).size_bytes
            offset = 0
            while offset < size:
                chunk = db.op_read(
                    oid, offset=offset, length=min(SCAN_CHUNK, size - offset)
                )
                offset += len(chunk)
            total_bytes += size
    modelled_ms = report.cost_ms(delta)
    if not modelled_ms:
        return 0.0
    return (total_bytes / (1 << 20)) / (modelled_ms / 1000.0)


def _run_mix(mix, report):
    """Age one volume at one size mix; returns (rows, scan, monitor)."""
    db = make_database(page_size=PAGE, num_pages=PAGES, threshold=8)
    try:
        workload = AgingWorkload(
            db, mix=mix, seed=42, target_utilization=TARGET_UTILIZATION
        )
        workload.build()
        fresh_mb_s = _scan_modelled_mb_s(db, report, workload.live_oids())

        monitor = HealthMonitor(db=db, interval_s=DEFAULT_INTERVAL_S)
        monitor.start()
        churn_t0 = time.perf_counter()
        rows = []
        for epoch in range(1, EPOCHS + 1):
            workload.run_epoch(OPS_PER_EPOCH)
            health = collect_volume_health(db)
            rows.append(
                [
                    mix,
                    epoch,
                    round(health.utilization, 4),
                    round(health.frag_index, 4),
                    round(health.mean_seeks_per_mb(), 2),
                    len(workload.live_oids()),
                ]
            )
        churn_ms = (time.perf_counter() - churn_t0) * 1000.0
        monitor.stop()  # its pool reads would perturb the scan's head model
        monitor_stats = {
            "samples": monitor.samples_taken,
            "sample_ms": round(monitor.total_sample_ms, 3),
            "churn_ms": round(churn_ms, 1),
            "overhead": round(monitor.total_sample_ms / churn_ms, 5),
        }

        aged_mb_s = _scan_modelled_mb_s(db, report, workload.live_oids())
        scan = {
            "fresh_mb_s": round(fresh_mb_s, 2),
            "aged_mb_s": round(aged_mb_s, 2),
            "ratio": round(aged_mb_s / fresh_mb_s, 4) if fresh_mb_s else 0.0,
        }
        return rows, scan, monitor_stats
    finally:
        db.close()


def run_all():
    report = ExperimentReport(
        "AGE1",
        "Fragmentation and scan throughput under multi-day churn",
        ["mix", "epoch", "util", "frag index", "est seeks/MB", "live objects"],
        page_size=PAGE,
    )
    scans = {}
    monitors = {}
    for mix in MIXES:
        rows, scan, monitor_stats = _run_mix(mix, report)
        for row in rows:
            report.add_row(row)
        scans[mix] = scan
        monitors[mix] = monitor_stats
    return report, scans, monitors


def test_age1_fragmentation(benchmark):
    t0 = time.perf_counter()
    report, scans, monitors = run_all()
    wall_ms = (time.perf_counter() - t0) * 1000.0
    report.set_wall_ms(wall_ms)
    report.set_params(
        target_utilization=TARGET_UTILIZATION,
        epochs=EPOCHS,
        ops_per_epoch=OPS_PER_EPOCH,
        monitor_interval_s=DEFAULT_INTERVAL_S,
        scan=scans,
        monitor=monitors,
    )
    for mix, scan in scans.items():
        report.note(
            f"{mix}: fresh {scan['fresh_mb_s']:.1f} MB/s -> aged "
            f"{scan['aged_mb_s']:.1f} MB/s modelled "
            f"({scan['ratio']:.2f}x, floor {SCAN_RATIO_FLOOR}x); monitor "
            f"sampled {monitors[mix]['samples']}x for "
            f"{monitors[mix]['sample_ms']:.1f} ms "
            f"({monitors[mix]['overhead']:.2%} of churn)"
        )
    report.emit()
    # Shape: the buddy allocator's coalescing must keep aged placement
    # contiguous enough that scans stay near transfer-rate-bound.
    for mix, scan in scans.items():
        assert scan["ratio"] >= SCAN_RATIO_FLOOR, (
            f"{mix}: aged scan fell to {scan['ratio']:.2f}x of fresh "
            f"(floor {SCAN_RATIO_FLOOR}x): {scan}"
        )
    # The monitor must be an observer, not a tenant: sampling time under
    # 2% of the churn phase it ran against, at the default interval.
    for mix, stats in monitors.items():
        assert stats["overhead"] < MONITOR_OVERHEAD_CEILING, (
            f"{mix}: health sampling took {stats['overhead']:.2%} of the "
            f"churn phase (ceiling {MONITOR_OVERHEAD_CEILING:.0%}): {stats}"
        )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
