"""SRV2 — sharded-server scaling under concurrent clients.

Drives the sharded :class:`~repro.server.EOSServer` (in-process, over
real TCP sockets) at 1 and N shards with the same client load and
reports requests/second plus p50/p99 latency per (shards, clients)
level.

Every shard's volume sits behind a
:class:`~repro.storage.timing.TimedDisk`: a modelled seek plus a
per-page transfer time is *slept* on every accounted run, so the bench
measures what the paper's independent-volume design actually buys —
with one shard every request serializes on one disk arm, while N
shared-nothing shards overlap their service time like N arms.  Each
client reads objects living on one shard (workload affinity), so at
8 clients x 4 shards every arm stays busy and throughput approaches
4x the 1-shard ceiling.  The in-bench shape assert requires >= 3x.
"""

import random
import threading
import time

from common import ExperimentReport

from repro.server import EOSClient, ServerThread
from repro.server.sharding import ShardSet
from repro.storage.disk import DiskVolume
from repro.storage.timing import TimedDisk

PAGE = 512
PAGES_PER_SHARD = 6144
OBJECT_BYTES = 64 * 1024
N_OBJECTS = 16
CHUNK = 4 * PAGE
OPS_PER_CLIENT = 30
SHARD_COUNTS = (1, 4)
CLIENT_COUNTS = (1, 2, 4, 8)
SEEK_MS = 2.0
TRANSFER_MS_PER_PAGE = 0.05
SCALING_FLOOR = 3.0


def _disk_factory(_index):
    return TimedDisk(
        DiskVolume(num_pages=PAGES_PER_SHARD, page_size=PAGE),
        seek_ms=SEEK_MS,
        transfer_ms_per_page=TRANSFER_MS_PER_PAGE,
    )


def _percentile(sorted_ms, q):
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, round(q * (len(sorted_ms) - 1)))
    return sorted_ms[idx]


def _client_worker(port, oids, client_id, latencies_out, errors):
    """One client: random chunk reads over its assigned objects."""
    rng = random.Random(client_id)
    lat = []
    try:
        with EOSClient(port=port, timeout=120.0) as c:
            for _ in range(OPS_PER_CLIENT):
                oid = oids[rng.randrange(len(oids))]
                off = rng.randrange(0, OBJECT_BYTES - CHUNK)
                t0 = time.perf_counter()
                data = c.read(oid, off, CHUNK)
                lat.append((time.perf_counter() - t0) * 1000.0)
                if len(data) != CHUNK:
                    raise AssertionError(f"short read of oid {oid} at {off}")
    except Exception as exc:  # pragma: no cover - failure path
        errors.append(f"client {client_id}: {exc}")
    latencies_out.extend(lat)


def run_level(port, oids_by_shard, n_shards, n_clients):
    """Run one concurrency level; returns (req/s, p50 ms, p99 ms).

    Client ``i`` reads the objects living on shard ``i % n_shards``, so
    the offered load spreads evenly over the arms.
    """
    latencies: list[float] = []
    errors: list[str] = []
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(port, oids_by_shard[i % n_shards], i, latencies, errors),
            daemon=True,
        )
        for i in range(n_clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(240)
    elapsed = time.perf_counter() - t0
    assert not errors, errors
    n_requests = n_clients * OPS_PER_CLIENT
    assert len(latencies) == n_requests
    latencies.sort()
    return (
        n_requests / elapsed,
        _percentile(latencies, 0.50),
        _percentile(latencies, 0.99),
    )


def run_config(n_shards):
    """All client levels against one shard count; returns bench rows."""
    shardset = ShardSet.create(
        n_shards, PAGES_PER_SHARD, PAGE, disk_factory=_disk_factory
    )
    payload = bytes(i % 251 for i in range(OBJECT_BYTES))
    rows = []
    try:
        with ServerThread(shards=shardset, port=0, max_inflight=64) as srv:
            with EOSClient(port=srv.port, timeout=120.0) as admin:
                oids = [
                    admin.create(payload, size_hint=OBJECT_BYTES)
                    for _ in range(N_OBJECTS)
                ]
            oids_by_shard = {
                s: [oid for oid in oids if oid % n_shards == s]
                for s in range(n_shards)
            }
            # Least-loaded placement must have spread the objects evenly.
            assert all(
                len(group) == N_OBJECTS // n_shards
                for group in oids_by_shard.values()
            )
            for n in CLIENT_COUNTS:
                rows.append(
                    (n_shards, n, *run_level(srv.port, oids_by_shard, n_shards, n))
                )
    finally:
        shardset.close()
    return rows


def run_all():
    rows = []
    for n_shards in SHARD_COUNTS:
        rows.extend(run_config(n_shards))
    return rows


def test_sharded_scaling(benchmark):
    t0 = time.perf_counter()
    rows = run_all()
    wall_ms = (time.perf_counter() - t0) * 1000.0
    report = ExperimentReport(
        "SRV2",
        f"Sharded server scaling on timed disks ({SEEK_MS} ms seek, "
        f"{TRANSFER_MS_PER_PAGE} ms/page), {CHUNK // 1024} KB random reads",
        ["shards", "clients", "req/s", "p50 ms", "p99 ms"],
        page_size=PAGE,
    )
    report.set_params(
        object_bytes=OBJECT_BYTES,
        n_objects=N_OBJECTS,
        chunk_bytes=CHUNK,
        ops_per_client=OPS_PER_CLIENT,
        seek_ms=SEEK_MS,
        transfer_ms_per_page=TRANSFER_MS_PER_PAGE,
        shard_counts=",".join(str(n) for n in SHARD_COUNTS),
        client_counts=",".join(str(n) for n in CLIENT_COUNTS),
    )
    report.set_wall_ms(wall_ms)
    by_level = {}
    for n_shards, n_clients, rps, p50, p99 in rows:
        report.add_row(
            [n_shards, n_clients, round(rps), round(p50, 2), round(p99, 2)]
        )
        by_level[(n_shards, n_clients)] = rps
    max_shards = max(SHARD_COUNTS)
    max_clients = max(CLIENT_COUNTS)
    scaling = by_level[(max_shards, max_clients)] / by_level[(1, max_clients)]
    report.note(
        f"{max_shards}-shard speedup over 1 shard at {max_clients} clients: "
        f"{scaling:.2f}x (floor {SCALING_FLOOR}x) — shared-nothing shards "
        "overlap disk service time like independent arms"
    )
    report.emit()
    # Shape: the whole point of sharding.  One disk arm serializes every
    # request; N arms must overlap to near-linear speedup.
    assert scaling >= SCALING_FLOOR, (
        f"{max_shards} shards gave only {scaling:.2f}x the 1-shard "
        f"throughput at {max_clients} clients (floor {SCALING_FLOOR}x)"
    )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
