"""Setuptools shim.

The offline environment ships a setuptools without the ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail.  This file lets
``pip install -e . --no-use-pep517`` fall back to the legacy editable
path.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
