"""Power-of-two arithmetic used throughout the buddy system.

The binary buddy system of Section 3 relies on three facts about
power-of-two-sized, size-aligned segments:

* the buddy of a segment is found by XOR-ing its address with its size
  (Section 3.2);
* any segment size can be decomposed into a sum of distinct powers of two,
  which is exactly the binary representation of the size (Figure 4); and
* the free remainder of a rounded-up allocation decomposes the same way,
  but laid out in *reverse* order so every piece stays size-aligned.

These helpers implement that arithmetic once, with the alignment rules
spelled out, so the allocator code reads like the paper.
"""

from __future__ import annotations


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive integral power of two."""
    return n > 0 and (n & (n - 1)) == 0


def floor_log2(n: int) -> int:
    """Return the largest t with ``2**t <= n``.

    Raises ValueError for non-positive ``n``.
    """
    if n <= 0:
        raise ValueError(f"floor_log2 requires a positive integer, got {n}")
    return n.bit_length() - 1


def ceil_log2(n: int) -> int:
    """Return the smallest t with ``2**t >= n``.

    Raises ValueError for non-positive ``n``.
    """
    if n <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {n}")
    return (n - 1).bit_length()


def next_power_of_two(n: int) -> int:
    """Round ``n`` up to the next power of two (identity on powers of two)."""
    return 1 << ceil_log2(n)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires a positive divisor, got {b}")
    return -(-a // b)


def buddy_of(address: int, size: int) -> int:
    """Return the buddy of the segment at ``address`` with ``size`` pages.

    Both the address and the size must be powers-of-two-compatible: size a
    power of two and address a multiple of size.  This is the XOR trick of
    Section 3.2: the buddy of segment 6 of size 2 is ``0110 ^ 0010 = 0100``
    (segment 4), and symmetrically the buddy of 4 is 6.
    """
    if not is_power_of_two(size):
        raise ValueError(f"segment size must be a power of two, got {size}")
    if address % size:
        raise ValueError(
            f"segment address {address} is not aligned to its size {size}"
        )
    return address ^ size


def power_of_two_decomposition(n: int) -> list[int]:
    """Decompose ``n`` into powers of two, largest first.

    ``11 == 0b1011`` decomposes into ``[8, 2, 1]``.  Laying the pieces out
    largest-first starting at a sufficiently aligned address keeps every
    piece aligned to its own size: if the start is aligned to
    ``next_power_of_two(n)``, each subsequent piece starts at an offset that
    is a multiple of its size (Figure 4.a/4.b in the paper).
    """
    if n < 0:
        raise ValueError(f"cannot decompose a negative size: {n}")
    pieces = []
    bit = 1 << max(n.bit_length() - 1, 0)
    while bit:
        if n & bit:
            pieces.append(bit)
        bit >>= 1
    return pieces


def reverse_power_of_two_decomposition(n: int) -> list[int]:
    """Decompose ``n`` into powers of two, smallest first.

    This is the layout for the *free remainder* of a rounded-up allocation.
    After placing an 11-page allocation at the front of a 16-page segment,
    the remaining 5 pages must be decomposed smallest-first — ``[1, 4]`` —
    so that each free piece is aligned to its own size (the paper: "the
    binary representation of the number of the remaining pages indicates,
    in reverse order, the proper size of the free segments").
    """
    return list(reversed(power_of_two_decomposition(n)))


def aligned_run_decomposition(start: int, length: int) -> list[tuple[int, int]]:
    """Split an arbitrary page run into maximal size-aligned power-of-two pieces.

    Returns ``[(address, size), ...]`` covering ``[start, start+length)``
    where every piece has a power-of-two size and an address aligned to
    that size.  This is the canonical form in which the allocation map can
    represent any run of same-status pages, and the form in which partial
    frees (Figure 4.c) enter the coalescing loop.
    """
    if start < 0 or length < 0:
        raise ValueError(f"invalid run: start={start} length={length}")
    pieces: list[tuple[int, int]] = []
    pos = start
    remaining = length
    while remaining:
        # Largest power of two that both divides the current address
        # (alignment) and fits in the remaining length.
        align = pos & -pos if pos else 1 << (remaining.bit_length() - 1)
        size = min(align, 1 << (remaining.bit_length() - 1))
        pieces.append((pos, size))
        pos += size
        remaining -= size
    return pieces
