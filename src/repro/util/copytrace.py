"""Payload-copy accounting for the data path.

The zero-copy work (memoryview I/O from disk to wire) is only
verifiable if copies are *counted*, not assumed: this module is a
process-wide ledger the data-path layers report to whenever they
materialize a Python-level copy of payload bytes.  The copy-counting
benchmark (``benchmarks/bench_datapath_copies.py``) enables it around a
scan and divides bytes-copied by bytes-delivered; the perf-regression
gate fails if that ratio ever grows.

What counts as a copy: any intermediate Python buffer holding payload
bytes — a ``bytes()`` materialization, a slice of a ``bytes`` span, a
``join``, a frame concatenation.  What does not: the disk transfer
itself (the simulated device's own buffer is the platter, not a hop)
and kernel-side socket copies (that is the wire).

Accounting is disabled by default and costs one attribute check per
transfer when off.  Sites are labelled so the benchmark can print a
per-layer copy inventory.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class CopyLedger:
    """Bytes copied per site, accumulated while enabled."""

    __slots__ = ("enabled", "bytes_copied", "by_site", "_lock")

    def __init__(self) -> None:
        self.enabled = False
        self.bytes_copied = 0
        self.by_site: dict[str, int] = {}
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Zero the counters (leaves enablement alone)."""
        with self._lock:
            self.bytes_copied = 0
            self.by_site = {}

    def record(self, site: str, nbytes: int) -> None:
        """Account ``nbytes`` of payload copied at ``site``."""
        if nbytes <= 0:
            return
        with self._lock:
            self.bytes_copied += nbytes
            self.by_site[site] = self.by_site.get(site, 0) + nbytes

    def snapshot(self) -> dict[str, int]:
        """The per-site totals as a plain dict."""
        with self._lock:
            return dict(self.by_site)


#: The process-wide ledger the data-path layers report to.
LEDGER = CopyLedger()


def record(site: str, nbytes: int) -> None:
    """Report a payload copy (no-op unless tracking is enabled)."""
    if LEDGER.enabled:
        LEDGER.record(site, nbytes)


def materialize(view, site: str) -> bytes:
    """An intentional contract copy: ``view`` as caller-owned ``bytes``.

    The one sanctioned way for a hot-path layer to hand ownership of
    payload bytes to its caller — the copy is explicit and accounted to
    ``site``.  (The EOS006 lint flags bare ``bytes(...)`` in those
    layers precisely so every materialization goes through here.)
    """
    data = bytes(view)
    record(site, len(data))
    return data


@contextmanager
def tracking() -> Iterator[CopyLedger]:
    """Enable copy accounting inside the block; yields the ledger."""
    LEDGER.reset()
    LEDGER.enabled = True
    try:
        yield LEDGER
    finally:
        LEDGER.enabled = False


__all__ = ["CopyLedger", "LEDGER", "record", "materialize", "tracking"]
