"""Plain-text formatting helpers for benchmark tables and reports.

The benchmark harness prints tables in the style database papers use:
fixed-width columns, a header rule, and one row per parameter setting.
Nothing here depends on the rest of the library.
"""

from __future__ import annotations

from typing import Iterable, Sequence

_UNITS = ["B", "KB", "MB", "GB", "TB"]


def human_bytes(n: int | float) -> str:
    """Format a byte count with a binary-prefix unit (e.g. ``1.5 MB``)."""
    value = float(n)
    for unit in _UNITS:
        if abs(value) < 1024 or unit == _UNITS[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


class TextTable:
    """A fixed-width text table with a title, header and aligned columns.

    >>> t = TextTable("Example", ["x", "y"])
    >>> t.add_row([1, 2.5])
    >>> print(t.render())          # doctest: +NORMALIZE_WHITESPACE
    Example
    x | y
    --+-----
    1 | 2.50
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row (must match the column count)."""
        row = [_cell(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render title, header, rule and aligned rows as text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            for row in self.rows
        ]
        lines = [self.title, header, rule, *body] if self.title else [header, rule, *body]
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
