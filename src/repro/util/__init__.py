"""Small shared utilities: bit arithmetic, size formatting, table rendering."""

from repro.util.bitops import (
    buddy_of,
    ceil_div,
    ceil_log2,
    floor_log2,
    is_power_of_two,
    next_power_of_two,
    power_of_two_decomposition,
    reverse_power_of_two_decomposition,
)
from repro.util.fmt import TextTable, human_bytes

__all__ = [
    "buddy_of",
    "ceil_div",
    "ceil_log2",
    "floor_log2",
    "is_power_of_two",
    "next_power_of_two",
    "power_of_two_decomposition",
    "reverse_power_of_two_decomposition",
    "TextTable",
    "human_bytes",
]
