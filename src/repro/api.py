"""The top-level database facade.

Persistence: :meth:`EOSDatabase.save` flushes all buffered state, writes
the object catalog into the spare area of the volume-header page, and
dumps the disk image to a file; :meth:`EOSDatabase.open_file` (or
:meth:`EOSDatabase.attach` for an in-memory disk) restores everything —
the buddy directories and object trees live on the "disk" already, so
only the catalog needs reading.


:class:`EOSDatabase` wires the whole stack together — disk, volume
layout, buddy manager, buffer pool, pager — and manufactures
:class:`~repro.core.object.LargeObject` handles.  This is the API the
examples and benchmarks use::

    db = EOSDatabase.create(num_pages=20_000, page_size=4096)
    obj = db.create_object(size_hint=1_000_000)
    obj.append(payload)
    obj.insert(500, b"hello")
    db.checkpoint()

Object roots live on buddy-allocated pages; the database keeps an
oid -> root-page catalog.  (The paper leaves root placement "to the
client"; the catalog here plays that client role and can also hand the
root page to callers who want to embed it elsewhere.)
"""

from __future__ import annotations

import os
import struct

from repro.buddy.directory import max_capacity
from repro.buddy.manager import BuddyManager
from repro.core.config import EOSConfig
from repro.core.object import LargeObject
from repro.core.pager import InPlacePager
from repro.core.segio import SegmentIO
from repro.core.tree import LargeObjectTree
from repro.errors import ObjectNotFound, VolumeLayoutError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskVolume
from repro.storage.volume import Volume


class EOSDatabase:
    """A formatted volume plus the managers needed to use it."""

    def __init__(
        self,
        disk: DiskVolume,
        volume: Volume,
        config: EOSConfig,
        *,
        pool_capacity: int = 128,
    ) -> None:
        if config.page_size != disk.page_size:
            raise VolumeLayoutError(
                f"config page size {config.page_size} != disk {disk.page_size}"
            )
        self.disk = disk
        self.volume = volume
        self.config = config
        self.pool = BufferPool(disk, capacity=pool_capacity)
        self.buddy = BuddyManager(volume, self.pool)
        self.pager = InPlacePager(self.pool, self.buddy, config.page_size)
        self.segio = SegmentIO(disk, config.page_size)
        self._objects: dict[int, LargeObject] = {}
        self._files: dict[str, "ObjectFile"] = {}
        self._next_oid = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        num_pages: int,
        page_size: int = 4096,
        *,
        config: EOSConfig | None = None,
        space_capacity: int | None = None,
        pool_capacity: int = 128,
    ) -> "EOSDatabase":
        """Format a fresh in-memory database of ``num_pages`` pages.

        The volume is carved into as many buddy spaces as fit; each
        space's capacity defaults to the largest a one-page directory
        supports (or the usable disk size, if smaller).
        """
        config = config or EOSConfig(page_size=page_size)
        if config.page_size != page_size:
            raise VolumeLayoutError("config/page_size mismatch")
        disk = DiskVolume(num_pages=num_pages, page_size=page_size)
        if space_capacity is None:
            usable = num_pages - 2  # volume header + 1 directory minimum
            space_capacity = min(max_capacity(page_size), usable - usable % 4)
        n_spaces = max(1, (num_pages - 1) // (1 + space_capacity))
        volume = Volume.format(disk, n_spaces=n_spaces, space_capacity=space_capacity)
        db = cls(disk, volume, config, pool_capacity=pool_capacity)
        BuddyManager.format(volume)
        # Rebuild the manager so its superdirectory starts fresh.
        db.buddy = BuddyManager(volume, db.pool)
        db.pager = InPlacePager(db.pool, db.buddy, config.page_size)
        return db

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def create_object(
        self, data: bytes = b"", *, size_hint: int | None = None
    ) -> LargeObject:
        """Create a large object (optionally with initial content).

        ``size_hint`` is the paper's known-eventual-size hint: segments
        for the object are allocated "just large enough to hold the
        entire object."
        """
        tree = LargeObjectTree.create(self.pager, self.config)
        obj = LargeObject(tree, self.segio, self.buddy, size_hint=size_hint)
        oid = self._next_oid
        self._next_oid += 1
        obj.oid = oid  # type: ignore[attr-defined]
        self._objects[oid] = obj
        if data:
            obj.append(data)
        return obj

    def get_object(self, oid: int) -> LargeObject:
        """Look up a catalogued object by its oid."""
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFound(f"no object with oid {oid}") from None

    def open_root(self, root_page: int) -> LargeObject:
        """Open an object by its root page (client-placed roots)."""
        tree = LargeObjectTree(self.pager, self.config, root_page)
        return LargeObject(tree, self.segio, self.buddy)

    def delete_object(self, obj: LargeObject) -> None:
        """Destroy the object and drop it from the catalog."""
        obj.destroy()
        oid = getattr(obj, "oid", None)
        if oid is not None:
            self._objects.pop(oid, None)

    def objects(self) -> list[LargeObject]:
        """All catalogued objects, in creation order."""
        return list(self._objects.values())

    # ------------------------------------------------------------------
    # Files (per-file threshold hints)
    # ------------------------------------------------------------------

    def create_file(
        self, name: str, *, threshold: int | None = None,
        adaptive: bool | None = None,
    ) -> "ObjectFile":
        """Create a named object group with its own threshold default.

        "Threshold values can be specified as a hint to the storage
        manager on a per-object or per-file (for all objects in the
        file) basis" (Section 4.4).  Objects created through the file
        inherit its threshold; individual objects may still override via
        :meth:`~repro.core.object.LargeObject.set_threshold`.
        """
        if name in self._files:
            raise VolumeLayoutError(f"file {name!r} already exists")
        handle = ObjectFile(
            self,
            name,
            threshold if threshold is not None else self.config.threshold,
            adaptive if adaptive is not None else self.config.adaptive_threshold,
        )
        self._files[name] = handle
        return handle

    def get_file(self, name: str) -> "ObjectFile":
        """Look up a previously created file by name."""
        try:
            return self._files[name]
        except KeyError:
            raise ObjectNotFound(f"no file named {name!r}") from None

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    # The catalog lives in the volume-header page's spare area, after the
    # 20-byte volume header: u16 count, then (u64 oid, u32 root) each.
    _CATALOG_OFFSET = 64
    _CATALOG_ENTRY = struct.Struct("<QI")

    @property
    def _catalog_capacity(self) -> int:
        return (self.config.page_size - self._CATALOG_OFFSET - 2) // self._CATALOG_ENTRY.size

    def _write_catalog(self) -> None:
        entries = [(oid, obj.root_page) for oid, obj in sorted(self._objects.items())]
        if len(entries) > self._catalog_capacity:
            raise VolumeLayoutError(
                f"catalog holds at most {self._catalog_capacity} objects; "
                f"{len(entries)} are live (store roots client-side instead)"
            )
        header = bytearray(self.disk.read_page(0))
        offset = self._CATALOG_OFFSET
        struct.pack_into("<H", header, offset, len(entries))
        offset += 2
        for oid, root in entries:
            self._CATALOG_ENTRY.pack_into(header, offset, oid, root)
            offset += self._CATALOG_ENTRY.size
        self.disk.write_page(0, header)

    def _read_catalog(self) -> None:
        header = self.disk.read_page(0)
        offset = self._CATALOG_OFFSET
        (count,) = struct.unpack_from("<H", header, offset)
        offset += 2
        self._objects = {}
        self._next_oid = 1
        for _ in range(count):
            oid, root = self._CATALOG_ENTRY.unpack_from(header, offset)
            offset += self._CATALOG_ENTRY.size
            obj = self.open_root(root)
            obj.oid = oid  # type: ignore[attr-defined]
            self._objects[oid] = obj
            self._next_oid = max(self._next_oid, oid + 1)

    def save(self, path: str | os.PathLike) -> None:
        """Flush everything and persist the volume image to ``path``."""
        self.checkpoint()
        self._write_catalog()
        self.disk.save(path)

    @classmethod
    def open_file(
        cls, path: str | os.PathLike, *, config: EOSConfig | None = None
    ) -> "EOSDatabase":
        """Re-open a database previously written by :meth:`save`."""
        disk = DiskVolume.load(path)
        return cls.attach(disk, config=config)

    @classmethod
    def attach(
        cls, disk: DiskVolume, *, config: EOSConfig | None = None
    ) -> "EOSDatabase":
        """Bind a database to an already formatted disk image."""
        volume = Volume.open(disk)
        config = config or EOSConfig(page_size=disk.page_size)
        db = cls(disk, volume, config)
        db._read_catalog()
        return db

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush every dirty buffered page to the disk image."""
        self.pool.flush_all()

    def free_pages(self) -> int:
        """Free pages across all buddy spaces."""
        return self.buddy.free_pages()

    def verify(self) -> None:
        """Verify the allocator and every catalogued object."""
        self.buddy.verify()
        for obj in self._objects.values():
            obj.verify()


class ObjectFile:
    """A named group of objects sharing a threshold default (Section 4.4).

    The file is an organisational unit only — all objects live on the
    same volume and allocator; what the file provides is the per-file
    threshold hint the paper describes, applied to every object created
    through it.
    """

    def __init__(
        self, db: EOSDatabase, name: str, threshold: int, adaptive: bool
    ) -> None:
        self.db = db
        self.name = name
        self.threshold = threshold
        self.adaptive = adaptive
        self._oids: list[int] = []

    def create_object(
        self, data: bytes = b"", *, size_hint: int | None = None
    ) -> LargeObject:
        """Create an object inheriting the file's threshold hint."""
        obj = self.db.create_object(data, size_hint=size_hint)
        obj.set_threshold(self.threshold, adaptive=self.adaptive)
        self._oids.append(obj.oid)  # type: ignore[attr-defined]
        return obj

    def set_threshold(self, threshold: int, *, adaptive: bool | None = None) -> None:
        """Change the file's threshold; applies to all its live objects.

        "Applications that could not possibly determine access patterns
        at creation time are allowed to change the T value every time
        the object is opened for updates."
        """
        self.threshold = threshold
        if adaptive is not None:
            self.adaptive = adaptive
        for obj in self.objects():
            obj.set_threshold(self.threshold, adaptive=self.adaptive)

    def objects(self) -> list[LargeObject]:
        """The file's live objects (destroyed ones drop out)."""
        out = []
        for oid in list(self._oids):
            try:
                out.append(self.db.get_object(oid))
            except ObjectNotFound:
                self._oids.remove(oid)
        return out
