"""The top-level database facade.

Persistence: :meth:`EOSDatabase.save` flushes all buffered state, writes
the object catalog into the spare area of the volume-header page, and
dumps the disk image to a file; :meth:`EOSDatabase.open_file` (or
:meth:`EOSDatabase.attach` for an in-memory disk) restores everything —
the buddy directories and object trees live on the "disk" already, so
only the catalog needs reading.


:class:`EOSDatabase` wires the whole stack together — disk, volume
layout, buddy manager, buffer pool, pager — and manufactures
:class:`~repro.core.object.LargeObject` handles.  This is the API the
examples and benchmarks use::

    db = EOSDatabase.create(num_pages=20_000, page_size=4096)
    obj = db.create_object(size_hint=1_000_000)
    obj.append(payload)
    obj.insert(500, b"hello")
    db.checkpoint()

Object roots live on buddy-allocated pages; the database keeps an
oid -> root-page catalog.  (The paper leaves root placement "to the
client"; the catalog here plays that client role and can also hand the
root page to callers who want to embed it elsewhere.)
"""

from __future__ import annotations

import dataclasses
import os
import struct
import threading
import warnings

from repro.buddy.directory import max_capacity
from repro.buddy.manager import BuddyManager
from repro.core.config import EOSConfig
from repro.core.object import LargeObject
from repro.core.pager import InPlacePager
from repro.core.segio import SegmentIO
from repro.core.tree import LargeObjectTree
from repro.errors import (
    DatabaseClosed,
    ObjectNotFound,
    VersionNotFound,
    VolumeLayoutError,
)
from repro.obs.facade import DatabaseStats
from repro.obs.tracer import Observability
from repro.ops import ObjectStat, VersionInfo, legacy_positional, require
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskVolume
from repro.storage.volume import Volume
from repro.versions import (
    VersionManager,
    cow_append,
    cow_replace,
    pack_version_section,
    unpack_version_section,
)


def _shift_offset_data(method: str, offset_in_data, args, offset):
    """Shim the legacy ``(oid, offset, data)`` positional order.

    The canonical order puts the payload first (``op_write(oid, data,
    offset=...)``); a legacy call arrives with the offset bound to the
    ``data`` parameter and the payload in ``args``.
    """
    if len(args) != 1 or offset is not None:
        raise TypeError(
            f"{method}() takes (oid, data, *, offset=...); "
            f"got {1 + len(args)} positional arguments after oid"
        )
    warnings.warn(
        f"{method}(oid, offset, data) positional order is deprecated; "
        f"use {method}(oid, data, offset=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    return args[0], offset_in_data


class EOSDatabase:
    """A formatted volume plus the managers needed to use it.

    Databases are context managers: ``with EOSDatabase.create(...) as
    db:`` closes them on exit — flushing every dirty page, releasing the
    buffer pool and finalising any observability sinks.  A closed
    database raises :class:`~repro.errors.DatabaseClosed` on use.

    Observability: every database carries an
    :class:`~repro.obs.tracer.Observability` bundle at ``db.obs``
    (disabled by default; ``db.obs.enable(sinks=[...])`` switches on
    tracing and metrics) and a :class:`~repro.obs.facade.DatabaseStats`
    facade at ``db.stats`` (always available).
    """

    def __init__(
        self,
        disk: DiskVolume,
        volume: Volume,
        config: EOSConfig,
        *,
        pool_capacity: int = 128,
        obs: Observability | None = None,
    ) -> None:
        if config.page_size != disk.page_size:
            raise VolumeLayoutError(
                f"config page size {config.page_size} != disk {disk.page_size}"
            )
        self.disk = disk
        self.volume = volume
        self.config = config
        if obs is None:
            obs = Observability(iostats=disk.stats, page_size=config.page_size)
        elif obs.iostats is None:
            obs.iostats = disk.stats
        self.obs = obs
        self.pool = BufferPool(disk, capacity=pool_capacity)
        self.buddy = BuddyManager(volume, self.pool, obs=self.obs)
        # Per-instance sanitizers (the EOS_SANITIZE env var enables the
        # same checks globally; see repro.analysis.sanitize).
        if config.sanitize_pins:
            self.pool.attach_pin_sanitizer()
        if config.sanitize_buddy:
            self.buddy.attach_invariant_sanitizer()
        self.pager = InPlacePager(self.pool, self.buddy, config.page_size)
        self.segio = SegmentIO(disk, config.page_size, obs=self.obs)
        #: Copy-on-write version chains (None when versioning is off).
        #: With versioning on, mutations go through op_* only — direct
        #: handle mutations would overwrite pages older snapshots read.
        self.versions = VersionManager(self) if config.versioning else None
        self.stats = DatabaseStats(self)
        self._objects: dict[int, LargeObject] = {}
        self._files: dict[str, "ObjectFile"] = {}
        self._next_oid = 1
        self._closed = False
        #: Serialises the oid-addressed ``op_*`` entry points; reentrant so
        #: holders may call further ops (the serving layer wraps a span
        #: around an op while already holding it).
        self.op_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        num_pages: int,
        page_size: int = 4096,
        *,
        config: EOSConfig | None = None,
        space_capacity: int | None = None,
        pool_capacity: int = 128,
        obs: Observability | None = None,
        disk: DiskVolume | None = None,
    ) -> "EOSDatabase":
        """Format a fresh in-memory database of ``num_pages`` pages.

        The volume is carved into as many buddy spaces as fit; each
        space's capacity defaults to the largest a one-page directory
        supports (or the usable disk size, if smaller).  ``disk``
        substitutes a pre-built volume device (e.g. a
        :class:`~repro.storage.timing.TimedDisk` service-time proxy or a
        :class:`~repro.storage.faults.FaultyDisk`) for the default
        in-memory :class:`~repro.storage.disk.DiskVolume`; its geometry
        must match ``num_pages``/``page_size``.
        """
        config = config or EOSConfig(page_size=page_size)
        if config.page_size != page_size:
            raise VolumeLayoutError("config/page_size mismatch")
        if disk is None:
            disk = DiskVolume(num_pages=num_pages, page_size=page_size)
        elif disk.num_pages != num_pages or disk.page_size != page_size:
            raise VolumeLayoutError(
                f"supplied disk is {disk.num_pages} x {disk.page_size}B pages; "
                f"requested {num_pages} x {page_size}B"
            )
        if space_capacity is None:
            usable = num_pages - 2  # volume header + 1 directory minimum
            space_capacity = min(max_capacity(page_size), usable - usable % 4)
        n_spaces = max(1, (num_pages - 1) // (1 + space_capacity))
        volume = Volume.format(disk, n_spaces=n_spaces, space_capacity=space_capacity)
        db = cls(disk, volume, config, pool_capacity=pool_capacity, obs=obs)
        BuddyManager.format(volume)
        # Rebuild the manager so its superdirectory starts fresh.
        db.buddy = BuddyManager(volume, db.pool, obs=db.obs)
        if config.sanitize_buddy:
            db.buddy.attach_invariant_sanitizer()
        db.pager = InPlacePager(db.pool, db.buddy, config.page_size)
        return db

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _ensure_open(self, operation: str) -> None:
        if self._closed:
            raise DatabaseClosed(operation)

    def close(self) -> None:
        """Flush all dirty state, release the buffer pool, finalise sinks.

        Idempotent: closing a closed database is a no-op.  The disk
        image survives (pass it to :meth:`attach`, or :meth:`save` the
        database *before* closing to persist it to a file).
        """
        if self._closed:
            return
        if self.pool.pin_sanitizer is not None:
            # Report leaked pins with their origin stacks *before*
            # clear() dies on the bare pin count with no clue attached.
            self.pool.pin_sanitizer.assert_no_leaks()
        self.pool.clear()
        self.obs.close()
        self._closed = True

    def __enter__(self) -> "EOSDatabase":
        self._ensure_open("enter a context")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def create_object(
        self, data: bytes = b"", *, size_hint: int | None = None
    ) -> LargeObject:
        """Create a large object (optionally with initial content).

        ``size_hint`` is the paper's known-eventual-size hint: segments
        for the object are allocated "just large enough to hold the
        entire object."
        """
        self._ensure_open("create an object")
        tree = LargeObjectTree.create(self.pager, self.config, obs=self.obs)
        obj = LargeObject(
            tree, self.segio, self.buddy, size_hint=size_hint, obs=self.obs
        )
        oid = self._next_oid
        self._next_oid += 1
        obj.oid = oid  # type: ignore[attr-defined]
        self._objects[oid] = obj
        if self.versions is not None:
            # Version 1 is the empty object; initial content commits as
            # version 2 through the uniform CoW mutation path.
            self.versions.publish_initial(oid, tree)
            if data:
                self.versions.mutate(
                    oid, lambda o: cow_append(o.tree, o.segio, o.buddy, data)
                )
        elif data:
            obj.append(data)
        return obj

    def get_object(self, oid: int) -> LargeObject:
        """Look up a catalogued object by its oid."""
        self._ensure_open("look up an object")
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFound(f"no object with oid {oid}") from None

    def open_root(self, root_page: int) -> LargeObject:
        """Open an object by its root page (client-placed roots)."""
        self._ensure_open("open an object")
        tree = LargeObjectTree(self.pager, self.config, root_page, obs=self.obs)
        return LargeObject(tree, self.segio, self.buddy, obs=self.obs)

    def delete_object(self, obj: LargeObject | int) -> None:
        """Destroy the object (a handle or its oid); drop it from the catalog.

        On a versioned database this frees the union of every live
        version's pages (old snapshot roots included), not just the
        current tree.
        """
        self._ensure_open("delete an object")
        if isinstance(obj, int):
            obj = self.get_object(obj)
        oid = getattr(obj, "oid", None)
        # Uncatalogued handles (open_root) never published a version
        # chain, so only catalogued objects dispatch to the reclaimer;
        # anything else provably has no versions and may destroy in
        # place.
        versions = self.versions if oid is not None else None
        if versions is not None:
            versions.drop_object(oid)
        else:
            obj.destroy()
        if oid is not None:
            self._objects.pop(oid, None)

    def objects(self) -> list[LargeObject]:
        """All catalogued objects, in creation order."""
        self._ensure_open("list objects")
        return list(self._objects.values())

    # ------------------------------------------------------------------
    # Thread-safe operation entry points (the serving layer's surface)
    # ------------------------------------------------------------------
    #
    # The object handles above are not thread-safe — they share the
    # buffer pool, allocator and tracer.  The ``op_*`` methods are: each
    # is one whole operation, addressed by oid, executed under
    # ``op_lock``.  This is what `repro.server`'s request scheduler
    # calls from its worker threads; byte-range concurrency control
    # (readers in parallel, overlapping writers serialized) happens
    # above this layer, in the scheduler's LockManager.

    def op_create(self, data: bytes = b"", *, size_hint: int | None = None) -> int:
        """Create an object; returns its oid."""
        with self.op_lock:
            obj = self.create_object(data, size_hint=size_hint)
            return obj.oid  # type: ignore[attr-defined]

    def op_append(self, oid: int, data: bytes) -> int:
        """Append to the object; returns its new size."""
        with self.op_lock:
            if self.versions is not None:
                self.versions.mutate(
                    oid, lambda o: cow_append(o.tree, o.segio, o.buddy, data)
                )
                return self.get_object(oid).size()
            obj = self.get_object(oid)
            obj.append(data)
            return obj.size()

    def op_read(
        self, oid: int, *args: int,
        offset: int | None = None, length: int | None = None,
        version: int | None = None,
    ) -> bytes:
        """Read ``length`` bytes at ``offset``.

        On a versioned database every read — latest or explicit
        ``version`` — resolves an immutable snapshot root and runs
        lock-free (no ``op_lock``, no buffer pool)."""
        if args:
            offset, length = legacy_positional(
                "op_read", ("offset", "length"), args, (offset, length)
            )
        require("op_read", offset=offset, length=length)
        if self.versions is not None:
            self._ensure_open("read an object")
            return self.versions.read(
                oid, offset=offset, length=length, version=version
            )
        if version:
            raise VersionNotFound(oid, version)
        with self.op_lock:
            return self.get_object(oid).read(offset, length)

    def op_read_into(
        self, oid: int, dest, *,
        offset: int | None = None, length: int | None = None,
        version: int | None = None,
    ) -> int:
        """Read ``length`` bytes at ``offset`` into a writable buffer.

        The zero-copy read: coalesced page views land directly in
        ``dest``.  Returns the byte count written.
        """
        require("op_read_into", offset=offset, length=length)
        if self.versions is not None:
            self._ensure_open("read an object")
            return self.versions.read_into(
                oid, dest, offset=offset, length=length, version=version
            )
        if version:
            raise VersionNotFound(oid, version)
        with self.op_lock:
            return self.get_object(oid).read_into(offset, length, dest)

    def op_write(
        self, oid: int, data: bytes | None = None, *args,
        offset: int | None = None,
    ) -> int:
        """Overwrite bytes in place; returns the (unchanged) size."""
        if args:  # legacy positional order was (oid, offset, data)
            data, offset = _shift_offset_data("op_write", data, args, offset)
        require("op_write", data=data, offset=offset)
        with self.op_lock:
            if self.versions is not None:
                self.versions.mutate(
                    oid,
                    lambda o: cow_replace(
                        o.tree, o.segio, o.buddy, offset, data
                    ),
                )
                return self.get_object(oid).size()
            obj = self.get_object(oid)
            obj.replace(offset, data)
            return obj.size()

    def op_insert(
        self, oid: int, data: bytes | None = None, *args,
        offset: int | None = None,
    ) -> int:
        """Insert bytes at ``offset``; returns the new size."""
        if args:  # legacy positional order was (oid, offset, data)
            data, offset = _shift_offset_data("op_insert", data, args, offset)
        require("op_insert", data=data, offset=offset)
        with self.op_lock:
            if self.versions is not None:
                self.versions.mutate(
                    oid, lambda o: self._versioned_insert(o, offset, data)
                )
                return self.get_object(oid).size()
            obj = self.get_object(oid)
            obj.insert(offset, data)
            return obj.size()

    @staticmethod
    def _versioned_insert(obj: LargeObject, offset: int, data) -> None:
        # Insert-at-end takes the append fast path, which patches the
        # partial tail page in place; under versioning those bytes may
        # be live in an older snapshot, so route it through cow_append.
        if offset == obj.size():
            cow_append(obj.tree, obj.segio, obj.buddy, data)
        else:
            obj.insert(offset, data)

    def op_delete(
        self, oid: int, *args: int,
        offset: int | None = None, length: int | None = None,
    ) -> int:
        """Delete a byte range; returns the new size."""
        if args:
            offset, length = legacy_positional(
                "op_delete", ("offset", "length"), args, (offset, length)
            )
        require("op_delete", offset=offset, length=length)
        with self.op_lock:
            if self.versions is not None:
                self.versions.mutate(
                    oid, lambda o: o.delete(offset, length)
                )
                return self.get_object(oid).size()
            obj = self.get_object(oid)
            obj.delete(offset, length)
            return obj.size()

    def op_size(self, oid: int) -> int:
        """The object's size in bytes."""
        if self.versions is not None:
            self._ensure_open("stat an object")
            return self.versions.size(oid)
        with self.op_lock:
            return self.get_object(oid).size()

    def op_stat(self, oid: int, *, version: int | None = None) -> ObjectStat:
        """Space accounting plus the root page (lock-free when versioned)."""
        if self.versions is not None:
            self._ensure_open("stat an object")
            return self.versions.stat(oid, version=version)
        if version:
            raise VersionNotFound(oid, version)
        with self.op_lock:
            obj = self.get_object(oid)
            stats = obj.stats()
            return ObjectStat(
                size_bytes=stats.size_bytes,
                segments=stats.segments,
                leaf_pages=stats.leaf_pages,
                index_pages=stats.index_pages,
                height=stats.height,
                root_page=obj.root_page,
            )

    def op_versions(self, oid: int) -> list[VersionInfo]:
        """The object's committed versions, ascending (lock-free).

        An unversioned database returns ``[]`` for a live oid — the
        object exists but nothing tracks its history.
        """
        if self.versions is not None:
            self._ensure_open("list versions")
            return self.versions.versions(oid)
        with self.op_lock:
            self.get_object(oid)
            return []

    def op_list(self) -> list[tuple[int, int]]:
        """Every catalogued object as ``(oid, size)``, ascending by oid."""
        with self.op_lock:
            return [
                (oid, obj.size()) for oid, obj in sorted(self._objects.items())
            ]

    # ------------------------------------------------------------------
    # Files (per-file threshold hints)
    # ------------------------------------------------------------------

    def create_file(
        self, name: str, *, threshold: int | None = None,
        adaptive: bool | None = None,
    ) -> "ObjectFile":
        """Create a named object group with its own threshold default.

        "Threshold values can be specified as a hint to the storage
        manager on a per-object or per-file (for all objects in the
        file) basis" (Section 4.4).  Objects created through the file
        inherit its threshold; individual objects may still override via
        :meth:`~repro.core.object.LargeObject.set_threshold`.
        """
        self._ensure_open("create a file")
        if name in self._files:
            raise VolumeLayoutError(f"file {name!r} already exists")
        handle = ObjectFile(
            self,
            name,
            threshold if threshold is not None else self.config.threshold,
            adaptive if adaptive is not None else self.config.adaptive_threshold,
        )
        self._files[name] = handle
        return handle

    def get_file(self, name: str) -> "ObjectFile":
        """Look up a previously created file by name."""
        self._ensure_open("look up a file")
        try:
            return self._files[name]
        except KeyError:
            raise ObjectNotFound(f"no file named {name!r}") from None

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    # The catalog lives in the volume-header page's spare area, after the
    # 20-byte volume header: u16 count, then (u64 oid, u32 root) each,
    # then the file section — u16 file count, and per file: u8 name
    # length, the UTF-8 name, u32 threshold, u8 adaptive flag, u16
    # member count, u64 member oids — then (versioned databases only)
    # the magic-tagged version-chain section (see
    # :func:`repro.versions.pack_version_section`).
    _CATALOG_OFFSET = 64
    _CATALOG_ENTRY = struct.Struct("<QI")

    @property
    def _catalog_capacity(self) -> int:
        return (self.config.page_size - self._CATALOG_OFFSET - 2) // self._CATALOG_ENTRY.size

    def _pack_files(self) -> bytes:
        out = bytearray(struct.pack("<H", len(self._files)))
        for handle in self._files.values():
            name = handle.name.encode("utf-8")
            if len(name) > 255:
                raise VolumeLayoutError(
                    f"file name {handle.name!r} exceeds 255 bytes encoded"
                )
            oids = [oid for oid in handle._oids if oid in self._objects]
            out += struct.pack("<B", len(name))
            out += name
            out += struct.pack(
                "<IBH", handle.threshold, int(handle.adaptive), len(oids)
            )
            for oid in oids:
                out += struct.pack("<Q", oid)
        return bytes(out)

    def _write_catalog(self) -> None:
        entries = [(oid, obj.root_page) for oid, obj in sorted(self._objects.items())]
        if len(entries) > self._catalog_capacity:
            raise VolumeLayoutError(
                f"catalog holds at most {self._catalog_capacity} objects; "
                f"{len(entries)} are live (store roots client-side instead)"
            )
        files = self._pack_files()
        chains = b""
        if self.versions is not None:
            chains = pack_version_section(
                self.versions.snapshot_chains(), self.versions.retain
            )
        needed = (
            self._CATALOG_OFFSET + 2
            + len(entries) * self._CATALOG_ENTRY.size
            + len(files) + len(chains)
        )
        if needed > self.config.page_size:
            raise VolumeLayoutError(
                f"catalog needs {needed} bytes but the header page holds "
                f"{self.config.page_size} (fewer objects/files/retained "
                "versions, or shorter file names)"
            )
        header = bytearray(self.disk.read_page(0))
        offset = self._CATALOG_OFFSET
        struct.pack_into("<H", header, offset, len(entries))
        offset += 2
        for oid, root in entries:
            self._CATALOG_ENTRY.pack_into(header, offset, oid, root)
            offset += self._CATALOG_ENTRY.size
        header[offset : offset + len(files)] = files
        offset += len(files)
        header[offset : offset + len(chains)] = chains
        offset += len(chains)
        # Zero the tail so a shorter catalog never leaves a stale file
        # or version section from an earlier save behind it.
        header[offset:] = bytes(len(header) - offset)
        self.disk.write_page(0, header)

    def _read_catalog(self) -> None:
        header = self.disk.read_page(0)
        offset = self._CATALOG_OFFSET
        (count,) = struct.unpack_from("<H", header, offset)
        offset += 2
        self._objects = {}
        self._files = {}
        self._next_oid = 1
        for _ in range(count):
            oid, root = self._CATALOG_ENTRY.unpack_from(header, offset)
            offset += self._CATALOG_ENTRY.size
            obj = self.open_root(root)
            obj.oid = oid  # type: ignore[attr-defined]
            self._objects[oid] = obj
            self._next_oid = max(self._next_oid, oid + 1)
        offset = self._read_file_section(header, offset)
        self._restore_versions(header, offset)

    def _read_file_section(self, header: bytes, offset: int) -> int:
        """Restore ObjectFile handles; tolerate pre-file-section images.

        Images written before the file section existed leave zeros here
        (count 0), so they parse cleanly; anything structurally invalid
        is treated the same way rather than failing the open.  Returns
        the offset just past the section (where the version-chain
        section starts, if any).
        """
        start = offset
        try:
            (n_files,) = struct.unpack_from("<H", header, offset)
            offset += 2
            files: dict[str, ObjectFile] = {}
            for _ in range(n_files):
                (name_len,) = struct.unpack_from("<B", header, offset)
                offset += 1
                if offset + name_len > len(header):
                    raise struct.error("file name overruns the header page")
                name = header[offset : offset + name_len].decode("utf-8")
                offset += name_len
                threshold, adaptive, n_oids = struct.unpack_from(
                    "<IBH", header, offset
                )
                offset += 7
                oids = []
                for _ in range(n_oids):
                    (oid,) = struct.unpack_from("<Q", header, offset)
                    offset += 8
                    oids.append(oid)
                if not name or threshold < 1:
                    raise struct.error("implausible file record")
                handle = ObjectFile(self, name, threshold, bool(adaptive))
                handle._oids = [oid for oid in oids if oid in self._objects]
                files[name] = handle
        except (struct.error, UnicodeDecodeError):
            return start
        self._files = files
        for handle in files.values():
            for obj in handle.objects():
                obj.set_threshold(handle.threshold, adaptive=handle.adaptive)
        return offset

    def _restore_versions(self, header: bytes, offset: int) -> None:
        """Rebuild version chains from the catalog.

        An image written by a versioning-enabled database carries a
        version section; attaching one re-enables versioning with the
        saved retention bound even when the caller's config left it off,
        so ``save``/``open_file`` round-trips keep the history.  Chains
        whose latest root disagrees with the object catalog — and
        objects with no persisted chain at all (images saved before
        versioning was enabled) — restart from a fresh version 1 at the
        current root.
        """
        chains, retain = unpack_version_section(header, offset)
        if self.versions is None:
            if retain is None:
                return
            self.config = dataclasses.replace(
                self.config, versioning=True, version_retain=retain
            )
            self.versions = VersionManager(self)
        restored = {}
        for oid, obj in self._objects.items():
            chain = chains.get(oid)
            if chain and chain[-1].root_page == obj.root_page:
                restored[oid] = chain
        self.versions.restore(restored)
        for oid, obj in self._objects.items():
            if oid not in restored:
                self.versions.publish_initial(oid, obj.tree)

    def save(self, path: str | os.PathLike) -> None:
        """Flush everything and persist the volume image to ``path``."""
        self._ensure_open("save")
        self.checkpoint()
        self._write_catalog()
        self.disk.save(path)

    @classmethod
    def open_file(
        cls,
        path: str | os.PathLike,
        *,
        config: EOSConfig | None = None,
        obs: Observability | None = None,
    ) -> "EOSDatabase":
        """Re-open a database previously written by :meth:`save`."""
        disk = DiskVolume.load(path)
        return cls.attach(disk, config=config, obs=obs)

    @classmethod
    def attach(
        cls,
        disk: DiskVolume,
        *,
        config: EOSConfig | None = None,
        obs: Observability | None = None,
    ) -> "EOSDatabase":
        """Bind a database to an already formatted disk image."""
        volume = Volume.open(disk)
        config = config or EOSConfig(page_size=disk.page_size)
        db = cls(disk, volume, config, obs=obs)
        db._read_catalog()
        return db

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush every dirty buffered page to the disk image."""
        self._ensure_open("checkpoint")
        self.pool.flush_all()

    def free_pages(self) -> int:
        """Free pages across all buddy spaces."""
        self._ensure_open("count free pages")
        return self.buddy.free_pages()

    def verify(self) -> None:
        """Verify the allocator and every catalogued object."""
        self._ensure_open("verify")
        self.buddy.verify()
        for obj in self._objects.values():
            obj.verify()


class ObjectFile:
    """A named group of objects sharing a threshold default (Section 4.4).

    The file is an organisational unit only — all objects live on the
    same volume and allocator; what the file provides is the per-file
    threshold hint the paper describes, applied to every object created
    through it.
    """

    def __init__(
        self, db: EOSDatabase, name: str, threshold: int, adaptive: bool
    ) -> None:
        self.db = db
        self.name = name
        self.threshold = threshold
        self.adaptive = adaptive
        self._oids: list[int] = []

    def create_object(
        self, data: bytes = b"", *, size_hint: int | None = None
    ) -> LargeObject:
        """Create an object inheriting the file's threshold hint."""
        obj = self.db.create_object(data, size_hint=size_hint)
        obj.set_threshold(self.threshold, adaptive=self.adaptive)
        self._oids.append(obj.oid)  # type: ignore[attr-defined]
        return obj

    def set_threshold(self, threshold: int, *, adaptive: bool | None = None) -> None:
        """Change the file's threshold; applies to all its live objects.

        "Applications that could not possibly determine access patterns
        at creation time are allowed to change the T value every time
        the object is opened for updates."
        """
        self.threshold = threshold
        if adaptive is not None:
            self.adaptive = adaptive
        for obj in self.objects():
            obj.set_threshold(self.threshold, adaptive=self.adaptive)

    def objects(self) -> list[LargeObject]:
        """The file's live objects (destroyed ones drop out)."""
        out = []
        for oid in list(self._oids):
            try:
                out.append(self.db.get_object(oid))
            except ObjectNotFound:
                self._oids.remove(oid)
        return out
