"""The perf-regression gate: diff BENCH_*.json runs against a baseline.

CI runs the benchmarks, which emit machine-readable ``BENCH_<ID>.json``
artifacts (see :mod:`repro.bench.jsonout`), then calls
``benchmarks/regress.py`` — a thin CLI over this module — to compare
them against the committed snapshots in ``benchmarks/results/baseline/``.

Each registered bench declares *extractors* that pull named metrics out
of its document.  A metric carries a direction (``higher`` is better,
or ``lower``) and a kind, which selects its tolerance:

``throughput``
    MB/s, requests/s.  Noisy; the default tolerance allows a 15% drop
    before failing.
``copies``
    Copies per byte from the :mod:`~repro.util.copytrace` ledger.
    Deterministic; *any* increase fails.
``io``
    Seeks and page transfers from the head-position model.
    Deterministic; any increase fails (a small tolerance can be opted
    into for benches with data-dependent placement).

Unknown bench ids are ignored; a registered bench with no baseline
snapshot is skipped (so new benches can land before their baseline);
a baseline with no current artifact is a failure — the gate refuses to
pass on a bench that silently stopped running.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.bench.jsonout import bench_json_path, load_bench_json

__all__ = [
    "Metric",
    "Regression",
    "Tolerances",
    "GateReport",
    "extract_metrics",
    "compare_docs",
    "compare_dirs",
    "GATED_BENCHES",
]


@dataclass(frozen=True)
class Metric:
    """One named number pulled out of a bench document."""

    name: str
    value: float
    #: "higher" — bigger is better; "lower" — smaller is better.
    direction: str
    #: Tolerance class: "throughput", "copies", or "io".
    kind: str


@dataclass(frozen=True)
class Tolerances:
    """Allowed relative slack per metric kind (fraction, not percent)."""

    throughput: float = 0.15
    copies: float = 0.0
    io: float = 0.0

    def limit(self, metric: Metric, baseline: float) -> float:
        """The worst acceptable current value for ``metric``."""
        tol = getattr(self, metric.kind)
        if metric.direction == "higher":
            return baseline * (1.0 - tol)
        return baseline * (1.0 + tol)


@dataclass(frozen=True)
class Regression:
    """One metric that moved past its tolerance."""

    bench: str
    metric: str
    baseline: float
    current: float
    limit: float

    def describe(self) -> str:
        """One human-readable line naming the regressed metric."""
        return (
            f"{self.bench}: {self.metric} regressed — baseline "
            f"{self.baseline:g}, current {self.current:g} "
            f"(limit {self.limit:g})"
        )


@dataclass
class GateReport:
    """The gate's verdict: failures plus human-readable context lines."""

    failures: list[Regression] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """The full gate report as printable text, verdict last."""
        lines = []
        for note in self.skipped:
            lines.append(f"skip: {note}")
        for line in self.checked:
            lines.append(f"  ok: {line}")
        for failure in self.failures:
            lines.append(f"FAIL: {failure.describe()}")
        lines.append(
            "perf gate: "
            + ("PASS" if self.ok else f"{len(self.failures)} regression(s)")
        )
        return "\n".join(lines)


def _row_map(doc: Mapping, key_column: int = 0) -> dict:
    return {row[key_column]: row for row in doc.get("rows", [])}


def _extract_datapath(doc: Mapping) -> list[Metric]:
    """DATAPATH rows: ``[path, copies_per_byte, mb_per_s]``."""
    metrics = []
    for path, copies, mbps in doc.get("rows", []):
        metrics.append(
            Metric(f"copies_per_byte[{path}]", float(copies), "lower", "copies")
        )
        metrics.append(
            Metric(f"mb_per_s[{path}]", float(mbps), "higher", "throughput")
        )
    return metrics


def _extract_e4(doc: Mapping) -> list[Metric]:
    """E4 gates on the run's cumulative head-model counters."""
    io = doc.get("io", {})
    metrics = []
    for name in ("seeks", "page_transfers"):
        if name in io:
            metrics.append(Metric(f"io.{name}", float(io[name]), "lower", "io"))
    return metrics


def _extract_srv1(doc: Mapping) -> list[Metric]:
    """SRV1 rows: ``[clients, req/s, p50, p99]`` — gate req/s at the
    highest concurrency level."""
    rows = doc.get("rows", [])
    if not rows:
        return []
    clients, rps = max((row[0], row[1]) for row in rows)
    return [
        Metric(f"req_per_s[clients={clients}]", float(rps), "higher", "throughput")
    ]


def _extract_srv2(doc: Mapping) -> list[Metric]:
    """SRV2 rows: ``[shards, clients, req/s, p50, p99]`` — gate the
    sharded throughput at the highest (shards, clients) level plus the
    N-shard-over-1-shard speedup, which is what sharding exists for."""
    by_level = {
        (row[0], row[1]): float(row[2])
        for row in doc.get("rows", [])
        if len(row) >= 3
    }
    if not by_level:
        return []
    max_shards = max(shards for shards, _ in by_level)
    max_clients = max(clients for _, clients in by_level)
    metrics = [
        Metric(
            f"req_per_s[shards={max_shards},clients={max_clients}]",
            by_level[(max_shards, max_clients)], "higher", "throughput",
        )
    ]
    one_shard = by_level.get((1, max_clients))
    if one_shard and max_shards > 1:
        metrics.append(
            Metric(
                f"scaling[shards={max_shards},clients={max_clients}]",
                by_level[(max_shards, max_clients)] / one_shard,
                "higher", "throughput",
            )
        )
    return metrics


def _extract_ver1(doc: Mapping) -> list[Metric]:
    """VER1 rows: ``[server, mode, reads/s, p50, p99]`` — gate the
    versioned snapshot-read throughput in both phases.  The contended
    cell is the one the subsystem exists for: reads queueing behind the
    appender's commits would tank it.  The p99 ratio itself is enforced
    by the bench's own in-run assert against its fixed ceiling — a
    run-to-run ratio diff would re-gate a noisy tail statistic more
    tightly than its designed bound."""
    metrics = []
    for row in doc.get("rows", []):
        if len(row) >= 3 and row[0] == "versioned":
            metrics.append(
                Metric(
                    f"reads_per_s[{row[1]}]", float(row[2]),
                    "higher", "throughput",
                )
            )
    return metrics


def _extract_age1(doc: Mapping) -> list[Metric]:
    """AGE1 rows: ``[mix, epoch, util, frag, est seeks/MB, live]`` — gate
    the *final-epoch* fragmentation index and est. seeks/MB per mix
    (the churn is seeded, so both are deterministic and get the io
    tolerance) plus the aged-over-fresh modelled scan ratio from
    ``params.scan`` (the allocator's anti-aging guarantee).  The
    monitor-overhead numbers are host wall-clock and stay ungated —
    the bench asserts its own ceiling in-run."""
    metrics = []
    final: dict[str, Sequence] = {}
    for row in doc.get("rows", []):
        if len(row) >= 5 and (row[0] not in final or row[1] > final[row[0]][1]):
            final[row[0]] = row
    for mix, row in sorted(final.items()):
        metrics.append(
            Metric(f"frag_index[{mix}]", float(row[3]), "lower", "io")
        )
        metrics.append(
            Metric(f"est_seeks_per_mb[{mix}]", float(row[4]), "lower", "io")
        )
    scan = doc.get("params", {}).get("scan")
    if isinstance(scan, Mapping):
        for mix, cell in sorted(scan.items()):
            if isinstance(cell, Mapping) and "ratio" in cell:
                metrics.append(
                    Metric(
                        f"aged_scan_ratio[{mix}]", float(cell["ratio"]),
                        "higher", "throughput",
                    )
                )
    return metrics


def _extract_age2(doc: Mapping) -> list[Metric]:
    """AGE2 rows: ``[phase, util, frag, est seeks/MB, modelled MB/s]`` —
    gate the compacted phase's fragmentation index and est. seeks/MB
    (seeded churn + deterministic victim plan, so both get the io
    tolerance), the fractional frag-index drop from ``params.frag``,
    and the compacted-over-rebuilt modelled scan ratio from
    ``params.scan`` (what the compactor exists to recover).  The
    foreground p99 ratio is host wall-clock and stays ungated — the
    bench asserts its own ceiling in-run (the VER1 precedent)."""
    metrics = []
    for row in doc.get("rows", []):
        if len(row) >= 5 and row[0] == "compacted":
            metrics.append(
                Metric("frag_index[compacted]", float(row[2]), "lower", "io")
            )
            metrics.append(
                Metric(
                    "est_seeks_per_mb[compacted]", float(row[3]), "lower", "io"
                )
            )
    params = doc.get("params", {})
    frag = params.get("frag")
    if isinstance(frag, Mapping) and "drop" in frag:
        metrics.append(
            Metric("frag_drop", float(frag["drop"]), "higher", "io")
        )
    scan = params.get("scan")
    if isinstance(scan, Mapping) and "compacted_ratio" in scan:
        metrics.append(
            Metric(
                "compacted_scan_ratio", float(scan["compacted_ratio"]),
                "higher", "throughput",
            )
        )
    return metrics


#: The benches the gate knows how to compare, with their extractors.
GATED_BENCHES: dict[str, Callable[[Mapping], list[Metric]]] = {
    "AGE1": _extract_age1,
    "AGE2": _extract_age2,
    "DATAPATH": _extract_datapath,
    "E4": _extract_e4,
    "SRV1": _extract_srv1,
    "SRV2": _extract_srv2,
    "VER1": _extract_ver1,
}


def extract_metrics(doc: Mapping) -> list[Metric]:
    """Metrics for a bench document, or ``[]`` if its id isn't gated."""
    extractor = GATED_BENCHES.get(doc.get("bench", ""))
    return extractor(doc) if extractor is not None else []


def compare_docs(
    baseline: Mapping, current: Mapping, tolerances: Tolerances
) -> GateReport:
    """Compare one bench's baseline and current documents.

    A metric present in the baseline but absent from the current run is
    itself a regression (the measurement disappeared); metrics new in
    the current run pass unchecked — they have nothing to regress from.
    """
    report = GateReport()
    bench = str(baseline.get("bench", "?"))
    current_by_name = {m.name: m for m in extract_metrics(current)}
    for base_metric in extract_metrics(baseline):
        got = current_by_name.get(base_metric.name)
        if got is None:
            report.failures.append(
                Regression(
                    bench, base_metric.name, base_metric.value,
                    float("nan"), base_metric.value,
                )
            )
            continue
        limit = tolerances.limit(base_metric, base_metric.value)
        bad = (
            got.value < limit
            if base_metric.direction == "higher"
            else got.value > limit
        )
        if bad:
            report.failures.append(
                Regression(bench, base_metric.name, base_metric.value,
                           got.value, limit)
            )
        else:
            report.checked.append(
                f"{bench}: {base_metric.name} baseline "
                f"{base_metric.value:g} -> current {got.value:g}"
            )
    return report


def compare_dirs(
    baseline_dir: str | os.PathLike,
    current_dir: str | os.PathLike,
    tolerances: Tolerances | None = None,
    benches: Iterable[str] | None = None,
) -> GateReport:
    """Compare every gated bench's artifacts between two directories."""
    tolerances = tolerances or Tolerances()
    report = GateReport()
    for bench in benches if benches is not None else sorted(GATED_BENCHES):
        base_path = bench_json_path(baseline_dir, bench)
        cur_path = bench_json_path(current_dir, bench)
        if not os.path.exists(base_path):
            report.skipped.append(f"{bench}: no baseline at {base_path}")
            continue
        if not os.path.exists(cur_path):
            report.failures.append(
                Regression(bench, "artifact", 1.0, 0.0, 1.0)
            )
            report.skipped.append(
                f"{bench}: baseline exists but no current artifact at "
                f"{cur_path} — did the bench run?"
            )
            continue
        sub = compare_docs(
            load_bench_json(base_path), load_bench_json(cur_path), tolerances
        )
        report.failures.extend(sub.failures)
        report.checked.extend(sub.checked)
        report.skipped.extend(sub.skipped)
    return report
