"""Machine-readable benchmark artifacts: one ``BENCH_<id>.json`` per run.

The text tables under ``benchmarks/results/`` are for humans and for
EXPERIMENTS.md; CI and regression tooling want numbers it can diff
without parsing fixed-width columns.  :func:`write_bench_json` writes a
small, stable-schema JSON document next to the text report:

.. code-block:: json

    {
      "schema": "eos-bench-v1",
      "bench": "E4",
      "title": "Sequential scan",
      "params": {"object_mb": 16, "page_size": 4096},
      "columns": ["size", "seeks", "ms"],
      "rows": [["1 MB", 3, 12.41]],
      "io": {"seeks": 412, "page_transfers": 4096},
      "wall_ms": 1834.2,
      "notes": ["..."]
    }

``rows`` holds the *raw* cell values benchmarks passed to
``add_row`` (numbers stay numbers); ``io`` carries the attached stats
source's cumulative seek/transfer counts when one was bound; ``wall_ms``
is host wall-clock for the whole experiment, not modelled disk time.
Every benchmark gets this for free through
:meth:`repro.bench.reporting.ExperimentReport.emit`; standalone scripts
can call the writer directly (re-exported by ``benchmarks/common.py``).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Mapping, Sequence

SCHEMA = "eos-bench-v1"


def bench_json_path(directory: str | os.PathLike, bench_id: str) -> str:
    """The canonical artifact path: ``<directory>/BENCH_<ID>.json``."""
    return os.path.join(os.fspath(directory), f"BENCH_{bench_id.upper()}.json")


def _jsonable(value: object) -> object:
    """Raw values where JSON allows, repr-strings where it does not.

    Mappings and sequences recurse (string keys enforced), so benches
    can record structured params — e.g. AGE1's per-mix scan ratios —
    and the regression gate can read them back as objects.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def write_bench_json(
    directory: str | os.PathLike,
    *,
    bench: str,
    title: str = "",
    params: Mapping[str, object] | None = None,
    columns: Sequence[str] = (),
    rows: Iterable[Sequence[object]] = (),
    io: Mapping[str, object] | None = None,
    wall_ms: float | None = None,
    notes: Sequence[str] = (),
) -> str:
    """Write ``BENCH_<bench>.json`` into ``directory``; returns the path.

    ``io`` is expected to carry at least ``seeks`` and
    ``page_transfers`` when given — the two numbers the paper's cost
    model is built on — but any mapping is persisted as-is.
    """
    doc = {
        "schema": SCHEMA,
        "bench": bench,
        "title": title,
        "params": {k: _jsonable(v) for k, v in dict(params or {}).items()},
        "columns": list(columns),
        "rows": [[_jsonable(v) for v in row] for row in rows],
        "io": {k: _jsonable(v) for k, v in dict(io or {}).items()},
        "wall_ms": round(wall_ms, 3) if wall_ms is not None else None,
        "notes": list(notes),
    }
    os.makedirs(directory, exist_ok=True)
    path = bench_json_path(directory, bench)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_bench_json(path: str | os.PathLike) -> dict:
    """Read an artifact back; raises ``ValueError`` on a schema mismatch."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{os.fspath(path)}: unexpected schema {doc.get('schema')!r}"
        )
    return doc


__all__ = ["SCHEMA", "bench_json_path", "load_bench_json", "write_bench_json"]
