"""Benchmark harness: running traces against stores, reporting tables."""

from repro.bench.harness import apply_trace, make_database, run_trace_measured
from repro.bench.jsonout import bench_json_path, load_bench_json, write_bench_json
from repro.bench.reporting import ExperimentReport

__all__ = [
    "apply_trace",
    "make_database",
    "run_trace_measured",
    "ExperimentReport",
    "bench_json_path",
    "load_bench_json",
    "write_bench_json",
]
