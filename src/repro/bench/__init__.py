"""Benchmark harness: running traces against stores, reporting tables."""

from repro.bench.harness import apply_trace, make_database, run_trace_measured
from repro.bench.reporting import ExperimentReport

__all__ = [
    "apply_trace",
    "make_database",
    "run_trace_measured",
    "ExperimentReport",
]
