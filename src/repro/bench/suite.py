"""Run the whole experiment suite and collate one report.

``python -m repro.bench.suite`` invokes pytest on the benchmarks
directory (``--benchmark-only``), then concatenates every per-experiment
table from ``benchmarks/results/`` into ``benchmarks/results/REPORT.txt``
— the single artifact EXPERIMENTS.md's numbers come from.

Options::

    python -m repro.bench.suite              # run everything
    python -m repro.bench.suite --only e4 e5 # a subset, by experiment id
    python -m repro.bench.suite --collate    # just rebuild REPORT.txt
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys

_HERE = os.path.dirname(__file__)
BENCH_DIR = os.path.abspath(os.path.join(_HERE, "..", "..", "..", "benchmarks"))
RESULTS_DIR = os.path.join(BENCH_DIR, "results")

# Collation order: figures first, then experiments numerically.
_ORDER = [
    "f1", "f2", "f3", "f4", "f5", "f6",
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
    "e11a", "e11b", "e12", "e13", "e13b",
]


def run_benchmarks(only: list[str] | None = None) -> int:
    """Invoke pytest on the benchmark modules; returns its exit code."""
    if only:
        targets = []
        for experiment in only:
            stem = experiment.lower().rstrip("ab")
            pattern = os.path.join(BENCH_DIR, f"bench_{stem}_*.py")
            matches = glob.glob(pattern)
            if not matches:
                print(f"no benchmark module matches experiment {experiment!r}")
                return 2
            targets.extend(matches)
    else:
        targets = [BENCH_DIR]
    command = [
        sys.executable, "-m", "pytest", *sorted(set(targets)),
        "--benchmark-only", "-p", "no:randomly", "-q",
    ]
    return subprocess.call(command)


def collate() -> str:
    """Concatenate the per-experiment tables into REPORT.txt."""
    sections = []
    seen = set()
    for experiment in _ORDER:
        path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
        if os.path.exists(path):
            with open(path) as f:
                sections.append(f.read().rstrip())
            seen.add(path)
    # Anything new that is not in the canonical order yet.
    for path in sorted(glob.glob(os.path.join(RESULTS_DIR, "*.txt"))):
        if path not in seen and not path.endswith("REPORT.txt"):
            with open(path) as f:
                sections.append(f.read().rstrip())
    report = (
        "EOS reproduction — collated experiment report\n"
        "(regenerate with: python -m repro.bench.suite)\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "REPORT.txt")
    with open(out_path, "w") as f:
        f.write(report)
    return out_path


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run (a subset of) the suite, then collate."""
    parser = argparse.ArgumentParser(description="Run the EOS experiment suite")
    parser.add_argument(
        "--only", nargs="+", metavar="ID",
        help="run a subset of experiments by id (e.g. f3 e4 e11)",
    )
    parser.add_argument(
        "--collate", action="store_true",
        help="skip running; just rebuild REPORT.txt from existing results",
    )
    args = parser.parse_args(argv)
    if not args.collate:
        code = run_benchmarks(args.only)
        if code:
            return code
    out_path = collate()
    print(f"collated report: {out_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
