"""Glue between workload traces, stores, and I/O measurement.

``apply_trace`` replays a trace against any
:class:`~repro.baselines.base.LargeObjectStore`;
``run_trace_measured`` does the same inside the database's
:meth:`~repro.obs.facade.DatabaseStats.delta` and returns the
:class:`~repro.obs.facade.StatsDelta` — seeks and transfers (the paper's
cost currency) at the top level, buffer/allocator counters alongside.
"""

from __future__ import annotations

from typing import Iterable

from repro.api import EOSDatabase
from repro.baselines.base import LargeObjectStore
from repro.core.config import EOSConfig
from repro.obs.facade import StatsDelta
from repro.obs.tracer import Observability
from repro.workloads.generator import Operation


def make_database(
    *,
    page_size: int = 4096,
    num_pages: int = 8192,
    threshold: int = 8,
    adaptive: bool = False,
    space_capacity: int | None = None,
    obs: Observability | None = None,
) -> EOSDatabase:
    """A fresh database with benchmark-friendly defaults."""
    config = EOSConfig(
        page_size=page_size, threshold=threshold, adaptive_threshold=adaptive
    )
    return EOSDatabase.create(
        num_pages=num_pages,
        page_size=page_size,
        config=config,
        space_capacity=space_capacity,
        obs=obs,
    )


def apply_trace(store: LargeObjectStore, handle, trace: Iterable[Operation]) -> int:
    """Replay a trace; returns the number of operations applied."""
    count = 0
    for op in trace:
        if op.kind == "append":
            store.append(handle, op.data)
        elif op.kind == "insert":
            store.insert(handle, op.offset, op.data)
        elif op.kind == "delete":
            store.delete(handle, op.offset, op.length)
        elif op.kind == "replace":
            store.replace(handle, op.offset, op.data)
        elif op.kind == "read":
            store.read(handle, op.offset, op.length)
        else:
            raise ValueError(f"unknown operation kind {op.kind!r}")
        count += 1
    return count


def run_trace_measured(
    db: EOSDatabase,
    store: LargeObjectStore,
    handle,
    trace: Iterable[Operation],
    *,
    cold_cache: bool = False,
) -> StatsDelta:
    """Replay a trace under ``db.stats.delta``; returns the counts."""
    with db.stats.delta(cold=cold_cache) as delta:
        apply_trace(store, handle, trace)
    return delta
