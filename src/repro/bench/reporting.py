"""Experiment reports: paper-style tables, printed and persisted.

Each benchmark builds an :class:`ExperimentReport`, fills rows, then
calls :meth:`emit` — which prints the table (visible with ``pytest -s``)
and writes it to ``benchmarks/results/<experiment>.txt`` so
EXPERIMENTS.md can reference stable artifacts.

A report with an attached stats source (:meth:`attach_stats`, usually
the database under test) also writes a ``<experiment>.metrics.json``
sidecar: the ``db.stats`` snapshot plus the observability registry's
metrics, when enabled.

Every ``emit`` additionally writes a machine-readable
``BENCH_<ID>.json`` artifact (see :mod:`repro.bench.jsonout`): the raw
row values, the declared parameters (:meth:`set_params`), cumulative
seeks/transfers from the attached stats source, and wall-clock ms from
report construction to emit.  CI diffs these instead of parsing tables.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterable, Mapping, Sequence

from repro.bench.jsonout import write_bench_json
from repro.storage.geometry import DISK_1992, DiskGeometry
from repro.storage.iostats import IODelta
from repro.util.fmt import TextTable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results")


class ExperimentReport:
    """One experiment's table plus free-form notes."""

    def __init__(
        self,
        experiment_id: str,
        title: str,
        columns: Sequence[str],
        *,
        geometry: DiskGeometry = DISK_1992,
        page_size: int = 4096,
    ) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.table = TextTable(f"[{experiment_id}] {title}", columns)
        self.notes: list[str] = []
        self.geometry = geometry
        self.page_size = page_size
        self.params: dict[str, object] = {
            "geometry": geometry.name,
            "page_size": page_size,
        }
        self.rows: list[list[object]] = []
        self._io: dict[str, object] = {}
        self._wall_ms: float | None = None
        self._stats_source = None
        self._t0 = time.perf_counter()

    def attach_stats(self, source) -> None:
        """Bind a stats source (anything with a ``stats`` facade, e.g. an
        :class:`~repro.api.EOSDatabase`); :meth:`emit` then writes its
        snapshot and metrics to a ``.metrics.json`` sidecar."""
        self._stats_source = source

    def set_params(self, params: Mapping[str, object] | None = None, **kw) -> None:
        """Record experiment parameters for the ``BENCH_<ID>.json`` artifact."""
        if params:
            self.params.update(params)
        self.params.update(kw)

    def set_io(self, io: Mapping[str, object] | None = None, **kw) -> None:
        """Record I/O totals explicitly for the JSON artifact.

        For benchmarks that close their database before :meth:`emit`
        (so the attached stats source is no longer live) — capture
        ``seeks``/``page_transfers`` first and hand them over here.
        """
        if io:
            self._io.update(io)
        self._io.update(kw)

    def set_wall_ms(self, wall_ms: float) -> None:
        """Override the artifact's wall-clock time (default: init→emit)."""
        self._wall_ms = wall_ms

    def add_row(self, values: Iterable[object]) -> None:
        """Append one table row (cells in column order)."""
        values = list(values)
        self.rows.append(values)
        self.table.add_row(values)

    def note(self, text: str) -> None:
        """Attach a free-form footnote to the report."""
        self.notes.append(text)

    def cost_ms(self, delta: IODelta) -> float:
        """Model time for an I/O delta under the configured geometry."""
        return self.geometry.cost_ms(
            delta.seeks, delta.page_transfers, self.page_size
        )

    def render(self) -> str:
        """Render the table, notes and geometry line as text."""
        parts = [self.table.render()]
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {n}" for n in self.notes)
        parts.append(
            f"  (geometry: {self.geometry.name}, seek {self.geometry.seek_ms} ms, "
            f"{self.geometry.transfer_ms(self.page_size):.2f} ms per "
            f"{self.page_size}-byte page)"
        )
        return "\n".join(parts)

    def emit(self, directory: str | None = None) -> str:
        """Print the report and persist it; returns the rendered text."""
        text = self.render()
        print("\n" + text)
        target_dir = directory or RESULTS_DIR
        os.makedirs(target_dir, exist_ok=True)
        path = os.path.join(target_dir, f"{self.experiment_id.lower()}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        self._emit_metrics(target_dir)
        self._emit_json(target_dir)
        return text

    def _live_stats(self):
        """The attached source's stats facade, or None if gone/closed."""
        source = self._stats_source
        if source is None:
            return None
        stats = getattr(source, "stats", None)
        if stats is None or getattr(source, "is_closed", False):
            return None
        return stats

    def _emit_json(self, target_dir: str) -> None:
        io = dict(self._io)
        stats = self._live_stats()
        if not io and stats is not None:
            snapshot = stats.snapshot()
            io = {
                "seeks": snapshot.seeks,
                "page_transfers": snapshot.page_transfers,
                "page_reads": snapshot.page_reads,
                "page_writes": snapshot.page_writes,
            }
        write_bench_json(
            target_dir,
            bench=self.experiment_id,
            title=self.title,
            params=self.params,
            columns=self.table.columns,
            rows=self.rows,
            io=io,
            wall_ms=(
                self._wall_ms
                if self._wall_ms is not None
                else (time.perf_counter() - self._t0) * 1000.0
            ),
            notes=self.notes,
        )

    def _emit_metrics(self, target_dir: str) -> None:
        stats = self._live_stats()
        if stats is None:
            return
        sidecar = {
            "experiment": self.experiment_id,
            "stats": stats.snapshot().as_dict(),
            "metrics": stats.metrics(),
        }
        path = os.path.join(
            target_dir, f"{self.experiment_id.lower()}.metrics.json"
        )
        with open(path, "w") as f:
            json.dump(sidecar, f, indent=2, sort_keys=True)
            f.write("\n")
