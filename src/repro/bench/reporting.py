"""Experiment reports: paper-style tables, printed and persisted.

Each benchmark builds an :class:`ExperimentReport`, fills rows, then
calls :meth:`emit` — which prints the table (visible with ``pytest -s``)
and writes it to ``benchmarks/results/<experiment>.txt`` so
EXPERIMENTS.md can reference stable artifacts.

A report with an attached stats source (:meth:`attach_stats`, usually
the database under test) also writes a ``<experiment>.metrics.json``
sidecar: the ``db.stats`` snapshot plus the observability registry's
metrics, when enabled.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.storage.geometry import DISK_1992, DiskGeometry
from repro.storage.iostats import IODelta
from repro.util.fmt import TextTable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results")


class ExperimentReport:
    """One experiment's table plus free-form notes."""

    def __init__(
        self,
        experiment_id: str,
        title: str,
        columns: Sequence[str],
        *,
        geometry: DiskGeometry = DISK_1992,
        page_size: int = 4096,
    ) -> None:
        self.experiment_id = experiment_id
        self.table = TextTable(f"[{experiment_id}] {title}", columns)
        self.notes: list[str] = []
        self.geometry = geometry
        self.page_size = page_size
        self._stats_source = None

    def attach_stats(self, source) -> None:
        """Bind a stats source (anything with a ``stats`` facade, e.g. an
        :class:`~repro.api.EOSDatabase`); :meth:`emit` then writes its
        snapshot and metrics to a ``.metrics.json`` sidecar."""
        self._stats_source = source

    def add_row(self, values: Iterable[object]) -> None:
        """Append one table row (cells in column order)."""
        self.table.add_row(values)

    def note(self, text: str) -> None:
        """Attach a free-form footnote to the report."""
        self.notes.append(text)

    def cost_ms(self, delta: IODelta) -> float:
        """Model time for an I/O delta under the configured geometry."""
        return self.geometry.cost_ms(
            delta.seeks, delta.page_transfers, self.page_size
        )

    def render(self) -> str:
        """Render the table, notes and geometry line as text."""
        parts = [self.table.render()]
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {n}" for n in self.notes)
        parts.append(
            f"  (geometry: {self.geometry.name}, seek {self.geometry.seek_ms} ms, "
            f"{self.geometry.transfer_ms(self.page_size):.2f} ms per "
            f"{self.page_size}-byte page)"
        )
        return "\n".join(parts)

    def emit(self, directory: str | None = None) -> str:
        """Print the report and persist it; returns the rendered text."""
        text = self.render()
        print("\n" + text)
        target_dir = directory or RESULTS_DIR
        os.makedirs(target_dir, exist_ok=True)
        path = os.path.join(target_dir, f"{self.experiment_id.lower()}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        self._emit_metrics(target_dir)
        return text

    def _emit_metrics(self, target_dir: str) -> None:
        source = self._stats_source
        if source is None:
            return
        stats = getattr(source, "stats", None)
        if stats is None or getattr(source, "is_closed", False):
            return
        sidecar = {
            "experiment": self.experiment_id,
            "stats": stats.snapshot().as_dict(),
            "metrics": stats.metrics(),
        }
        path = os.path.join(
            target_dir, f"{self.experiment_id.lower()}.metrics.json"
        )
        with open(path, "w") as f:
            json.dump(sidecar, f, indent=2, sort_keys=True)
            f.write("\n")
