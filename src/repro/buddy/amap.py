"""The allocation map: one byte per four pages (paper Section 3.1, Figure 2).

Each byte ``b`` of the map describes the four pages ``4B .. 4B+3`` (where
``B`` is the byte's index):

* **Large-segment start** (``b & 0x80``): a segment of size >= 4 pages
  starts at page ``4B``.  Bit 6 is the status (0 free, 1 allocated) and
  bits 5..0 hold the segment *type* t, i.e. the size is ``2**t`` pages.
  The encoding could express types up to 63 ("more than what is really
  needed").
* **Quad byte** (``b`` nonzero, high bit clear): the four pages are
  described individually by the low four bits, one per page — bit 3 for
  page ``4B`` through bit 0 for page ``4B+3``; 1 means allocated.  This
  form covers segments of size 1 and 2, which are too small to merit a
  start byte of their own.
* **Continuation** (``b == 0``): the pages belong to a segment that
  starts at an earlier page; "the segment that includes those 4 pages is
  described in the first nonzero byte on the left".

Two invariants keep the encoding unambiguous:

* Free space is always *maximally coalesced*: no two free buddies
  coexist.  In particular a quad whose four pages are all free is always
  normalised to a free type-2 start byte — conveniently, the quad-byte
  encoding of "all four free" would be ``0x00``, which the format already
  reserves for continuations, so the encoding itself forbids the
  unnormalised state.
* Segments of size ``2**t`` start only at pages divisible by ``2**t``,
  so a segment of size >= 4 always owns whole quads.

The map is the *single source of truth* for the space's allocation
state.  :class:`~repro.buddy.space.BuddySpace` layers the count array,
the jump scan and the coalescing logic on top of these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BadSegment, DirectoryCorrupt
from repro.util.bitops import floor_log2, is_power_of_two

# Quad-byte bit for a page at offset ``o`` (0..3) within its quad:
# bit 3 is the first page, bit 0 the last.
_QUAD_BIT = (0b1000, 0b0100, 0b0010, 0b0001)

LARGE_FLAG = 0x80
ALLOCATED_FLAG = 0x40
TYPE_MASK = 0x3F


def encode_large(size_type: int, allocated: bool) -> int:
    """Encode a start byte for a segment of ``2**size_type`` pages (>= 4)."""
    if size_type < 2 or size_type > TYPE_MASK:
        raise ValueError(f"large-segment type must be in [2, 63], got {size_type}")
    return LARGE_FLAG | (ALLOCATED_FLAG if allocated else 0) | size_type


def decode_large(byte: int) -> tuple[int, bool]:
    """Decode a start byte into (size_type, allocated)."""
    if not byte & LARGE_FLAG:
        raise ValueError(f"byte 0x{byte:02x} is not a large-segment start byte")
    return byte & TYPE_MASK, bool(byte & ALLOCATED_FLAG)


@dataclass(frozen=True)
class SegmentView:
    """A decoded canonical segment: ``size`` pages starting at ``start``."""

    start: int
    size: int
    allocated: bool

    @property
    def end(self) -> int:
        return self.start + self.size


class AllocationMap:
    """Byte-encoded page allocation map for one buddy space.

    ``capacity`` must be a multiple of 4 (each byte describes a whole
    quad).  A fresh map reports every page allocated; the buddy space
    initialises free extents explicitly so the count array stays in sync.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0 or capacity % 4:
            raise ValueError(
                f"allocation map capacity must be a positive multiple of 4, "
                f"got {capacity}"
            )
        self.capacity = capacity
        self.n_bytes = capacity // 4
        # All pages allocated individually: quad bytes 0x0F.
        self.raw = bytearray([0x0F]) * self.n_bytes

    # -- construction -------------------------------------------------------

    @classmethod
    def from_bytes(cls, raw: bytes | bytearray, capacity: int) -> "AllocationMap":
        """Rebuild a map from its serialized bytes (directory page load)."""
        amap = cls(capacity)
        if len(raw) < amap.n_bytes:
            raise DirectoryCorrupt(
                f"allocation map needs {amap.n_bytes} bytes, got {len(raw)}"
            )
        amap.raw[:] = raw[: amap.n_bytes]
        return amap

    def to_bytes(self) -> bytes:
        """Serialise the map (the directory page's amap area)."""
        return bytes(self.raw)

    # -- queries ------------------------------------------------------------

    def _check_page(self, page: int) -> None:
        if page < 0 or page >= self.capacity:
            raise BadSegment(
                f"page {page} outside buddy space of {self.capacity} pages"
            )

    def quad_bits(self, quad: int) -> int | None:
        """Low four bits of a quad byte, or None if the byte is not a quad."""
        byte = self.raw[quad]
        if byte == 0 or byte & LARGE_FLAG:
            return None
        return byte & 0x0F

    def page_allocated(self, page: int) -> bool:
        """Status of a single page."""
        return self.segment_containing(page).allocated

    def segment_containing(self, page: int) -> SegmentView:
        """The canonical segment that includes ``page``.

        For large segments this walks left to "the first nonzero byte on
        the left" exactly as the paper describes.  Within a quad byte, a
        free page aligned with a free partner forms a canonical size-2
        free segment; every other page is reported as a size-1 segment
        (the map does not distinguish a size-2 allocated segment from two
        size-1 allocations — frees carry their own extents, so it never
        needs to).
        """
        self._check_page(page)
        quad = page // 4
        byte = self.raw[quad]
        scan = quad
        while byte == 0:
            if scan == 0:
                raise DirectoryCorrupt("allocation map begins with a continuation byte")
            scan -= 1
            byte = self.raw[scan]
        if byte & LARGE_FLAG:
            size_type, allocated = decode_large(byte)
            start = scan * 4
            size = 1 << size_type
            if page >= start + size:
                raise DirectoryCorrupt(
                    f"page {page} falls in no segment: nearest start byte at "
                    f"quad {scan} covers only {size} pages"
                )
            return SegmentView(start=start, size=size, allocated=allocated)
        if scan != quad:
            raise DirectoryCorrupt(
                f"quad {quad} is a continuation of a non-large byte at quad {scan}"
            )
        bits = byte & 0x0F
        offset = page % 4
        allocated = bool(bits & _QUAD_BIT[offset])
        if allocated:
            return SegmentView(start=page, size=1, allocated=True)
        partner = page ^ 1
        partner_free = not bits & _QUAD_BIT[partner % 4]
        if partner_free:
            return SegmentView(start=min(page, partner), size=2, allocated=False)
        return SegmentView(start=page, size=1, allocated=False)

    def free_segment_at(self, start: int, size: int) -> bool:
        """True if a canonical *free* segment of exactly ``size`` starts here."""
        if start + size > self.capacity:
            return False
        seg = self.segment_containing(start)
        return not seg.allocated and seg.start == start and seg.size == size

    # -- mutation primitives --------------------------------------------------

    def set_large(self, start: int, size_type: int, allocated: bool) -> None:
        """Write a size->=4 segment: start byte plus zeroed continuations."""
        size = 1 << size_type
        if size_type < 2:
            raise ValueError(f"set_large requires type >= 2, got {size_type}")
        self._check_aligned(start, size)
        quad = start // 4
        self.raw[quad] = encode_large(size_type, allocated)
        for cont in range(quad + 1, quad + size // 4):
            self.raw[cont] = 0

    def set_small(self, start: int, size: int, allocated: bool) -> None:
        """Write a size-1 or size-2 segment as quad bits.

        The quad must already be in quad form, or be exactly covered by a
        type-2 start byte (which is then materialised into bits).  Writing
        small pieces inside a *larger* segment is a protocol error: the
        caller must break the larger segment up first.

        If the write leaves all four pages free, the byte is normalised
        to a free type-2 start byte (the all-zero quad form is reserved
        for continuations).
        """
        if size not in (1, 2):
            raise ValueError(f"set_small handles sizes 1 and 2, got {size}")
        self._check_aligned(start, size)
        quad = start // 4
        bits = self._materialize_quad(quad)
        for page in range(start, start + size):
            bit = _QUAD_BIT[page % 4]
            if allocated:
                bits |= bit
            else:
                bits &= ~bit
        if bits == 0:
            # All four pages free: normalise to a free type-2 segment.
            self.raw[quad] = encode_large(2, allocated=False)
        else:
            self.raw[quad] = bits

    def set_segment(self, start: int, size: int, allocated: bool) -> None:
        """Write a canonical segment of any power-of-two size."""
        if not is_power_of_two(size):
            raise ValueError(f"segment size must be a power of two, got {size}")
        if size >= 4:
            self.set_large(start, floor_log2(size), allocated)
        else:
            self.set_small(start, size, allocated)

    def write_quad_bits(self, quad: int, bits: int) -> None:
        """Overwrite one quad's per-page bits wholesale.

        Used when a caller owns the entire quad (e.g. the buddy split of
        a size->=4 block down to size 1 or 2 pieces) and composes its
        final state directly.  ``bits == 0`` (all four pages free) is
        normalised to a free type-2 start byte as usual.
        """
        if not 0 <= bits <= 0x0F:
            raise ValueError(f"quad bits must fit in the low nibble, got {bits:#x}")
        if quad < 0 or quad >= self.n_bytes:
            raise BadSegment(f"quad {quad} outside map of {self.n_bytes} bytes")
        if bits == 0:
            self.raw[quad] = encode_large(2, allocated=False)
        else:
            self.raw[quad] = bits

    def break_large(self, start: int) -> None:
        """Dissolve a size->=4 segment into per-page quad bits of equal status.

        Used by partial frees: before pages inside a large segment can
        change status individually, the segment's start byte and
        continuations are rewritten as quad bytes.  The caller restores
        canonical (maximally coalesced) form afterwards.
        """
        quad = start // 4
        byte = self.raw[quad]
        if not byte & LARGE_FLAG:
            raise BadSegment(f"no large segment starts at page {start}")
        size_type, allocated = decode_large(byte)
        if not allocated:
            # An all-free quad in bit form would be 0x00, colliding with the
            # continuation encoding.  Free segments are only ever resized
            # through the buddy split path, never broken into bits.
            raise BadSegment(
                f"refusing to break up the free segment at page {start}; "
                f"split it through the buddy system instead"
            )
        for q in range(quad, quad + (1 << size_type) // 4):
            self.raw[q] = 0x0F

    def _materialize_quad(self, quad: int) -> int:
        """Return the quad's bits, converting a covering type-2 byte if needed."""
        byte = self.raw[quad]
        if byte == 0:
            raise BadSegment(
                f"quad {quad} is inside a larger segment; break it up first"
            )
        if byte & LARGE_FLAG:
            size_type, allocated = decode_large(byte)
            if size_type != 2:
                raise BadSegment(
                    f"quad {quad} starts a {1 << size_type}-page segment; "
                    f"break it up first"
                )
            return 0x0F if allocated else 0x00
        return byte & 0x0F

    def _check_aligned(self, start: int, size: int) -> None:
        self._check_page(start)
        if start + size > self.capacity:
            raise BadSegment(
                f"segment [{start}, {start + size}) exceeds capacity {self.capacity}"
            )
        if start % size:
            raise BadSegment(
                f"segment at page {start} of size {size} violates buddy alignment"
            )

    # -- whole-map decoding ---------------------------------------------------

    def decode(self) -> list[SegmentView]:
        """Decode the entire map into canonical segments, left to right.

        Verifies structural well-formedness as it goes; used by the
        verifier, the statistics module and the tests.
        """
        segments: list[SegmentView] = []
        page = 0
        while page < self.capacity:
            quad = page // 4
            byte = self.raw[quad]
            if page % 4 == 0 and byte & LARGE_FLAG:
                size_type, allocated = decode_large(byte)
                size = 1 << size_type
                if page % size:
                    raise DirectoryCorrupt(
                        f"segment of {size} pages at page {page} is misaligned"
                    )
                if page + size > self.capacity:
                    raise DirectoryCorrupt(
                        f"segment of {size} pages at page {page} overruns the space"
                    )
                for cont in range(quad + 1, quad + size // 4):
                    if self.raw[cont] != 0:
                        raise DirectoryCorrupt(
                            f"quad {cont} should be a continuation of the segment "
                            f"at page {page} but is 0x{self.raw[cont]:02x}"
                        )
                segments.append(SegmentView(page, size, allocated))
                page += size
                continue
            if byte == 0:
                raise DirectoryCorrupt(
                    f"continuation byte at quad {quad} follows no segment start"
                )
            if byte & LARGE_FLAG:
                raise DirectoryCorrupt(
                    f"large-segment start byte in the middle of a quad at page {page}"
                )
            segments.extend(self._decode_quad(quad))
            page = (quad + 1) * 4
        return segments

    def _decode_quad(self, quad: int) -> list[SegmentView]:
        bits = self.raw[quad] & 0x0F
        base = quad * 4
        out: list[SegmentView] = []
        offset = 0
        while offset < 4:
            allocated = bool(bits & _QUAD_BIT[offset])
            if allocated:
                out.append(SegmentView(base + offset, 1, True))
                offset += 1
                continue
            # Free page: pairs up with a free partner when size-aligned.
            partner = offset ^ 1
            if offset % 2 == 0 and not bits & _QUAD_BIT[partner]:
                out.append(SegmentView(base + offset, 2, False))
                offset += 2
            else:
                out.append(SegmentView(base + offset, 1, False))
                offset += 1
        return out

    def check(self, max_segment_size: int | None = None) -> None:
        """Raise :class:`DirectoryCorrupt` if any invariant is violated.

        Beyond what :meth:`decode` validates, this asserts maximal
        coalescing: no free segment's buddy is also free with equal size
        — except at ``max_segment_size``, where a merge would exceed the
        largest segment the directory can describe and free buddies may
        legitimately coexist.
        """
        segments = self.decode()
        free = {
            (seg.start, seg.size) for seg in segments if not seg.allocated
        }
        for start, size in free:
            if max_segment_size is not None and size >= max_segment_size:
                continue
            if (start ^ size, size) in free:
                raise DirectoryCorrupt(
                    f"free buddies at pages {start} and {start ^ size} "
                    f"(size {size}) were not coalesced"
                )
