"""The buddy-space directory page (paper Section 3, Figure 1).

Each buddy space is controlled by exactly one page holding:

* the **count array** — ``count[t]`` is the number of free segments of
  type ``t`` (size ``2**t`` pages), for ``t`` in ``0..k``; and
* the **allocation map** — one byte per four pages (see
  :mod:`repro.buddy.amap`).

Because the directory must fit in one page, the page size bounds both
the maximum segment size and the space capacity.  The paper derives, for
4 KB pages: maximum segment type ``log2(2 * 4096) = 13`` (32 MB
segments) and a map of ``4096 - 2*14 = 4068`` bytes controlling
``4068 * 4 = 16,272`` pages (~63.5 MB).  Our layout adds a 6-byte header
(version, max type, capacity), so the same arithmetic gives 16,248
pages; the bench for Figure 1 prints both derivations.

Layout::

    offset 0        u8   version (=1)
    offset 1        u8   k, the maximum segment type
    offset 2        u32  capacity in pages (multiple of 4)
    offset 6        u16 * (k+1)   count array
    offset 6+2(k+1) u8  * capacity/4   allocation map
"""

from __future__ import annotations

import struct

from repro.errors import DirectoryCorrupt, VolumeLayoutError
from repro.util.bitops import floor_log2

_VERSION = 1
_HEADER = struct.Struct("<BBI")
HEADER_SIZE = _HEADER.size  # 6 bytes


def max_segment_type(page_size: int) -> int:
    """The paper's bound: for page size PS the maximum segment is 2*PS pages."""
    return floor_log2(2 * page_size)


def max_capacity(page_size: int) -> int:
    """Largest space capacity whose directory fits in one page.

    ``capacity/4`` map bytes plus the header and count array must fit in
    ``page_size`` bytes; the result is truncated to a multiple of 4.
    """
    k = max_segment_type(page_size)
    map_bytes = page_size - HEADER_SIZE - 2 * (k + 1)
    if map_bytes < 1:
        raise VolumeLayoutError(
            f"page size {page_size} cannot hold a buddy-space directory"
        )
    return map_bytes * 4


def effective_max_type(page_size: int, capacity: int) -> int:
    """Largest usable type: bounded by the page size *and* the capacity."""
    return min(max_segment_type(page_size), floor_log2(capacity))


def validate_layout(page_size: int, capacity: int) -> None:
    """Check a (page size, capacity) pair against the one-page constraint."""
    if capacity <= 0 or capacity % 4:
        raise VolumeLayoutError(
            f"buddy space capacity must be a positive multiple of 4, got {capacity}"
        )
    limit = max_capacity(page_size)
    if capacity > limit:
        raise VolumeLayoutError(
            f"capacity {capacity} exceeds the {limit} pages a one-page "
            f"directory can describe at page size {page_size}"
        )


def pack_directory(
    page_size: int, capacity: int, counts: list[int], amap_bytes: bytes
) -> bytearray:
    """Serialise the directory into a page image."""
    k = max_segment_type(page_size)
    if len(counts) != k + 1:
        raise DirectoryCorrupt(
            f"count array must have {k + 1} entries for page size {page_size}, "
            f"got {len(counts)}"
        )
    image = bytearray(page_size)
    _HEADER.pack_into(image, 0, _VERSION, k, capacity)
    offset = HEADER_SIZE
    for value in counts:
        if not 0 <= value <= 0xFFFF:
            raise DirectoryCorrupt(f"count value {value} does not fit in 16 bits")
        struct.pack_into("<H", image, offset, value)
        offset += 2
    image[offset : offset + len(amap_bytes)] = amap_bytes
    return image


def unpack_directory(image: bytes | bytearray) -> tuple[int, list[int], bytes]:
    """Deserialise a directory page into (capacity, counts, amap bytes)."""
    if len(image) < HEADER_SIZE:
        raise DirectoryCorrupt("directory page too small for its header")
    version, k, capacity = _HEADER.unpack_from(image, 0)
    if version != _VERSION:
        raise DirectoryCorrupt(f"unknown directory version {version}")
    if len(image) < HEADER_SIZE + 2 * (k + 1):
        raise DirectoryCorrupt(
            f"directory page too small for a {k + 1}-entry count array"
        )
    offset = HEADER_SIZE
    counts = []
    for _ in range(k + 1):
        (value,) = struct.unpack_from("<H", image, offset)
        counts.append(value)
        offset += 2
    map_bytes = capacity // 4
    if offset + map_bytes > len(image):
        raise DirectoryCorrupt(
            f"directory page cannot hold a map for {capacity} pages"
        )
    return capacity, counts, bytes(image[offset : offset + map_bytes])
