"""The binary buddy system of EOS (paper Section 3).

Public surface:

* :class:`~repro.buddy.space.BuddySpace` — one buddy segment space, its
  count array and byte-encoded allocation map, with any-size allocation
  and any-portion frees;
* :class:`~repro.buddy.manager.BuddyManager` — multi-space allocation
  with the self-correcting in-memory superdirectory;
* :class:`~repro.buddy.manager.SegmentRef` — a physically contiguous
  page run, the currency between the allocator and the large object
  manager;
* :class:`~repro.buddy.amap.AllocationMap` — the Figure 2 byte encoding;
* :class:`~repro.buddy.bitmap.BitmapAllocator` — the block-at-a-time
  baseline used by experiment E1.
"""

from repro.buddy.amap import AllocationMap, SegmentView
from repro.buddy.bitmap import BitmapAllocator
from repro.buddy.directory import (
    effective_max_type,
    max_capacity,
    max_segment_type,
)
from repro.buddy.manager import AllocatorStats, BuddyManager, SegmentRef
from repro.buddy.space import BuddySpace
from repro.buddy.stats import SpaceUsage, internal_waste_pages, space_usage

__all__ = [
    "AllocationMap",
    "SegmentView",
    "BitmapAllocator",
    "effective_max_type",
    "max_capacity",
    "max_segment_type",
    "AllocatorStats",
    "BuddyManager",
    "SegmentRef",
    "BuddySpace",
    "SpaceUsage",
    "internal_waste_pages",
    "space_usage",
]
