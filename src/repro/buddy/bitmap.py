"""A block-at-a-time bitmap allocator — the foil for experiment E1.

Classic database storage managers keep one bit per page in a free-space
bitmap spanning many map pages.  Finding ``n`` contiguous free pages
means scanning bits, potentially across the whole map, and flipping the
bits of every page in the run.  The paper's objective 4 — "allocation of
large physically contiguous disk space should be fast; ideally, 1 disk
access regardless of the size of the requested space" — is precisely
what this allocator fails at: the number of map pages it touches grows
with the request size and with how far into the volume the first fit
lies.

The implementation is deliberately straightforward first-fit, with map
pages read and written through the same accounted disk as everything
else, so E1's "directory pages touched per allocation" comparison is
apples to apples.
"""

from __future__ import annotations

from repro.buddy.manager import SegmentRef
from repro.errors import BadSegment, OutOfSpace
from repro.storage.disk import DiskVolume
from repro.storage.page import PageId


class BitmapAllocator:
    """First-fit contiguous allocation over a one-bit-per-page bitmap.

    The bitmap occupies the first ``map_pages`` pages of the managed
    region; allocatable pages follow it.  Map pages are read on demand
    (one at a time, as a block-granular allocator would) and written back
    for every page run they describe.
    """

    def __init__(self, disk: DiskVolume, first_page: PageId, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.disk = disk
        self.page_size = disk.page_size
        bits_per_page = self.page_size * 8
        self.map_pages = -(-capacity // bits_per_page)
        self.first_map_page = first_page
        self.first_data_page = first_page + self.map_pages
        self.capacity = capacity
        if self.first_data_page + capacity > disk.num_pages:
            raise ValueError("bitmap region does not fit on the disk")
        self.map_page_touches = 0
        # Zero the map: all pages free.
        for i in range(self.map_pages):
            disk.write_page(self.first_map_page + i, bytes(self.page_size))

    # -- map access -----------------------------------------------------

    def _load_map_page(self, index: int) -> bytearray:
        self.map_page_touches += 1
        return bytearray(self.disk.read_page(self.first_map_page + index))

    def _store_map_page(self, index: int, image: bytearray) -> None:
        self.map_page_touches += 1
        self.disk.write_page(self.first_map_page + index, image)

    # -- allocation -------------------------------------------------------

    def allocate(self, n_pages: int) -> SegmentRef:
        """First-fit scan for ``n_pages`` contiguous free pages."""
        if n_pages <= 0:
            raise ValueError(f"allocation size must be positive, got {n_pages}")
        bits_per_page = self.page_size * 8
        run_start = 0
        run_len = 0
        page = 0
        current_index = -1
        image: bytearray | None = None
        while page < self.capacity:
            index = page // bits_per_page
            if index != current_index:
                image = self._load_map_page(index)
                current_index = index
            bit = page % bits_per_page
            assert image is not None
            allocated = image[bit // 8] & (1 << (bit % 8))
            if allocated:
                run_len = 0
                run_start = page + 1
            else:
                run_len += 1
                if run_len == n_pages:
                    self._set_bits(run_start, n_pages, allocated=True)
                    return SegmentRef(self.first_data_page + run_start, n_pages)
            page += 1
        raise OutOfSpace(n_pages)

    def free(self, first_page: PageId, n_pages: int) -> None:
        """Clear the bits of a previously allocated run."""
        local = first_page - self.first_data_page
        if local < 0 or local + n_pages > self.capacity:
            raise BadSegment(
                f"free of [{first_page}, {first_page + n_pages}) outside "
                f"the bitmap region"
            )
        self._set_bits(local, n_pages, allocated=False)

    def _set_bits(self, start: int, count: int, *, allocated: bool) -> None:
        bits_per_page = self.page_size * 8
        page = start
        end = start + count
        while page < end:
            index = page // bits_per_page
            image = self._load_map_page(index)
            # Flip every bit of the run that lives on this map page.
            while page < end and page // bits_per_page == index:
                bit = page % bits_per_page
                if allocated:
                    if image[bit // 8] & (1 << (bit % 8)):
                        raise BadSegment(f"page {page} is already allocated")
                    image[bit // 8] |= 1 << (bit % 8)
                else:
                    if not image[bit // 8] & (1 << (bit % 8)):
                        raise BadSegment(f"page {page} is already free")
                    image[bit // 8] &= ~(1 << (bit % 8))
                page += 1
            self._store_map_page(index, image)

    # -- introspection ----------------------------------------------------

    def free_pages(self) -> int:
        """Count free pages (test helper; charges map I/O like a real scan)."""
        total = 0
        for index in range(self.map_pages):
            image = self._load_map_page(index)
            base = index * self.page_size * 8
            limit = min(self.capacity - base, self.page_size * 8)
            for bit in range(limit):
                if not image[bit // 8] & (1 << (bit % 8)):
                    total += 1
        return total
