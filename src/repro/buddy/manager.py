"""Multi-space allocation and the superdirectory (paper Section 3.3).

A database larger than one buddy space has many directory pages, and a
naive allocator might have to visit every one of them to find a segment.
The paper's remedy is the **superdirectory**: a main-memory array holding
"the size of the largest free segment in each buddy space".  It starts
out optimistic — every space is assumed to hold a maximum-size free
segment — and is *self-correcting*: "the first wrong guess about the
maximum segment size available in a particular buddy space will correct
the superdirectory information regarding this buddy space".

:class:`BuddyManager` owns the superdirectory, translates between
physical page numbers and space-local segment addresses, and accounts
for how many directory pages each request inspects (experiment E9).
Directory pages travel through a buffer pool, so a hot directory costs
no physical I/O — matching the paper's "at most one disk access ...
regardless of the segment size" for databases that fit in one space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.analysis.buddycheck import check_space
from repro.analysis.confine import ThreadConfinement
from repro.analysis.sanitize import sanitizers_from_env
from repro.buddy.space import BuddySpace
from repro.concurrency.latch import Latch
from repro.errors import BadSegment, InvariantViolation, OutOfSpace, SegmentTooLarge
from repro.obs.tracer import NULL_OBS, Observability
from repro.storage.buffer import BufferPool
from repro.storage.page import PageId
from repro.storage.volume import Volume
from repro.util.bitops import ceil_log2


class SegmentRef(NamedTuple):
    """A physically contiguous run of pages handed out by the allocator."""

    first_page: PageId
    n_pages: int

    @property
    def end(self) -> PageId:
        return self.first_page + self.n_pages


@dataclass
class AllocatorStats:
    """Counters for the allocation-cost experiments (E1, E9)."""

    allocations: int = 0
    frees: int = 0
    directory_loads: int = 0       # directory pages inspected (buffered or not)
    superdirectory_skips: int = 0  # spaces skipped thanks to the superdirectory
    superdirectory_corrections: int = 0  # wrong optimistic guesses corrected


class BuddyManager:
    """Allocate and free physically contiguous page runs across buddy spaces."""

    def __init__(
        self,
        volume: Volume,
        pool: BufferPool | None = None,
        *,
        use_superdirectory: bool = True,
        write_through: bool = True,
        obs: Observability | None = None,
    ) -> None:
        self.volume = volume
        self.pool = pool or BufferPool(volume.disk, capacity=volume.n_spaces + 8)
        self.use_superdirectory = use_superdirectory
        self.write_through = write_through
        self.obs = obs if obs is not None else NULL_OBS
        self.stats = AllocatorStats()
        self.page_size = volume.disk.page_size
        # "Initially, it indicates that each buddy space available in the
        # system contains a free segment of the maximum size possible.
        # This information may be erroneous."
        probe = BuddySpace(self.page_size, volume.space_capacity)
        self.max_type = probe.max_type
        self.max_segment_pages = probe.max_segment_pages
        self._super = [self.max_type] * volume.n_spaces
        # The superdirectory is latched, not transaction-locked, "otherwise
        # it would quickly become a hot spot".
        self.superdirectory_latch = Latch("superdirectory")
        # Debug-mode invariant checking: revalidate a space's directory
        # right after every alloc/free (see repro.analysis.buddycheck).
        self.check_invariants = sanitizers_from_env().buddy
        # Thread-confinement guard; attached by the owning shard (see
        # repro.analysis.confine), None means unconfined.
        self.confinement: ThreadConfinement | None = None

    def attach_invariant_sanitizer(self) -> None:
        """Enable post-operation directory revalidation on this manager."""
        self.check_invariants = True

    def attach_confinement(self, confinement: ThreadConfinement) -> None:
        """Confine alloc/free entry points to the claiming worker thread."""
        self.confinement = confinement

    def _confine(self, entry: str) -> None:
        if self.confinement is not None:
            self.confinement.check(entry)

    def _check_after(self, operation: str, index: int, space: BuddySpace) -> None:
        # The in-memory space is checked (not a reload) so the sanitizer
        # perturbs no I/O accounting and sees exactly what will be stored.
        check = check_space(space)
        if not check.ok:
            problems = "; ".join(check.problems)
            raise InvariantViolation(
                f"buddy space {index} inconsistent after {operation}: {problems}"
            )

    # ------------------------------------------------------------------
    # Formatting and directory paging
    # ------------------------------------------------------------------

    @classmethod
    def format(cls, volume: Volume, **kwargs: object) -> "BuddyManager":
        """Write fresh (fully free) directories for every space."""
        manager = cls(volume, **kwargs)  # type: ignore[arg-type]
        for extent in volume.spaces:
            space = BuddySpace.create(manager.page_size, extent.capacity)
            volume.disk.write_page(extent.directory_page, space.to_page())
        return manager

    def load_space(self, index: int) -> BuddySpace:
        """Fetch a space's directory page and decode it."""
        self.stats.directory_loads += 1
        extent = self.volume.spaces[index]
        with self.pool.page(extent.directory_page) as image:
            return BuddySpace.from_page(self.page_size, image)

    def store_space(self, index: int, space: BuddySpace) -> None:
        """Write a space's directory back through the buffer pool."""
        extent = self.volume.spaces[index]
        with self.pool.page(extent.directory_page, dirty=True) as image:
            image[:] = space.to_page()
        if self.write_through:
            self.pool.flush_page(extent.directory_page)

    def _update_guess(self, index: int, space: BuddySpace) -> None:
        with self.superdirectory_latch:
            self._super[index] = space.max_free_type()

    def superdirectory(self) -> list[int]:
        """A copy of the current guesses (max free type per space)."""
        with self.superdirectory_latch:
            return list(self._super)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(
        self, n_pages: int, *, avoid_space: int | None = None
    ) -> SegmentRef:
        """Allocate ``n_pages`` contiguous pages from some space.

        Raises :class:`OutOfSpace` when no space can satisfy the request,
        and :class:`SegmentTooLarge` above the maximum segment size (the
        large object manager splits such objects across segments).
        ``avoid_space`` excludes one space from consideration — the
        compactor's evacuation pass steers relocations away from the
        space it is emptying.
        """
        self._confine("BuddyManager.allocate")
        if n_pages > self.max_segment_pages:
            raise SegmentTooLarge(n_pages, self.max_segment_pages)
        with self.obs.tracer.span("buddy.alloc", pages=n_pages) as span:
            self.stats.allocations += 1
            ref = self._try_allocate(n_pages, exact=True, avoid=avoid_space)
            if ref is None:
                raise OutOfSpace(n_pages)
            span.set(first_page=ref.first_page)
            self.obs.metrics.histogram("buddy.alloc.pages").observe(ref.n_pages)
            return ref

    def allocate_up_to(
        self, n_pages: int, *, avoid_space: int | None = None
    ) -> SegmentRef:
        """Allocate the largest contiguous run available, at most ``n_pages``."""
        self._confine("BuddyManager.allocate_up_to")
        want = min(n_pages, self.max_segment_pages)
        with self.obs.tracer.span("buddy.alloc", pages=want, up_to=True) as span:
            self.stats.allocations += 1
            ref = self._try_allocate(want, exact=True, avoid=avoid_space)
            if ref is None:
                ref = self._try_allocate(want, exact=False, avoid=avoid_space)
            if ref is None:
                raise OutOfSpace(n_pages)
            span.set(first_page=ref.first_page, granted=ref.n_pages)
            self.obs.metrics.histogram("buddy.alloc.pages").observe(ref.n_pages)
            return ref

    def _space_order(self, *, exact: bool, avoid: int | None = None) -> list[int]:
        """Spaces to probe, in order.

        Exact requests go first-fit (keeps related data clustered in low
        spaces); best-effort requests try the space the superdirectory
        believes has the largest free segment first.  ``avoid`` drops
        one space from the candidates entirely.
        """
        indices = [i for i in range(self.volume.n_spaces) if i != avoid]
        if not exact and self.use_superdirectory:
            with self.superdirectory_latch:
                guesses = list(self._super)
            indices.sort(key=lambda i: guesses[i], reverse=True)
        return indices

    def _try_allocate(
        self, n_pages: int, *, exact: bool, avoid: int | None = None
    ) -> SegmentRef | None:
        needed_type = ceil_log2(n_pages) if exact else 0
        for index in self._space_order(exact=exact, avoid=avoid):
            if self.use_superdirectory:
                with self.superdirectory_latch:
                    guess = self._super[index]
                if guess < needed_type:
                    # "...to eliminate unnecessary access to an individual
                    # buddy space directory, if the maximum segment size in
                    # that space is less than the one requested."
                    self.stats.superdirectory_skips += 1
                    continue
            space = self.load_space(index)
            if exact:
                start = space.allocate(n_pages)
                got = n_pages if start is not None else 0
            else:
                result = space.allocate_up_to(n_pages)
                start, got = result if result is not None else (None, 0)
            if start is None:
                if self.use_superdirectory:
                    self.stats.superdirectory_corrections += 1
                self._update_guess(index, space)
                continue
            self._update_guess(index, space)
            if self.check_invariants:
                self._check_after("allocate", index, space)
            self.store_space(index, space)
            extent = self.volume.spaces[index]
            return SegmentRef(extent.to_physical(start), got)
        return None

    # ------------------------------------------------------------------
    # Deallocation
    # ------------------------------------------------------------------

    def free(self, first_page: PageId, n_pages: int) -> None:
        """Free any previously allocated run (whole segments or portions)."""
        self._confine("BuddyManager.free")
        if n_pages <= 0:
            raise ValueError(f"free size must be positive, got {n_pages}")
        extent = self.volume.space_of_physical(first_page)
        local = extent.to_local(first_page)
        if local + n_pages > extent.capacity:
            raise BadSegment(
                f"free of [{first_page}, {first_page + n_pages}) crosses out "
                f"of buddy space {extent.index}"
            )
        with self.obs.tracer.span(
            "buddy.free", first_page=first_page, pages=n_pages
        ):
            self.stats.frees += 1
            space = self.load_space(extent.index)
            space.free(local, n_pages)
            self._update_guess(extent.index, space)
            if self.check_invariants:
                self._check_after("free", extent.index, space)
            self.store_space(extent.index, space)

    def free_segment(self, ref: SegmentRef) -> None:
        """Free a whole segment previously returned by :meth:`allocate`."""
        self.free(ref.first_page, ref.n_pages)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def free_pages(self) -> int:
        """Total free pages across all spaces (reads every directory)."""
        return sum(
            self.load_space(i).free_pages() for i in range(self.volume.n_spaces)
        )

    def space_of(self, page: PageId) -> int:
        """The index of the buddy space a physical page belongs to."""
        return self.volume.space_of_physical(page).index

    def free_summary(self) -> list[tuple[int, int]]:
        """Per-space ``(free_pages, max_free_segment_pages)``.

        The compaction planner uses this to order victim spaces: a space
        whose free pages dwarf its largest allocatable segment is the
        one whose free space most needs coalescing.  Reads every
        directory (through the buffer pool), like :meth:`free_pages`.
        """
        out: list[tuple[int, int]] = []
        for index in range(self.volume.n_spaces):
            space = self.load_space(index)
            max_type = space.max_free_type()
            largest = (1 << max_type) if space.free_pages() else 0
            out.append((space.free_pages(), largest))
        return out

    def verify(self) -> None:
        """Verify every space's directory (used by tests)."""
        for i in range(self.volume.n_spaces):
            self.load_space(i).verify()
