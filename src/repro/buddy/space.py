"""One buddy segment space: allocation, deallocation, splitting, coalescing.

This module implements Section 3's algorithms on top of the byte-encoded
allocation map:

* the **jump scan** of Section 3.1 — locating a free segment of size
  ``n`` by repeatedly stepping ``S = S + max(n, m)`` over segment starts,
  so only a handful of map bytes are examined rather than all of them;
* **splitting** — when no free segment of the requested type exists, the
  smallest larger one is "recursively split in half until a segment of
  the desired size is finally made up" (Section 3.2);
* **XOR coalescing** — on deallocation the buddy (address XOR size) is
  checked and merged iteratively, reproducing Figure 4's walkthrough;
* **any-size allocation** — a request for, say, 11 pages rounds up to a
  16-page segment whose prefix is marked as allocated segments 8+2+1 and
  whose 5-page remainder is freed as 1+4 (Figure 4.a/4.b); and
* **any-portion frees** — "a client may selectively free any portion of
  a previously allocated segment" (Figure 4.c), which requires breaking
  boundary-crossing segments into aligned pieces first.

The count array and the map are kept mutually consistent at every public
method boundary; :meth:`BuddySpace.verify` cross-checks them and is
exercised heavily by the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buddy.amap import AllocationMap, SegmentView
from repro.buddy.directory import (
    effective_max_type,
    max_segment_type,
    pack_directory,
    unpack_directory,
    validate_layout,
)
from repro.errors import BadSegment, DirectoryCorrupt, SegmentTooLarge
from repro.util.bitops import (
    aligned_run_decomposition,
    ceil_log2,
    floor_log2,
    power_of_two_decomposition,
    reverse_power_of_two_decomposition,
)


@dataclass
class ScanStats:
    """Instrumentation for the jump scan (how few bytes it really touches)."""

    scans: int = 0
    probes: int = 0

    @property
    def probes_per_scan(self) -> float:
        return self.probes / self.scans if self.scans else 0.0


class BuddySpace:
    """A buddy space: ``capacity`` pages of space-local addresses 0..capacity-1.

    The in-memory object corresponds 1:1 to a directory page;
    :meth:`to_page` / :meth:`from_page` round-trip it.  All algorithms
    operate on the allocation map *bytes*, as the paper's do.
    """

    def __init__(self, page_size: int, capacity: int) -> None:
        validate_layout(page_size, capacity)
        self.page_size = page_size
        self.capacity = capacity
        # The count array is sized by the page-size bound k (the paper's
        # "k+1 entries"); types above the capacity bound simply stay zero.
        self.k = max_segment_type(page_size)
        self.max_type = effective_max_type(page_size, capacity)
        self.counts = [0] * (self.k + 1)
        self.amap = AllocationMap(capacity)
        self.scan_stats = ScanStats()

    # ------------------------------------------------------------------
    # Construction / serialisation
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, page_size: int, capacity: int) -> "BuddySpace":
        """A fresh, fully free space.

        The free extent is laid down as a run of maximum-size segments
        plus an aligned decomposition of any remainder — the canonical
        form the coalescing rules preserve.
        """
        space = cls(page_size, capacity)
        max_size = 1 << space.max_type
        pos = 0
        while pos + max_size <= capacity:
            space.amap.set_segment(pos, max_size, allocated=False)
            space.counts[space.max_type] += 1
            pos += max_size
        for addr, size in aligned_run_decomposition(pos, capacity - pos):
            space.amap.set_segment(addr, size, allocated=False)
            space.counts[floor_log2(size)] += 1
        return space

    @classmethod
    def from_page(cls, page_size: int, image: bytes | bytearray) -> "BuddySpace":
        """Rebuild a space from its directory page."""
        capacity, counts, amap_bytes = unpack_directory(image)
        space = cls(page_size, capacity)
        if len(counts) != space.k + 1:
            raise DirectoryCorrupt(
                f"directory has {len(counts)} count entries, expected {space.k + 1}"
            )
        space.counts = counts
        space.amap = AllocationMap.from_bytes(amap_bytes, capacity)
        return space

    def to_page(self) -> bytearray:
        """Serialise this space into a directory page image."""
        return pack_directory(
            self.page_size, self.capacity, self.counts, self.amap.to_bytes()
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def max_segment_pages(self) -> int:
        """Largest segment this space can hand out, in pages."""
        return 1 << self.max_type

    def free_pages(self) -> int:
        """Total free pages, from the count array alone."""
        return sum(count << t for t, count in enumerate(self.counts))

    def max_free_type(self) -> int:
        """Largest type with a free segment, or -1 if the space is full."""
        for t in range(self.k, -1, -1):
            if self.counts[t]:
                return t
        return -1

    def can_allocate(self, n_pages: int) -> bool:
        """True if a contiguous run of ``n_pages`` is currently available."""
        if n_pages <= 0 or n_pages > self.max_segment_pages:
            return False
        needed = ceil_log2(n_pages)
        return any(self.counts[t] for t in range(needed, self.k + 1))

    # ------------------------------------------------------------------
    # The jump scan (Section 3.1)
    # ------------------------------------------------------------------

    def find_free(self, size_type: int) -> int:
        """Locate a free segment of type ``size_type`` by the jump scan.

        Precondition: ``counts[size_type] > 0``.  Starting at segment 0,
        if the segment at S has size m != n the scan "continues
        recursively at segment S = S + max(n, m)".  The count array
        guarantees termination; a corrupt directory raises.
        """
        n = 1 << size_type
        self.scan_stats.scans += 1
        s = 0
        while s < self.capacity:
            self.scan_stats.probes += 1
            seg = self.amap.segment_containing(s)
            if seg.start != s:
                # Landed inside a segment that started earlier: resume at
                # its end (cannot happen with aligned stepping, but keeps
                # the scan robust against any canonical map).
                s = seg.end
                continue
            if not seg.allocated and seg.size == n:
                return s
            s += max(n, seg.size)
        raise DirectoryCorrupt(
            f"count array promises a free segment of {n} pages but the scan "
            f"found none"
        )

    # ------------------------------------------------------------------
    # Power-of-two allocate / free (Section 3.2)
    # ------------------------------------------------------------------

    def _allocate_pow2(self, size_type: int) -> int | None:
        """Allocate a segment of exactly ``2**size_type`` pages.

        Returns its start address, or None if the space cannot satisfy
        the request (the caller moves on to another space).
        """
        if size_type > self.max_type:
            raise SegmentTooLarge(1 << size_type, self.max_segment_pages)
        if self.counts[size_type]:
            start = self.find_free(size_type)
            self.counts[size_type] -= 1
            self.amap.set_segment(start, 1 << size_type, allocated=True)
            return start
        # "Otherwise, we find smallest type j such that j > t and
        # count[j] > 0 ... which then is recursively split in half."
        for j in range(size_type + 1, self.k + 1):
            if self.counts[j]:
                break
        else:
            return None
        start = self.find_free(j)
        self.counts[j] -= 1
        block_size = 1 << j
        halves: list[tuple[int, int]] = []
        while j > size_type:
            j -= 1
            half = 1 << j
            halves.append((start + half, half))
            self.counts[j] += 1
        for addr, size in halves:
            if size >= 4:
                self.amap.set_segment(addr, size, allocated=False)
        if 1 << size_type >= 4:
            # All halves were >= 4 too; the block's quads are fully rewritten.
            self.amap.set_segment(start, 1 << size_type, allocated=True)
        elif block_size >= 4:
            # The quad containing `start` is owned entirely by this block:
            # it holds the allocated piece plus the size-1/2 free halves.
            # Compose its final bits in one write (the old byte is still
            # the block's large start byte, so set_small cannot be used).
            bits = 0
            for page in range(start, start + (1 << size_type)):
                bits |= 1 << (3 - page % 4)
            self.amap.write_quad_bits(start // 4, bits)
        else:
            # Splitting within one quad byte: it is already in bit form.
            for addr, size in halves:
                self.amap.set_segment(addr, size, allocated=False)
            self.amap.set_segment(start, 1 << size_type, allocated=True)
        return start

    def _free_pow2(self, start: int, size_type: int) -> None:
        """Free an aligned power-of-two piece, coalescing iteratively.

        "The buddy of a segment can easily be found by simply taking the
        exclusive OR of the segment address with its size"; merging
        repeats while the buddy is a free segment of equal size
        (Figure 4.c -> 4.d).
        """
        t = size_type
        size = 1 << t
        start_of_merged = start
        while t < self.max_type:
            buddy = start_of_merged ^ size
            if buddy + size > self.capacity:
                break
            if not self.amap.free_segment_at(buddy, size):
                break
            self.counts[t] -= 1
            start_of_merged = min(start_of_merged, buddy)
            t += 1
            size <<= 1
        self.amap.set_segment(start_of_merged, size, allocated=False)
        self.counts[t] += 1

    # ------------------------------------------------------------------
    # Any-size allocation (Figure 4.a/4.b)
    # ------------------------------------------------------------------

    def allocate(self, n_pages: int) -> int | None:
        """Allocate ``n_pages`` physically contiguous pages.

        The request is rounded up to ``2**j``; the prefix is marked as
        allocated segments following the binary decomposition of
        ``n_pages`` and the remainder is freed smallest-first, exactly as
        in the paper's 11-page example.  Returns the first page, or None
        if no ``2**j`` segment is available in this space.
        """
        if n_pages <= 0:
            raise ValueError(f"allocation size must be positive, got {n_pages}")
        if n_pages > self.max_segment_pages:
            raise SegmentTooLarge(n_pages, self.max_segment_pages)
        j = ceil_log2(n_pages)
        start = self._allocate_pow2(j)
        if start is None:
            return None
        if n_pages != 1 << j:
            self._carve(start, j, n_pages)
        return start

    def _carve(self, start: int, block_type: int, n_pages: int) -> None:
        """Rewrite an allocated ``2**block_type`` block as prefix+remainder."""
        block = 1 << block_type
        if block >= 4:
            self.amap.break_large(start)
        pos = start
        for piece in power_of_two_decomposition(n_pages):
            self.amap.set_segment(pos, piece, allocated=True)
            pos += piece
        for piece in reverse_power_of_two_decomposition(block - n_pages):
            # Remainder pieces cannot coalesce: their buddies lie in the
            # allocated prefix, and their sizes are pairwise distinct.
            self.amap.set_segment(pos, piece, allocated=False)
            self.counts[floor_log2(piece)] += 1
            pos += piece

    def allocate_up_to(self, n_pages: int) -> tuple[int, int] | None:
        """Allocate the largest available contiguous run, at most ``n_pages``.

        Used by the large object manager when a space is too fragmented
        for the full request: the object continues in another segment.
        Returns ``(start, pages)`` or None if the space is full.
        """
        if n_pages <= 0:
            raise ValueError(f"allocation size must be positive, got {n_pages}")
        n_pages = min(n_pages, self.max_segment_pages)
        if self.can_allocate(n_pages):
            start = self.allocate(n_pages)
            if start is not None:
                return start, n_pages
        best = self.max_free_type()
        if best < 0:
            return None
        # The whole 2**best segment is smaller than the request: hand it
        # out intact (no carve needed).
        take = min(1 << best, n_pages)
        start = self.allocate(take)
        if start is None:
            return None
        return start, take

    # ------------------------------------------------------------------
    # Any-portion frees (Figure 4.c)
    # ------------------------------------------------------------------

    def free(self, start: int, n_pages: int) -> None:
        """Free any currently allocated run of pages.

        "A client may selectively free any portion of a previously
        allocated segment, not necessarily the whole segment."  Segments
        crossing the range boundaries are first rewritten as aligned
        allocated pieces; then every piece inside the range is freed
        through the coalescing path.
        """
        if n_pages <= 0:
            raise ValueError(f"free size must be positive, got {n_pages}")
        end = start + n_pages
        if start < 0 or end > self.capacity:
            raise BadSegment(
                f"free of [{start}, {end}) outside buddy space of "
                f"{self.capacity} pages"
            )
        self._split_at(start)
        self._split_at(end)
        pos = start
        while pos < end:
            seg = self.amap.segment_containing(pos)
            if not seg.allocated:
                raise BadSegment(f"page {pos} is already free")
            if seg.start != pos or seg.end > end:
                raise DirectoryCorrupt(
                    f"boundary split left a crossing segment at page {seg.start}"
                )
            next_pos = seg.end
            self._free_pow2(pos, floor_log2(seg.size))
            pos = next_pos

    def _split_at(self, boundary: int) -> None:
        """Ensure no allocated segment crosses ``boundary``.

        Small allocated segments are per-page in the map and cannot
        cross; a large one is dissolved and rewritten as two aligned
        decompositions meeting at the boundary (count-neutral: all
        pieces stay allocated).
        """
        if boundary <= 0 or boundary >= self.capacity:
            return
        seg = self.amap.segment_containing(boundary)
        if seg.start == boundary:
            return
        if not seg.allocated:
            raise BadSegment(
                f"free range boundary {boundary} falls inside the free "
                f"segment at page {seg.start}"
            )
        if seg.size < 4:
            return  # per-page representation; nothing crosses
        self.amap.break_large(seg.start)
        left = aligned_run_decomposition(seg.start, boundary - seg.start)
        right = aligned_run_decomposition(boundary, seg.end - boundary)
        for addr, size in [*left, *right]:
            self.amap.set_segment(addr, size, allocated=True)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self) -> list[SegmentView]:
        """Check map well-formedness and count-array consistency.

        Returns the decoded segment list so callers can assert further
        properties.  Raises :class:`DirectoryCorrupt` on any violation.
        """
        segments = self.amap.decode()
        self.amap.check(max_segment_size=self.max_segment_pages)
        recounted = [0] * (self.k + 1)
        covered = 0
        for seg in segments:
            if seg.start != covered:
                raise DirectoryCorrupt(
                    f"segment gap/overlap at page {covered} (next segment "
                    f"starts at {seg.start})"
                )
            covered = seg.end
            if not seg.allocated:
                recounted[floor_log2(seg.size)] += 1
        if covered != self.capacity:
            raise DirectoryCorrupt(
                f"segments cover {covered} pages, capacity is {self.capacity}"
            )
        if recounted != self.counts:
            raise DirectoryCorrupt(
                f"count array {self.counts} disagrees with map {recounted}"
            )
        return segments
