"""Space-utilization and fragmentation metrics for the buddy system.

Used by experiment E8, which tests the paper's response to [Selt91]'s
finding that the buddy policy "is prone to severe internal
fragmentation": because EOS trims every allocation down to page
precision, "the unused portion of an allocated segment is always less
than a page".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.buddy.amap import SegmentView
from repro.buddy.space import BuddySpace
from repro.util.bitops import ceil_log2


@dataclass(frozen=True)
class SpaceUsage:
    """A summary of one buddy space's allocation state."""

    capacity: int
    free_pages: int
    allocated_pages: int
    free_segments: int
    allocated_runs: int
    largest_free: int

    @property
    def fill_ratio(self) -> float:
        """Fraction of the space handed out to clients."""
        return self.allocated_pages / self.capacity if self.capacity else 0.0

    @property
    def external_fragmentation(self) -> float:
        """1 - largest_free/free_pages: 0 when all free space is one run."""
        if self.free_pages == 0:
            return 0.0
        return 1.0 - self.largest_free / self.free_pages


def space_usage(space: BuddySpace) -> SpaceUsage:
    """Compute usage metrics from a (verified) space."""
    segments = space.verify()
    free_pages = 0
    free_segments = 0
    allocated_pages = 0
    allocated_runs = 0
    largest_free = 0
    previous_allocated = False
    for seg in segments:
        if seg.allocated:
            allocated_pages += seg.size
            if not previous_allocated:
                allocated_runs += 1
            previous_allocated = True
        else:
            free_pages += seg.size
            free_segments += 1
            largest_free = max(largest_free, seg.size)
            previous_allocated = False
    return SpaceUsage(
        capacity=space.capacity,
        free_pages=free_pages,
        allocated_pages=allocated_pages,
        free_segments=free_segments,
        allocated_runs=allocated_runs,
        largest_free=largest_free,
    )


def free_extents(segments: Iterable[SegmentView]) -> list[tuple[int, int]]:
    """Maximal free extents over a canonical segment list, as (start, pages).

    Adjacent free *segments* of different sizes are legal buddy state
    (freeing part of a segment leaves its remainder decomposed into
    buddy-aligned pieces), but a disk head does not care about segment
    boundaries — fragmentation metrics must merge them.  The input is
    what :meth:`~repro.buddy.amap.AllocationMap.decode` returns:
    left-to-right, non-overlapping segments.
    """
    extents: list[tuple[int, int]] = []
    for seg in segments:
        if seg.allocated:
            continue
        if extents and extents[-1][0] + extents[-1][1] == seg.start:
            start, size = extents[-1]
            extents[-1] = (start, size + seg.size)
        else:
            extents.append((seg.start, seg.size))
    return extents


def extent_size_histogram(sizes: Iterable[int]) -> dict[int, int]:
    """Counts of extents per power-of-two bucket, keyed by upper bound.

    Key ``b`` counts extents with ``b/2 < pages <= b`` — upper-inclusive,
    the shape Prometheus ``le`` labels expect.  Keys ascend.
    """
    histogram: dict[int, int] = {}
    for size in sizes:
        if size <= 0:
            raise ValueError(f"extent size must be positive, got {size}")
        bucket = 1 << ceil_log2(size)
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return dict(sorted(histogram.items()))


def internal_waste_pages(requested_pages: int, granted_pages: int) -> int:
    """Pages granted beyond the request — the buddy-rounding waste.

    With EOS's page-precision carve this is always zero; a classic
    power-of-two buddy system wastes ``next_pow2(n) - n`` pages, ~25 % on
    average over uniformly distributed request sizes.
    """
    if granted_pages < requested_pages:
        raise ValueError(
            f"granted {granted_pages} pages for a {requested_pages}-page request"
        )
    return granted_pages - requested_pages
