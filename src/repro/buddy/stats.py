"""Space-utilization and fragmentation metrics for the buddy system.

Used by experiment E8, which tests the paper's response to [Selt91]'s
finding that the buddy policy "is prone to severe internal
fragmentation": because EOS trims every allocation down to page
precision, "the unused portion of an allocated segment is always less
than a page".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buddy.space import BuddySpace


@dataclass(frozen=True)
class SpaceUsage:
    """A summary of one buddy space's allocation state."""

    capacity: int
    free_pages: int
    allocated_pages: int
    free_segments: int
    allocated_runs: int
    largest_free: int

    @property
    def fill_ratio(self) -> float:
        """Fraction of the space handed out to clients."""
        return self.allocated_pages / self.capacity if self.capacity else 0.0

    @property
    def external_fragmentation(self) -> float:
        """1 - largest_free/free_pages: 0 when all free space is one run."""
        if self.free_pages == 0:
            return 0.0
        return 1.0 - self.largest_free / self.free_pages


def space_usage(space: BuddySpace) -> SpaceUsage:
    """Compute usage metrics from a (verified) space."""
    segments = space.verify()
    free_pages = 0
    free_segments = 0
    allocated_pages = 0
    allocated_runs = 0
    largest_free = 0
    previous_allocated = False
    for seg in segments:
        if seg.allocated:
            allocated_pages += seg.size
            if not previous_allocated:
                allocated_runs += 1
            previous_allocated = True
        else:
            free_pages += seg.size
            free_segments += 1
            largest_free = max(largest_free, seg.size)
            previous_allocated = False
    return SpaceUsage(
        capacity=space.capacity,
        free_pages=free_pages,
        allocated_pages=allocated_pages,
        free_segments=free_segments,
        allocated_runs=allocated_runs,
        largest_free=largest_free,
    )


def internal_waste_pages(requested_pages: int, granted_pages: int) -> int:
    """Pages granted beyond the request — the buddy-rounding waste.

    With EOS's page-precision carve this is always zero; a classic
    power-of-two buddy system wastes ``next_pow2(n) - n`` pages, ~25 % on
    average over uniformly distributed request sizes.
    """
    if granted_pages < requested_pages:
        raise ValueError(
            f"granted {granted_pages} pages for a {requested_pages}-page request"
        )
    return granted_pages - requested_pages
