"""Index nodes of the positional tree (paper Section 4, Figure 5).

"Each node N of the tree contains a sequence of (c[i], p[i]) pairs, one
for each child of N ... The number of bytes stored in the subtree rooted
at p[i] is c[i] - c[i-1]."  The serialized form stores the cumulative
counts exactly as the paper describes; in memory we keep the *per-child*
byte counts, which make structural edits (splice, split, merge, rotate)
plain list operations, and reconstitute the cumulative form on demand
for binary search and for serialization.

A node at ``level == 0`` points to leaf segments: each entry carries the
segment's first (physical) page and its allocated page count — "the
address and size of each segment are stored in the corresponding parent
index nodes" (Section 4.3.2), which is what lets whole subtrees be
deleted without touching a single leaf page.  Nodes at higher levels
point to child index pages (``pages`` is 0 there).

Serialized page layout::

    offset 0   u8   level (0 = children are leaf segments)
    offset 1   u16  number of entries
    offset 3   u64  LSN (meaningful on root pages; see Section 4.5)
    offset 11  entries: u64 cumulative count, u32 child page, u16 pages
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import TreeCorrupt

_HEADER = struct.Struct("<BHQ")
_ENTRY = struct.Struct("<QIH")

HEADER_SIZE = _HEADER.size  # 11
ENTRY_SIZE = _ENTRY.size  # 14


def fanout(page_size: int) -> int:
    """Maximum entries an index node of one page can hold."""
    n = (page_size - HEADER_SIZE) // ENTRY_SIZE
    if n < 4:
        raise ValueError(
            f"page size {page_size} holds only {n} index entries; need >= 4"
        )
    return n


def min_entries(page_size: int) -> int:
    """B-tree occupancy floor: internal nodes are at least half full."""
    return fanout(page_size) // 2


@dataclass
class Entry:
    """One (count, pointer) pair, held with its per-child byte count."""

    count: int  # bytes stored in the subtree / segment
    child: int  # child index page (level >= 1) or segment first page (level 0)
    pages: int = 0  # segment page count (level 0 only)

    def copy(self) -> "Entry":
        """A detached copy of this entry."""
        return Entry(self.count, self.child, self.pages)


class Node:
    """An index node: a level tag and a list of entries."""

    __slots__ = ("level", "entries", "lsn")

    def __init__(self, level: int, entries: list[Entry] | None = None, lsn: int = 0):
        self.level = level
        self.entries: list[Entry] = entries if entries is not None else []
        self.lsn = lsn

    # -- derived ------------------------------------------------------------

    @property
    def is_leaf_parent(self) -> bool:
        return self.level == 0

    @property
    def total_bytes(self) -> int:
        """Total bytes stored below this node (the paper's rightmost c[i])."""
        return sum(e.count for e in self.entries)

    def cumulative(self) -> list[int]:
        """The paper's c[] array: cumulative byte counts."""
        out = []
        running = 0
        for entry in self.entries:
            running += entry.count
            out.append(running)
        return out

    def find_child(self, byte: int) -> tuple[int, int]:
        """Binary-search for the child holding ``byte``.

        "Binary search S to find the smallest c[i] such that c[i] > B.
        Set B = B - c[i-1]" (Section 4.2).  Returns ``(i, local_byte)``.
        ``byte`` may equal the total (the append position), which maps to
        one past the end of the last child: ``(len-1, count_of_last)``.
        """
        if not self.entries:
            raise TreeCorrupt("find_child on an empty node")
        cum = self.cumulative()
        if byte == cum[-1]:
            return len(self.entries) - 1, self.entries[-1].count
        if byte < 0 or byte > cum[-1]:
            raise TreeCorrupt(f"byte {byte} outside node holding {cum[-1]} bytes")
        i = bisect_right(cum, byte)
        prev = cum[i - 1] if i else 0
        return i, byte - prev

    def child_offset(self, index: int) -> int:
        """Byte offset of child ``index``'s first byte within this node."""
        return sum(e.count for e in self.entries[:index])

    # -- serialization --------------------------------------------------------

    def to_page(self, page_size: int) -> bytearray:
        """Serialise to a page image, converting counts to cumulative form."""
        image = bytearray(page_size)
        if HEADER_SIZE + len(self.entries) * ENTRY_SIZE > page_size:
            raise TreeCorrupt(
                f"{len(self.entries)} entries do not fit in a {page_size}-byte page"
            )
        _HEADER.pack_into(image, 0, self.level, len(self.entries), self.lsn)
        offset = HEADER_SIZE
        running = 0
        for entry in self.entries:
            running += entry.count
            _ENTRY.pack_into(image, offset, running, entry.child, entry.pages)
            offset += ENTRY_SIZE
        return image

    @classmethod
    def from_page(cls, image: bytes | bytearray) -> "Node":
        level, n, lsn = _HEADER.unpack_from(image, 0)
        entries = []
        offset = HEADER_SIZE
        previous = 0
        for _ in range(n):
            cum, child, pages = _ENTRY.unpack_from(image, offset)
            if cum < previous:
                raise TreeCorrupt("cumulative counts are not non-decreasing")
            entries.append(Entry(cum - previous, child, pages))
            previous = cum
            offset += ENTRY_SIZE
        return cls(level, entries, lsn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "seg" if self.level == 0 else "pg"
        inner = ", ".join(
            f"({e.count}b {kind}{e.child}" + (f"x{e.pages})" if self.level == 0 else ")")
            for e in self.entries
        )
        return f"Node(level={self.level}, [{inner}])"
