"""Byte insertion at an arbitrary position (paper Section 4.3.1 + 4.4).

The algorithm, step by step as published:

1. traverse the tree to the segment S containing the target byte;
2. *preparation* — compute the page P, the in-page offset Pb, and the
   conceptual three-way split: left remainder L (the prefix of S up to
   Pb), new segment N (the inserted bytes followed by P's bytes right of
   Pb), and right remainder R (S's pages after P);
3. *reshuffle* — the byte/page reshuffling of
   :mod:`repro.core.reshuffle`, governed by the segment-size threshold;
4. read the one or two (more, under page reshuffling) pages of S whose
   bytes move into N, allocate N, fill it "in proper order", write it;
5. fix the parent "so that it includes a pair for each of the segments
   L, N, and R whose size is not zero", splitting and propagating counts
   up to the root.

Existing leaf pages are never overwritten (Section 4.5): L and R remain
as untouched prefix/suffix page runs of S, N is written to freshly
allocated pages, and the pages of S that N consumed are returned to the
buddy system — which is possible at single-page precision because frees
of "any portion of a previously allocated segment" are supported.

The adaptive-threshold extension ([Bili91a]) kicks in before step 5:
if adding N's entries would split the parent index node, adjacent unsafe
segments in that node are first coalesced into single larger segments.
"""

from __future__ import annotations

from repro.buddy.manager import BuddyManager
from repro.core.append import append as append_op
from repro.core.append import trim
from repro.core.node import Entry
from repro.core.reshuffle import plan_reshuffle
from repro.core.segio import SegmentIO, allocate_and_write
from repro.core.threshold import ThresholdPolicy, find_unsafe_runs
from repro.core.tree import LargeObjectTree
from repro.errors import ByteRangeError, TreeCorrupt


def insert(
    tree: LargeObjectTree,
    segio: SegmentIO,
    buddy: BuddyManager,
    offset: int,
    data: bytes,
    *,
    policy: ThresholdPolicy | None = None,
    log=None,
) -> None:
    """Insert ``data`` so its first byte lands at byte ``offset``."""
    size = tree.size()
    if offset < 0 or offset > size:
        raise ByteRangeError(offset, len(data), size)
    if not data:
        return
    if offset == size:
        # Inserting at the very end is an append (and benefits from the
        # append path's tail-filling instead of segment splitting).
        append_op(tree, segio, buddy, data, log=log)
        return
    policy = policy or ThresholdPolicy(tree.config.threshold, tree.config.adaptive_threshold)
    trim(tree, buddy)  # the page arithmetic below assumes no spare pages

    ps = segio.page_size
    path, local = tree.descend(offset)
    step = path[-1]
    entry = step.node.entries[step.index]
    seg_lo = offset - local  # global byte offset where segment S starts
    s_c, s_pages, s_first = entry.count, entry.pages, entry.child

    # ---- Step 2: preparation ------------------------------------------------
    b = local
    p = b // ps  # the page of S holding byte b
    pb = b % ps  # insertion offset within that page
    p_c = ps if p < s_pages - 1 else s_c - p * ps  # bytes stored in page P
    l0 = p * ps + pb
    r0 = max(0, s_c - (p + 1) * ps)
    n0 = len(data) + (p_c - pb)

    # ---- Step 3: reshuffle ----------------------------------------------------
    fill = len(step.node.entries) / tree.fanout
    plan = plan_reshuffle(
        l0,
        n0,
        r0,
        page_size=ps,
        threshold=policy.effective(fill),
        max_segment_pages=buddy.max_segment_pages,
    )

    # ---- Step 4: read movers, compose and write N ---------------------------
    # N = S[l_c : l0]  +  data  +  S[b : p*ps + p_c]  +  S[(p+1)*ps : +took_r]
    r_take_pages = _taken_pages(plan.took_from_r, r0, ps)
    read_lo_page = plan.l_bytes // ps if plan.took_from_l else p
    read_hi_page = p + r_take_pages
    span, base = segio.read_span(s_first, read_lo_page, read_hi_page)
    prefix = span[plan.l_bytes - base : l0 - base]
    p_right = span[b - base : p * ps + p_c - base]
    r_head = span[(p + 1) * ps - base : (p + 1) * ps + plan.took_from_r - base]
    n_content = prefix + data + p_right + r_head
    if len(n_content) != plan.n_bytes:
        raise TreeCorrupt(
            f"assembled {len(n_content)} bytes for N, plan says {plan.n_bytes}"
        )
    n_segments = allocate_and_write(segio, buddy, n_content)

    # ---- Free the pages of S that L and R no longer cover -------------------
    l_keep = -(-plan.l_bytes // ps)  # ceil: pages L retains
    if plan.r_bytes:
        r_start = p + 1 + r_take_pages
    else:
        r_start = s_pages
    if r_start > l_keep:
        buddy.free(s_first + l_keep, r_start - l_keep)

    # ---- Step 5: fix the parent ----------------------------------------------
    new_entries: list[Entry] = []
    if plan.l_bytes:
        new_entries.append(Entry(plan.l_bytes, s_first, l_keep))
    new_entries.extend(Entry(count, ref.first_page, ref.n_pages) for ref, count in n_segments)
    if plan.r_bytes:
        new_entries.append(Entry(plan.r_bytes, s_first + r_start, s_pages - r_start))

    if tree.config.adaptive_threshold:
        added = len(new_entries) - 1
        if added > 0 and len(step.node.entries) + added > tree.fanout:
            node_lo = seg_lo - step.node.child_offset(step.index)
            _coalesce_unsafe(
                tree, segio, buddy, node_lo, policy.effective(fill),
                skip_child=s_first,
            )
            # The tree may have been restructured; locate S again.
            path, local = tree.descend(offset)
            step = path[-1]
            seg_lo = offset - local

    dropped = tree.replace_leaf_range(seg_lo, seg_lo + s_c, new_entries)
    if len(dropped) != 1 or dropped[0].child != s_first:
        raise TreeCorrupt(f"insert replaced unexpected entries: {dropped}")


def _taken_pages(took_from_r: int, r0: int, page_size: int) -> int:
    """Pages removed from R's head (its partial tail page only moves when
    R is absorbed entirely)."""
    if took_from_r == 0:
        return 0
    if took_from_r == r0:
        return -(-r0 // page_size)
    return took_from_r // page_size


def _coalesce_unsafe(
    tree: LargeObjectTree,
    segio: SegmentIO,
    buddy: BuddyManager,
    node_lo: int,
    threshold: int,
    *,
    skip_child: int,
) -> None:
    """[Bili91a]: before splitting a parent, merge its adjacent unsafe
    segments ("a single larger segment is allocated to accommodate this
    group of unsafe adjacent segments")."""
    path, _ = tree.descend(node_lo)
    node = path[-1].node
    runs = find_unsafe_runs(node.entries, threshold, segio.page_size)
    # Work right-to-left so earlier offsets stay valid.
    for start, end in reversed(runs):
        entries = node.entries[start:end]
        if any(e.child == skip_child for e in entries):
            continue
        total = sum(e.count for e in entries)
        if -(-total // segio.page_size) > buddy.max_segment_pages:
            continue
        run_lo = node_lo + node.child_offset(start)
        data = b"".join(
            segio.read_bytes(e.child, 0, e.count) for e in entries
        )
        merged = allocate_and_write(segio, buddy, data)
        new_entries = [Entry(c, ref.first_page, ref.n_pages) for ref, c in merged]
        dropped = tree.replace_leaf_range(run_lo, run_lo + total, new_entries)
        for e in dropped:
            buddy.free(e.child, e.pages)
