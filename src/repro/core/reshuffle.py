"""Byte and page reshuffling (paper Sections 4.3 step 3 and 4.4).

Every insert or partial delete conceptually splits a segment into three:
the left remainder ``L``, a brand-new segment ``N`` (holding the
inserted bytes or the surviving tail of the last deleted page), and the
right remainder ``R``.  Before ``N`` is written, bytes (and, under the
segment-size threshold, whole pages) are moved between the three to
avoid stranding almost-empty pages and undersized segments.

The planner works purely on byte counts; the executors translate its
output into page reads and writes.  Movement rules (and why):

* Bytes leave **L only from its tail** — L keeps a prefix of the
  original segment, so its remaining bytes stay page-aligned and only
  its (new) last page may be partial.  Any byte amount is legal.
* Bytes leave **R only from its head in whole pages, or entirely** — R
  must keep starting on a page boundary ("there are no holes in each
  segment").  The byte-reshuffle step may absorb R only when "there is
  exactly one page in R" (the paper's rule); the page-reshuffle step
  moves whole head pages.
* ``N`` is rewritten from scratch regardless, so it can absorb anything.

``plan_reshuffle`` implements, in order:

1. the **page-reshuffle loop** of Section 4.4 (steps 3.1-3.3), governed
   by the threshold T: unsafe neighbours (0 < size < T pages) are merged
   into N, and N itself is topped up with whole pages from the smaller
   neighbour until safe;
2. the **byte-reshuffle** of Section 4.3.1 step 3: eliminating the
   partial last page of L and/or a single-page R when their bytes fit in
   N's last page, then balancing the free space between the last pages
   of L and N.

With ``threshold=1`` step 1 degenerates (every nonempty segment is safe)
and the planner reproduces the basic algorithms of Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.bitops import ceil_div


def pages_of(byte_count: int, page_size: int) -> int:
    """Pages needed for ``byte_count`` bytes (0 for an empty segment)."""
    return ceil_div(byte_count, page_size)


def last_page_bytes(byte_count: int, page_size: int) -> int:
    """Bytes in the last page: the paper's S_m.  0 for an empty segment."""
    if byte_count == 0:
        return 0
    rem = byte_count % page_size
    return rem if rem else page_size


@dataclass(frozen=True)
class ReshufflePlan:
    """Final byte counts after reshuffling, plus audit fields."""

    l_bytes: int
    n_bytes: int
    r_bytes: int
    # Audit: how the totals moved (executors derive reads from these).
    took_from_l: int  # bytes moved off L's tail into N's head
    took_from_r: int  # bytes moved off R's head into N's tail
    page_reshuffles: int  # iterations of the 3.2/3.3 loop that moved pages

    @property
    def total(self) -> int:
        return self.l_bytes + self.n_bytes + self.r_bytes


def plan_reshuffle(
    l0: int,
    n0: int,
    r0: int,
    *,
    page_size: int,
    threshold: int = 1,
    max_segment_pages: int,
) -> ReshufflePlan:
    """Plan byte/page reshuffling for segments of ``l0``/``n0``/``r0`` bytes.

    ``threshold`` is the segment-size threshold T in pages; 1 disables
    page reshuffling.  ``max_segment_pages`` bounds how large N may grow
    through merging (condition 3.1.c).
    """
    if min(l0, n0, r0) < 0:
        raise ValueError(f"negative segment sizes: {l0}, {n0}, {r0}")
    ps = page_size
    max_bytes = max_segment_pages * ps
    l, n, r = l0, n0, r0
    page_reshuffles = 0

    def unsafe(c: int) -> bool:
        # "A segment S is unsafe if its size is greater than zero and
        # less than T pages."
        return 0 < pages_of(c, ps) < threshold

    # The byte phase can occasionally re-create an unsafe neighbour (e.g.
    # eliminating L's partial last page drops L below T), so the two
    # phases iterate to a fixpoint; this preserves the Section 4.4
    # constraint that adjacent segments below T never persist when they
    # could be stored together.  Convergence is fast: every page-phase
    # action empties or grows a segment, and the byte-phase balance halves
    # the free-space difference each pass.
    for _ in range(8):
        before = (l, n, r)
        l, n, r, page_reshuffles = _page_phase(
            l, n, r, ps, threshold, max_bytes, unsafe, page_reshuffles
        )
        l, n, r = _byte_phase(l, n, r, ps)
        if (l, n, r) == before:
            break

    plan = ReshufflePlan(
        l_bytes=l,
        n_bytes=n,
        r_bytes=r,
        took_from_l=l0 - l,
        took_from_r=r0 - r,
        page_reshuffles=page_reshuffles,
    )
    assert plan.total == l0 + n0 + r0, "reshuffle must conserve bytes"
    assert plan.took_from_l >= 0 and plan.took_from_r >= 0
    # R may only shrink from its head in whole pages, or vanish.
    assert plan.r_bytes == 0 or (r0 - plan.r_bytes) % ps == 0, (
        "R must keep starting on a page boundary"
    )
    return plan


def _page_phase(
    l: int,
    n: int,
    r: int,
    ps: int,
    threshold: int,
    max_bytes: int,
    unsafe,
    page_reshuffles: int,
) -> tuple[int, int, int, int]:
    """Steps 3.1-3.3: merge/top-up whole pages under the threshold."""
    while n > 0:
        l_unsafe, r_unsafe, n_unsafe = unsafe(l), unsafe(r), unsafe(n)
        # 3.1.a: all three segments safe.
        if not (l_unsafe or r_unsafe or n_unsafe):
            break
        # 3.1.b: L and R both empty.
        if l == 0 and r == 0:
            break
        # 3.1.c: a neighbour is unsafe but merging even the smallest one
        # would overflow the maximum segment size.
        if l_unsafe or r_unsafe:
            smallest = min(c for c, u in ((l, l_unsafe), (r, r_unsafe)) if u)
            if smallest + n > max_bytes:
                break
        # 3.2: merge the smaller unsafe neighbour into N outright.
        if l_unsafe or r_unsafe:
            candidates = []
            if l_unsafe and l + n <= max_bytes:
                candidates.append(("l", l))
            if r_unsafe and r + n <= max_bytes:
                candidates.append(("r", r))
            if not candidates:
                break
            which, amount = min(candidates, key=lambda c: c[1])
            if which == "l":
                l = 0
            else:
                r = 0
            n += amount
            page_reshuffles += 1
            continue
        # 3.3: N itself is unsafe; top it up with whole pages from the
        # smaller nonempty neighbour.
        if n_unsafe:
            donors = [(c, name) for c, name in ((l, "l"), (r, "r")) if c > 0]
            if not donors:
                break
            amount, which = min(donors)
            if which == "l":
                # Taking j tail pages from L moves its partial last page
                # plus j-1 full pages.
                l_m = last_page_bytes(l, ps)
                needed = threshold - pages_of(n + l_m, ps) + 1
                j = max(1, needed)
                j = min(j, pages_of(l, ps))
                moved = l_m + (j - 1) * ps
                while j > 1 and n + moved > max_bytes:
                    j -= 1
                    moved = l_m + (j - 1) * ps
                if n + moved > max_bytes:
                    break
                l -= moved
                n += moved
            else:
                # Taking j head pages from R moves j full pages; taking
                # every page means absorbing R entirely.
                needed = threshold - pages_of(n, ps)
                j = max(1, needed)
                j = min(j, pages_of(r, ps))
                moved = r if j >= pages_of(r, ps) else j * ps
                while j > 1 and n + moved > max_bytes:
                    j -= 1
                    moved = j * ps
                if n + moved > max_bytes:
                    break
                r -= moved
                n += moved
            page_reshuffles += 1
            continue
        break
    return l, n, r, page_reshuffles


def plan_segmentation(
    total_bytes: int,
    *,
    page_size: int,
    threshold: int = 1,
    max_segment_pages: int,
) -> list[int]:
    """Byte counts per segment for a wholesale rewrite of an object.

    The compactor rewrites an object front to back into maximum-size
    segments plus a remainder.  The remainder must obey the same
    T-threshold legality rule the reshuffle planner enforces for edits:
    no segment may end up *unsafe* (0 < pages < T).  When the natural
    tail would be unsafe, pages are borrowed from the previous full
    segment so both finish at or above T — the wholesale analogue of
    step 3.3's top-up.

    Byte counts are exact: every segment but the last is page-aligned,
    so the executor allocates ``ceil(bytes / page_size)`` pages per
    segment with no spare pages to trim.
    """
    if total_bytes < 0:
        raise ValueError(f"negative object size: {total_bytes}")
    if total_bytes == 0:
        return []
    ps = page_size
    max_bytes = max_segment_pages * ps
    counts: list[int] = []
    remaining = total_bytes
    while remaining > max_bytes:
        counts.append(max_bytes)
        remaining -= max_bytes
    counts.append(remaining)
    tail_pages = pages_of(counts[-1], ps)
    if len(counts) > 1 and 0 < tail_pages < threshold:
        # Borrow whole pages off the previous segment's tail so the last
        # segment reaches T.  The donor stays safe: it held
        # max_segment_pages and T is far below the maximum by
        # construction (the planner's 3.1.c bound).
        borrow = min(threshold - tail_pages, pages_of(counts[-2], ps) - threshold)
        if borrow > 0:
            counts[-2] -= borrow * ps
            counts[-1] += borrow * ps
    assert sum(counts) == total_bytes, "segmentation must conserve bytes"
    return counts


def _byte_phase(l: int, n: int, r: int, ps: int) -> tuple[int, int, int]:
    """Section 4.3.1 step 3: eliminate partial pages, balance free space."""
    n_m = last_page_bytes(n, ps)
    if n > 0 and n_m != ps:
        l_m = last_page_bytes(l, ps)
        r_pages = pages_of(r, ps)
        # "If there is exactly one page in R and the R_c and N_m bytes can
        # fit in a single page, the R_c bytes become candidates..."
        r_candidate = r_pages == 1 and r + n_m <= ps
        # "If the number of bytes L_m ... and the N_m bytes can fit in a
        # single page, then the L_m bytes become candidates..."
        l_candidate = l > 0 and l_m + n_m <= ps
        if l_candidate and r_candidate:
            if l_m + r + n_m <= ps:
                # "If both groups ... can be moved to N without overflowing
                # the last page of N then move both."
                n += l_m + r
                l -= l_m
                r = 0
            elif ps - l_m >= ps - r:
                # "Otherwise, take the group that is in the segment with
                # the largest free space."
                l -= l_m
                n += l_m
            else:
                n += r
                r = 0
        elif l_candidate:
            l -= l_m
            n += l_m
        elif r_candidate:
            n += r
            r = 0
        # "If after these operations there is free space at the last page
        # of L, take as many bytes as necessary from L so that the last
        # page of L and the last page of N will have similar amount of
        # free space."
        l_m = last_page_bytes(l, ps)
        n_m = last_page_bytes(n, ps)
        if l > 0 and l_m < ps and n_m < ps and l_m > n_m:
            x = (l_m - n_m) // 2
            x = min(x, ps - n_m, l_m - 1)  # never empty L's last page here
            if x > 0:
                l -= x
                n += x
    return l, n, r
