"""Configuration of the large object manager.

Most knobs correspond to explicit levers in the paper:

* ``threshold`` — the segment-size threshold T of Section 4.4: "it can
  not be the case that a number of bytes are kept in two (logically)
  adjacent segments, one of which has less than T pages, if they can be
  stored in one."  ``threshold=1`` disables page reshuffling (every
  nonempty segment is safe), reproducing the basic algorithms of
  Section 4.3.
* ``initial_growth_pages`` / doubling — the unknown-size append policy of
  Section 4.1 (borrowed from Starburst): "successive segments allocated
  for storage double in size until the maximum segment size is reached."
* ``max_root_bytes`` — footnote 3: "clients may pass a parameter to EOS
  restricting the maximum size of the root to some given number of
  bytes", e.g. to embed the root in a field of a small object.
* ``adaptive_threshold`` — the [Bili91a] extension sketched at the end of
  Section 4.4: when the parent index node is about to split, logically
  adjacent unsafe segments are coalesced into one larger segment instead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EOSConfig:
    """Tunables for one large object manager instance."""

    page_size: int = 4096
    # Segment-size threshold T, in pages (Section 4.4).  1 = no page
    # reshuffling; the paper discusses 4, 16 and 64.
    threshold: int = 8
    # First segment allocated for an object of unknown eventual size.
    initial_growth_pages: int = 1
    # Optional cap on the root node's size in bytes (footnote 3).
    max_root_bytes: int | None = None
    # [Bili91a] extension: coalesce adjacent unsafe segments when the
    # parent index node would otherwise split.
    adaptive_threshold: bool = False
    # Copy-on-write versioning (repro.versions): every committed
    # mutation publishes a new persistent root, chained in the page-0
    # catalog; readers resolve old versions lock-free.
    versioning: bool = False
    # How many committed versions per object the reclaimer retains
    # (the latest version never expires; must be >= 1).
    version_retain: int = 8
    # Debug-mode runtime sanitizers (see repro.analysis).  Off by
    # default: they cost a stack capture per pin / a directory
    # revalidation per alloc-free.  The EOS_SANITIZE environment
    # variable enables them globally regardless of these flags.
    sanitize_pins: bool = False
    sanitize_locks: bool = False
    sanitize_buddy: bool = False
    # Thread-confinement sanitizer (EOS008's runtime twin): a shard
    # claims its pool/buddy and any other thread touching them raises.
    # Not part of EOS_SANITIZE=all; see repro.analysis.confine.
    sanitize_confinement: bool = False

    def __post_init__(self) -> None:
        if self.page_size < 32:
            raise ValueError(f"page size too small: {self.page_size}")
        if self.threshold < 1:
            raise ValueError(
                f"threshold is a page count >= 1, got {self.threshold}"
            )
        if self.initial_growth_pages < 1:
            raise ValueError(
                f"initial growth must be >= 1 page, got {self.initial_growth_pages}"
            )
        if self.version_retain < 1:
            raise ValueError(
                f"version_retain must be >= 1, got {self.version_retain}"
            )
