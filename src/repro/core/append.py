"""Append and create (paper Section 4.1).

Two allocation regimes, exactly as the paper describes:

* **Known eventual size** — the size hint "is provided as a hint to the
  large object manager who allocates a segment just large enough to hold
  the entire object"; objects above the maximum segment size get "a
  sequence of maximum size segments".
* **Unknown eventual size** — the growth scheme borrowed from Starburst
  [Lehm89]: "successive segments allocated for storage double in size
  until the maximum segment size is reached", after which maximum-size
  segments repeat.

Appends first fill the free space of the current tail segment ("each
chunk of bytes is appended at the end of the previous one with no holes
in between them"): the partial last page is completed by a single
read-modify-write (logged — this is the one place append touches an
existing leaf page), remaining spare pages are filled with fresh whole-
page writes, and only then are new segments allocated.

"At the end of these multi-append operations the last allocated segment
is always trimmed, i.e., its unused pages (if any) at the right end are
given back to the free space.  Trimming a segment is trivial because the
buddy system of EOS deals with allocation/deallocation of segments of
any size with a precision of 1 page."  :func:`trim` is that operation;
insert and delete call it first so their page arithmetic can rely on the
no-spare invariant.
"""

from __future__ import annotations

from repro.buddy.manager import BuddyManager
from repro.core.config import EOSConfig
from repro.core.node import Entry
from repro.core.search import PageLog
from repro.core.segio import SegmentIO
from repro.core.tree import LargeObjectTree
from repro.util import copytrace
from repro.util.bitops import ceil_div


def growth_pages(
    config: EOSConfig,
    max_segment_pages: int,
    last_segment_pages: int | None,
    hint_remaining_bytes: int | None,
) -> int:
    """Pages to allocate for the next tail segment.

    With a live size hint, allocate exactly what the rest of the object
    needs (capped at the maximum segment size).  Without one, double the
    previous segment (Section 4.1's unknown-size scheme).
    """
    ps = config.page_size
    if hint_remaining_bytes is not None and hint_remaining_bytes > 0:
        return min(max_segment_pages, ceil_div(hint_remaining_bytes, ps))
    if last_segment_pages is None:
        return min(max_segment_pages, config.initial_growth_pages)
    return min(max_segment_pages, max(1, last_segment_pages * 2))


def append(
    tree: LargeObjectTree,
    segio: SegmentIO,
    buddy: BuddyManager,
    data,
    *,
    size_hint: int | None = None,
    log: PageLog | None = None,
) -> None:
    """Append ``data`` at the end of the object.

    ``data`` is any buffer-protocol object; it is sliced as memoryviews
    all the way to the vectored disk write, never re-materialized.
    ``size_hint`` is the *total* eventual object size, if known; it
    shapes segment allocation only (appending more than the hint simply
    falls back to the doubling scheme).
    """
    if not len(data):
        return
    view = memoryview(data).cast("B")
    ps = segio.page_size
    size = tree.size()
    position = 0
    last_pages: int | None = None

    if size > 0:
        path, _ = tree.descend(size)
        entry = path[-1].node.entries[path[-1].index]
        last_pages = entry.pages
        live_bytes = entry.count
        # 1. Complete the partial last page in place (logged).
        partial = live_bytes % ps
        if partial:
            take = min(ps - partial, len(view))
            page = entry.child + live_bytes // ps
            chunk = view[:take]
            pre = segio.patch_page(page, partial, chunk)
            if log is not None:
                post = bytearray(pre)
                post[partial : partial + take] = chunk
                log(page, pre, copytrace.materialize(post, "append.log_post"))
            position += take
            live_bytes += take
        # 2. Fill the segment's spare pages with whole-page writes.
        live_pages = ceil_div(live_bytes, ps)
        if position < len(view) and live_pages < entry.pages:
            capacity = (entry.pages - live_pages) * ps
            take = min(capacity, len(view) - position)
            segio.write_segment(
                entry.child, view[position : position + take], at_page=live_pages
            )
            position += take
        if position:
            tree.update_tail(position)
            size += position

    # 3. Allocate new segments for whatever remains.
    new_entries: list[Entry] = []
    while position < len(view):
        remaining = len(view) - position
        written_total = size + sum(e.count for e in new_entries)
        hint_remaining = None
        if size_hint is not None and size_hint > written_total:
            # Cover at least this chunk even when the hint undershoots.
            hint_remaining = max(size_hint - written_total, remaining)
        want = growth_pages(
            tree.config, buddy.max_segment_pages, last_pages, hint_remaining
        )
        want = max(want, 1)
        ref = buddy.allocate_up_to(want)
        take = min(remaining, ref.n_pages * ps)
        segio.write_segment(ref.first_page, view[position : position + take])
        new_entries.append(Entry(take, ref.first_page, ref.n_pages))
        position += take
        last_pages = ref.n_pages
    if new_entries:
        tree.append_leaf_entries(new_entries)


def trim(tree: LargeObjectTree, buddy: BuddyManager) -> int:
    """Free the tail segment's unused pages; returns pages freed."""
    size = tree.size()
    if size == 0:
        return 0
    path, _ = tree.descend(size)
    entry = path[-1].node.entries[path[-1].index]
    needed = ceil_div(entry.count, tree.config.page_size)
    spare = entry.pages - needed
    if spare <= 0:
        return 0
    buddy.free(entry.child + needed, spare)
    tree.update_tail(0, pages=needed)
    return spare
