"""A file-like view over a large object.

The paper's Section 1 argues that applications consume large objects
piece-wise — "one would rather sequentially scan through the object in
smaller portions, rather than access the whole chunk in one step" — and
build them the same way.  :class:`ObjectStream` packages that access
pattern behind the familiar ``read``/``write``/``seek``/``tell``
interface so existing code (parsers, codecs, ``shutil.copyfileobj``)
can run against a large object directly.

Semantics:

* ``read(n)`` returns up to ``n`` bytes from the cursor (all remaining
  bytes when ``n`` is omitted or negative);
* ``write(data)`` *replaces* bytes under the cursor and appends once the
  cursor passes the end — exactly overwrite-then-extend, like a file
  opened ``r+b``;
* ``truncate(size)`` uses the object's truncate;
* writes issued while the cursor sits at the end are buffered and
  flushed in page-sized batches, so chunk-wise builders get the
  multi-append behaviour of Section 4.1 (doubling segments, one trim)
  instead of per-call tree updates.
"""

from __future__ import annotations

import io

from repro.core.object import LargeObject


class ObjectStream(io.RawIOBase):
    """Seekable binary stream over a :class:`LargeObject`."""

    def __init__(self, obj: LargeObject, *, buffer_pages: int = 16) -> None:
        super().__init__()
        self.obj = obj
        self._position = 0
        self._append_buffer = bytearray()
        self._buffer_limit = buffer_pages * obj.config.page_size

    # -- io.RawIOBase interface -------------------------------------------

    def readable(self) -> bool:
        return True

    def writable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    def tell(self) -> int:
        return self._position

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        self._flush_append()
        if whence == io.SEEK_SET:
            target = offset
        elif whence == io.SEEK_CUR:
            target = self._position + offset
        elif whence == io.SEEK_END:
            target = self.obj.size() + offset
        else:
            raise ValueError(f"bad whence: {whence}")
        if target < 0:
            raise ValueError(f"negative seek position {target}")
        self._position = target
        return target

    def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` bytes from the cursor (all remaining if n < 0)."""
        self._flush_append()
        size = self.obj.size()
        if self._position >= size:
            return b""
        if n is None or n < 0:
            n = size - self._position
        n = min(n, size - self._position)
        data = self.obj.read(self._position, n)
        self._position += n
        return data

    def readall(self) -> bytes:
        return self.read(-1)

    def write(self, data) -> int:
        """Overwrite under the cursor, appending once past the end.

        ``data`` is any buffer-protocol object; it is never copied in
        full — small appends stage into the batch buffer, large ones
        and overwrites go to the object as memoryview slices.
        """
        view = memoryview(data).cast("B")
        n = len(view)
        if not n:
            return 0
        size = self.obj.size() + len(self._append_buffer)
        if self._position == size:
            if n >= self._buffer_limit:
                # Already batch-sized: flush what's staged and hand the
                # caller's buffer straight down — no staging copy.
                self._flush_append()
                self.obj.append(view)
            else:
                # Pure append: batch it.
                self._append_buffer.extend(view)
                if len(self._append_buffer) >= self._buffer_limit:
                    self._flush_append()
            self._position += n
            return n
        self._flush_append()
        size = self.obj.size()
        overlap = max(0, min(n, size - self._position))
        if overlap > 0:
            self.obj.replace(self._position, view[:overlap])
        if overlap < n:
            # Past-the-end remainder is an append (a seek hole is filled
            # with zeros first, like a sparse file write would appear).
            gap = self._position - size
            if gap > 0:
                self.obj.append(b"\0" * gap)
            self.obj.append(view[overlap:])
        self._position += n
        return n

    def truncate(self, size: int | None = None) -> int:
        self._flush_append()
        if size is None:
            size = self._position
        current = self.obj.size()
        if size < current:
            self.obj.truncate(size)
        elif size > current:
            self.obj.append(b"\0" * (size - current))
        return size

    def flush(self) -> None:
        self._flush_append()

    def close(self) -> None:
        if not self.closed:
            self._flush_append()
            self.obj.trim()
        super().close()

    # -- internals ---------------------------------------------------------

    def _flush_append(self) -> None:
        if self._append_buffer:
            # The append consumes its view of the buffer before
            # returning, so clearing afterwards is safe.
            self.obj.append(self._append_buffer)
            self._append_buffer.clear()

    def __len__(self) -> int:
        return self.obj.size() + len(self._append_buffer)
