"""Segment-size threshold policies (paper Section 4.4 and [Bili91a]).

The fixed policy is the paper's main mechanism: a single T per object
(or per file), specifiable "as a hint to the storage manager", with the
stated trade-off — larger T improves utilization and read performance,
and only insert/delete costs can suffer.

The adaptive policy implements the extension the paper sketches from
[Bili91a]: "the closer we are to splitting an index, the higher the
value of T should become.  When the parent node is indeed going to be
split if the child segment is split, the entire node is scanned and for
any two or more logically adjacent segments that have less than T pages,
a single larger segment is allocated to accommodate this group of unsafe
adjacent segments."  Here that is two pieces:

* :meth:`ThresholdPolicy.effective` scales T with the parent's fill
  ratio, and
* the insert executor calls :func:`find_unsafe_runs` to coalesce
  adjacent unsafe segments when its parent would otherwise split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import Entry
from repro.util.bitops import ceil_div


@dataclass(frozen=True)
class ThresholdPolicy:
    """Computes the effective T for one update operation."""

    base: int
    adaptive: bool = False

    def effective(self, parent_fill_ratio: float) -> int:
        """The T to use given how full the parent index node is.

        The fixed policy ignores the fill ratio.  The adaptive policy
        doubles T as the parent passes 3/4 full and doubles again when
        it is essentially full, so segments consolidate *before* the
        node must split.
        """
        if not self.adaptive:
            return self.base
        if parent_fill_ratio >= 0.95:
            return self.base * 4
        if parent_fill_ratio >= 0.75:
            return self.base * 2
        return self.base


def find_unsafe_runs(
    entries: list[Entry], threshold: int, page_size: int
) -> list[tuple[int, int]]:
    """Maximal runs of >=2 adjacent leaf entries that are all unsafe.

    Returns ``(start_index, end_index)`` pairs (half-open).  Each run is
    a candidate for coalescing into a single segment; runs whose
    combined size would still be a legal segment are the ones the
    adaptive mechanism rewrites.
    """
    runs: list[tuple[int, int]] = []
    i = 0
    while i < len(entries):
        pages = ceil_div(entries[i].count, page_size)
        if 0 < pages < threshold:
            j = i
            while j < len(entries):
                p = ceil_div(entries[j].count, page_size)
                if not 0 < p < threshold:
                    break
                j += 1
            if j - i >= 2:
                runs.append((i, j))
            i = j + 1
        else:
            i += 1
    return runs
