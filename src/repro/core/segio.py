"""Leaf-segment I/O: contiguous multi-page transfers, bypassing the pool.

Leaf segments are read and written with single contiguous transfers —
that is the entire point of variable-size segments ("disk space is
allocated in large units of physically adjacent disk blocks", Section 1)
— and they bypass the buffer pool so a multi-megabyte scan cannot evict
the object's own index pages.

Writing a segment pads the final partial page with zeros: "there are no
holes in each segment in that all of its pages must get filled up except
the last one which may be partially full" (Section 4).  The pad bytes
are physically present but logically dead; the byte counts in the index
mask them.
"""

from __future__ import annotations

from repro.buddy.manager import BuddyManager, SegmentRef
from repro.errors import LargeObjectError
from repro.obs.tracer import NULL_OBS, Observability
from repro.storage.disk import DiskVolume
from repro.storage.page import PageId
from repro.util.bitops import ceil_div


class SegmentIO:
    """Byte-addressed access to leaf segments on the raw disk."""

    def __init__(
        self, disk: DiskVolume, page_size: int, *, obs: Observability | None = None
    ) -> None:
        if disk.page_size != page_size:
            raise LargeObjectError(
                f"config page size {page_size} != disk page size {disk.page_size}"
            )
        self.disk = disk
        self.page_size = page_size
        self.obs = obs if obs is not None else NULL_OBS

    def read_bytes(self, first_page: PageId, byte_lo: int, byte_hi: int) -> bytes:
        """Read bytes [byte_lo, byte_hi) of a segment: one contiguous run."""
        if byte_lo >= byte_hi:
            return b""
        ps = self.page_size
        page_lo = byte_lo // ps
        page_hi = (byte_hi - 1) // ps
        with self.obs.tracer.span(
            "segio.read", first_page=first_page, pages=page_hi - page_lo + 1
        ):
            span = self.disk.read_pages(first_page + page_lo, page_hi - page_lo + 1)
        base = page_lo * ps
        return span[byte_lo - base : byte_hi - base]

    def read_span(
        self, first_page: PageId, page_lo: int, page_hi: int
    ) -> tuple[bytes, int]:
        """Read pages [page_lo, page_hi] of a segment in one run.

        Returns ``(bytes, base_byte_offset)`` so callers can slice by
        segment-relative byte offsets.
        """
        with self.obs.tracer.span(
            "segio.read", first_page=first_page, pages=page_hi - page_lo + 1
        ):
            span = self.disk.read_pages(first_page + page_lo, page_hi - page_lo + 1)
        return span, page_lo * self.page_size

    def write_segment(self, first_page: PageId, data: bytes, at_page: int = 0) -> None:
        """Write ``data`` into a segment starting at page ``at_page``,
        padding the final partial page with zeros."""
        if not data:
            return
        ps = self.page_size
        n_pages = ceil_div(len(data), ps)
        padded = bytes(data) + bytes(n_pages * ps - len(data))
        with self.obs.tracer.span(
            "segio.write", first_page=first_page, pages=n_pages
        ):
            self.disk.write_pages(first_page + at_page, padded)

    def read_page(self, page: PageId) -> bytes:
        """Read one whole page (for the page-granular baseline schemes)."""
        with self.obs.tracer.span("segio.read", first_page=page, pages=1):
            return self.disk.read_page(page)

    def write_page(self, page: PageId, data: bytes) -> None:
        """Write one page, zero-padding a partial image."""
        if len(data) > self.page_size:
            raise LargeObjectError(
                f"page write of {len(data)} bytes exceeds page size {self.page_size}"
            )
        padded = bytes(data) + bytes(self.page_size - len(data))
        with self.obs.tracer.span("segio.write", first_page=page, pages=1):
            self.disk.write_page(page, padded)

    def patch_page(self, page: PageId, offset: int, data: bytes) -> bytes:
        """Read-modify-write one page; returns the pre-image (for logging)."""
        ps = self.page_size
        if offset + len(data) > ps:
            raise LargeObjectError(
                f"patch of {len(data)} bytes at offset {offset} overruns a page"
            )
        with self.obs.tracer.span("segio.patch", page=page, bytes=len(data)):
            old = self.disk.read_page(page)
            new = old[:offset] + data + old[offset + len(data) :]
            self.disk.write_page(page, new)
        return old


def allocate_and_write(
    segio: SegmentIO, buddy: BuddyManager, data: bytes
) -> list[tuple[SegmentRef, int]]:
    """Allocate exact-size segments for ``data`` and write them.

    Returns ``[(segment, byte_count), ...]``.  Data longer than the
    maximum segment size spans several segments; under fragmentation the
    allocator may return shorter runs and the data simply continues in
    the next segment (the tree indexes them independently).
    """
    out: list[tuple[SegmentRef, int]] = []
    ps = segio.page_size
    position = 0
    while position < len(data):
        remaining = len(data) - position
        want = min(ceil_div(remaining, ps), buddy.max_segment_pages)
        ref = buddy.allocate_up_to(want)
        take = min(remaining, ref.n_pages * ps)
        if ref.n_pages > ceil_div(take, ps):
            # Trim immediately: these segments never carry spare pages.
            spare = ref.n_pages - ceil_div(take, ps)
            buddy.free(ref.first_page + ref.n_pages - spare, spare)
            ref = SegmentRef(ref.first_page, ref.n_pages - spare)
        segio.write_segment(ref.first_page, data[position : position + take])
        out.append((ref, take))
        position += take
    return out
