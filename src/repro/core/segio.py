"""Leaf-segment I/O: contiguous multi-page transfers, bypassing the pool.

Leaf segments are read and written with single contiguous transfers —
that is the entire point of variable-size segments ("disk space is
allocated in large units of physically adjacent disk blocks", Section 1)
— and they bypass the buffer pool so a multi-megabyte scan cannot evict
the object's own index pages.

Writing a segment pads the final partial page with zeros: "there are no
holes in each segment in that all of its pages must get filled up except
the last one which may be partially full" (Section 4).  The pad bytes
are physically present but logically dead; the byte counts in the index
mask them.

The zero-copy data path enters here: :meth:`SegmentIO.view_run` borrows
a read-only :class:`memoryview` of a page run (no copy), writes accept
any buffer-protocol object and gather data + zero pad as an iovec list
(:meth:`~repro.storage.disk.DiskVolume.write_pages_v`), and
:func:`allocate_and_write` coalesces physically adjacent segments into
single vectored transfers.
"""

from __future__ import annotations

from repro.buddy.manager import BuddyManager, SegmentRef
from repro.errors import LargeObjectError, OutOfSpace
from repro.obs.tracer import NULL_OBS, Observability
from repro.storage.disk import DiskVolume
from repro.storage.page import PageId
from repro.util import copytrace
from repro.util.bitops import ceil_div


class SegmentIO:
    """Byte-addressed access to leaf segments on the raw disk."""

    def __init__(
        self, disk: DiskVolume, page_size: int, *, obs: Observability | None = None
    ) -> None:
        if disk.page_size != page_size:
            raise LargeObjectError(
                f"config page size {page_size} != disk page size {disk.page_size}"
            )
        self.disk = disk
        self.page_size = page_size
        self.obs = obs if obs is not None else NULL_OBS

    def view_run(self, first_page: PageId, n_pages: int) -> memoryview:
        """Borrow a read-only view of a contiguous page run — no copy.

        The view aliases the live volume (see
        :meth:`~repro.storage.disk.DiskVolume.view_pages`): consume it
        before the next write.  The read planner does — it assembles all
        its views into the result buffer before returning.
        """
        with self.obs.tracer.span(
            "segio.read", first_page=first_page, pages=n_pages
        ):
            return self.disk.view_pages(first_page, n_pages)

    def read_bytes(self, first_page: PageId, byte_lo: int, byte_hi: int) -> bytes:
        """Read bytes [byte_lo, byte_hi) of a segment: one contiguous run.

        Copying contract: the caller owns the returned ``bytes``.  The
        zero-copy path plans through :meth:`view_run` instead.
        """
        if byte_lo >= byte_hi:
            return b""
        ps = self.page_size
        page_lo = byte_lo // ps
        page_hi = (byte_hi - 1) // ps
        view = self.view_run(first_page + page_lo, page_hi - page_lo + 1)
        base = page_lo * ps
        return copytrace.materialize(
            view[byte_lo - base : byte_hi - base], "segio.read_bytes"
        )

    def read_span(
        self, first_page: PageId, page_lo: int, page_hi: int
    ) -> tuple[bytes, int]:
        """Read pages [page_lo, page_hi] of a segment in one run.

        Returns ``(bytes, base_byte_offset)`` so callers can slice by
        segment-relative byte offsets.  The caller owns the bytes (this
        feeds read-modify-write, which must not alias the volume).
        """
        view = self.view_run(first_page + page_lo, page_hi - page_lo + 1)
        return copytrace.materialize(view, "segio.read_span"), page_lo * self.page_size

    def write_segment(self, first_page: PageId, data, at_page: int = 0) -> None:
        """Write ``data`` into a segment starting at page ``at_page``,
        padding the final partial page with zeros.

        ``data`` is any buffer-protocol object (bytes, bytearray,
        memoryview); it is gathered with the pad as an iovec list, never
        re-materialized.
        """
        view = memoryview(data).cast("B")
        if not len(view):
            return
        ps = self.page_size
        n_pages = ceil_div(len(view), ps)
        pad = n_pages * ps - len(view)
        iovecs = (view, b"\0" * pad) if pad else (view,)
        with self.obs.tracer.span(
            "segio.write", first_page=first_page, pages=n_pages
        ):
            self.disk.write_pages_v(first_page + at_page, iovecs)

    def write_run_v(self, first_page: PageId, iovecs, n_pages: int) -> None:
        """Vectored write of a coalesced run of physically adjacent
        segments: one transfer, one seek at most."""
        with self.obs.tracer.span(
            "segio.write", first_page=first_page, pages=n_pages
        ):
            self.disk.write_pages_v(first_page, iovecs)

    def read_page(self, page: PageId) -> bytes:
        """Read one whole page (for the page-granular baseline schemes)."""
        with self.obs.tracer.span("segio.read", first_page=page, pages=1):
            return self.disk.read_page(page)

    def write_page(self, page: PageId, data) -> None:
        """Write one page, zero-padding a partial image."""
        if len(data) > self.page_size:
            raise LargeObjectError(
                f"page write of {len(data)} bytes exceeds page size {self.page_size}"
            )
        pad = self.page_size - len(data)
        iovecs = (data, b"\0" * pad) if pad else (data,)
        with self.obs.tracer.span("segio.write", first_page=page, pages=1):
            self.disk.write_pages_v(page, iovecs)

    def patch_page(self, page: PageId, offset: int, data) -> bytes:
        """Read-modify-write one page; returns the pre-image (for logging)."""
        ps = self.page_size
        if offset + len(data) > ps:
            raise LargeObjectError(
                f"patch of {len(data)} bytes at offset {offset} overruns a page"
            )
        with self.obs.tracer.span("segio.patch", page=page, bytes=len(data)):
            old = self.disk.read_page(page)
            new = bytearray(old)
            new[offset : offset + len(data)] = data
            self.disk.write_page(page, new)
        return old


def allocate_and_write(
    segio: SegmentIO,
    buddy: BuddyManager,
    data,
    *,
    avoid_space: int | None = None,
    cleanup_on_fail: bool = False,
) -> list[tuple[SegmentRef, int]]:
    """Allocate exact-size segments for ``data`` and write them.

    Returns ``[(segment, byte_count), ...]``.  Data longer than the
    maximum segment size spans several segments; under fragmentation the
    allocator may return shorter runs and the data simply continues in
    the next segment (the tree indexes them independently).

    The buddy system hands out consecutive allocations that are very
    often physically adjacent; writes to adjacent segments are coalesced
    into single vectored multi-page transfers (one seek per contiguous
    run, the paper's cost model), with the input sliced as memoryviews —
    no intermediate copies.

    ``cleanup_on_fail`` frees the already-allocated segments when the
    volume runs out of space mid-write, for callers with no enclosing
    transaction or version unit to roll the allocations back (the
    compactor).  Transactional callers must leave it off — their
    rollback frees the same pages, and freeing twice corrupts the buddy
    directory.
    """
    out: list[tuple[SegmentRef, int]] = []
    ps = segio.page_size
    view = memoryview(data).cast("B")
    position = 0
    run_first: PageId | None = None
    run_pages = 0
    run_iov: list = []

    def flush() -> None:
        nonlocal run_first, run_pages, run_iov
        if run_first is not None:
            segio.write_run_v(run_first, run_iov, run_pages)
            run_first, run_pages, run_iov = None, 0, []

    while position < len(view):
        remaining = len(view) - position
        want = min(ceil_div(remaining, ps), buddy.max_segment_pages)
        try:
            if avoid_space is not None:
                ref = buddy.allocate_up_to(want, avoid_space=avoid_space)
            else:
                ref = buddy.allocate_up_to(want)
        except OutOfSpace:
            if cleanup_on_fail:
                for done, _ in out:
                    buddy.free(done.first_page, done.n_pages)
            raise
        take = min(remaining, ref.n_pages * ps)
        if ref.n_pages > ceil_div(take, ps):
            # Trim immediately: these segments never carry spare pages.
            spare = ref.n_pages - ceil_div(take, ps)
            buddy.free(ref.first_page + ref.n_pages - spare, spare)
            ref = SegmentRef(ref.first_page, ref.n_pages - spare)
        pad = ref.n_pages * ps - take
        if run_first is None or run_first + run_pages != ref.first_page:
            flush()
            run_first = ref.first_page
        run_iov.append(view[position : position + take])
        if pad:
            run_iov.append(b"\0" * pad)
        run_pages += ref.n_pages
        out.append((ref, take))
        position += take
    flush()
    return out
