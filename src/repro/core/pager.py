"""Index-page storage policies: in-place writes vs shadowing.

Section 4.5 splits the four update operations by recovery technique:
*replace* overwrites leaf pages (logged), while *insert*, *delete* and
*append* "modify only the internal nodes of the large object tree
without overwriting existing leaf pages.  Thus, during an insert,
delete, or append, only the modified index pages need to be shadowed."

:class:`NodePager` is the interface the tree uses for index pages.
:class:`InPlacePager` is the prototype's behaviour (EOS "runs on a
single process, with no support for transactions").
:class:`~repro.recovery.shadow.ShadowPager` relocates every written
node, leaving the old images intact until commit; the root page is the
single in-place switch point.
"""

from __future__ import annotations

from repro.buddy.manager import BuddyManager
from repro.core.node import Node
from repro.errors import TreeCorrupt
from repro.storage.buffer import BufferPool
from repro.storage.page import PageId


class NodePager:
    """Interface for reading/writing index nodes of one tree."""

    def read(self, page: PageId) -> Node:
        """Load and decode the index node at ``page``."""
        raise NotImplementedError

    def write(self, page: PageId, node: Node) -> PageId:
        """Persist ``node``; returns the page it now lives on.

        An in-place pager returns ``page``; a shadowing pager may return
        a different page, and the caller must update the parent pointer.
        """
        raise NotImplementedError

    def write_new(self, page: PageId, node: Node) -> PageId:
        """Install a node on a freshly allocated page (its disk content is
        garbage, so no read is charged)."""
        raise NotImplementedError

    def allocate(self) -> PageId:
        """Allocate a fresh single page for an index node."""
        raise NotImplementedError

    def free(self, page: PageId) -> None:
        """Return an index page to the allocator."""
        raise NotImplementedError

    def write_root(self, page: PageId, node: Node) -> None:
        """Roots are always updated in place (the atomic switch point)."""
        raise NotImplementedError


class InPlacePager(NodePager):
    """Read/write index nodes through the buffer pool, in place."""

    def __init__(self, pool: BufferPool, buddy: BuddyManager, page_size: int):
        self.pool = pool
        self.buddy = buddy
        self.page_size = page_size

    def read(self, page: PageId) -> Node:
        """Fetch the page through the buffer pool and decode it."""
        with self.pool.page(page) as image:
            try:
                return Node.from_page(image)
            except Exception as exc:  # pragma: no cover - defensive
                raise TreeCorrupt(f"page {page} failed to decode: {exc}") from exc

    def write(self, page: PageId, node: Node) -> PageId:
        with self.pool.page(page, dirty=True) as image:
            image[:] = node.to_page(self.page_size)
        return page

    def write_new(self, page: PageId, node: Node) -> PageId:
        """Install a node on a freshly allocated page (no disk read)."""
        self.pool.put_new(page, node.to_page(self.page_size))
        return page

    def allocate(self) -> PageId:
        """One page from the buddy system."""
        return self.buddy.allocate(1).first_page

    def free(self, page: PageId) -> None:
        # A freed node's image is dead: discard without write-back.
        """Drop the buffered frame and free the page."""
        self.pool.drop(page)
        self.buddy.free(page, 1)

    def write_root(self, page: PageId, node: Node) -> None:
        self.write(page, node)

    def flush(self) -> None:
        """Write back every dirty buffered page."""
        self.pool.flush_all()
