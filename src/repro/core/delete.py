"""Byte-range deletion (paper Section 4.3.2 + 4.4).

The published algorithm runs in two conceptual phases:

* **Subtree deletion** — everything strictly between the two boundary
  segments dies without a single leaf page being touched, because "the
  address and size of each segment are stored in the corresponding
  parent index nodes, and they can be given directly to the buddy
  system".  Here, the tree's structural primitive returns the dropped
  leaf entries and this module frees their page runs.
* **Partial deletion at the boundaries** — with S the segment holding
  the first deleted byte (page P, offset Pb) and S' the segment holding
  the last (page Q, offset Qb): L keeps S's prefix, R keeps S''s pages
  after Q, and a new (conceptually one-page) segment N receives Q's
  surviving tail — "since segments cannot have holes, page Q is isolated
  from the part of segment S' that remains on the right of Q".  Byte and
  page reshuffling then runs exactly as for insert.

Cost notes reproduced by experiment E10: a deletion whose last byte is
the last byte of a page has N_c = 0 and "can be completed without
accessing any segment"; truncation (delete to the end) and whole-object
deletion are special cases of that.  "Unlike the B-tree algorithms as
well as the ones used in Exodus, a partial segment delete may create new
entries that need to be added in the parent" — L, N and R can be three
entries where one segment stood.
"""

from __future__ import annotations

from repro.buddy.manager import BuddyManager
from repro.core.append import trim
from repro.core.node import Entry
from repro.core.reshuffle import ReshufflePlan, plan_reshuffle
from repro.core.segio import SegmentIO, allocate_and_write
from repro.core.threshold import ThresholdPolicy
from repro.core.tree import LargeObjectTree
from repro.errors import ByteRangeError, TreeCorrupt
from repro.util.bitops import ceil_div


def delete_range(
    tree: LargeObjectTree,
    segio: SegmentIO,
    buddy: BuddyManager,
    offset: int,
    length: int,
    *,
    policy: ThresholdPolicy | None = None,
) -> None:
    """Delete ``length`` bytes starting at byte ``offset``."""
    size = tree.size()
    if length < 0 or offset < 0 or offset + length > size:
        raise ByteRangeError(offset, length, size)
    if length == 0:
        return
    policy = policy or ThresholdPolicy(
        tree.config.threshold, tree.config.adaptive_threshold
    )
    trim(tree, buddy)

    ps = segio.page_size
    lo, hi = offset, offset + length

    # ---- Step 1: locate the boundary segments --------------------------------
    path_l, local_l = tree.descend(lo)
    step_l = path_l[-1]
    s_entry = step_l.node.entries[step_l.index]
    s_lo = lo - local_l
    path_r, local_r = tree.descend(hi - 1)
    step_r = path_r[-1]
    sp_entry = step_r.node.entries[step_r.index]
    sp_lo = (hi - 1) - local_r
    same_segment = s_lo == sp_lo
    fill = len(step_l.node.entries) / tree.fanout

    # ---- Step 2: the three conceptual segments -------------------------------
    p = local_l // ps
    pb = local_l % ps
    l0 = p * ps + pb
    q = local_r // ps
    qb = local_r % ps
    q_c = ps if q < sp_entry.pages - 1 else sp_entry.count - q * ps
    n0 = q_c - (qb + 1)
    r0 = max(0, sp_entry.count - (q + 1) * ps)

    # ---- Step 3: reshuffle (skipped entirely when N is empty) ----------------
    if n0 == 0:
        plan = ReshufflePlan(
            l_bytes=l0, n_bytes=0, r_bytes=r0,
            took_from_l=0, took_from_r=0, page_reshuffles=0,
        )
    else:
        plan = plan_reshuffle(
            l0,
            n0,
            r0,
            page_size=ps,
            threshold=policy.effective(fill),
            max_segment_pages=buddy.max_segment_pages,
        )

    # ---- Step 4: read movers, compose and write N ----------------------------
    n_segments: list = []
    if plan.n_bytes:
        prefix = b""
        if plan.took_from_l:
            prefix = segio.read_bytes(s_entry.child, plan.l_bytes, l0)
        r_take_pages = _taken_pages(plan.took_from_r, r0, ps)
        span, base = segio.read_span(sp_entry.child, q, q + r_take_pages)
        core = span[q * ps + qb + 1 - base : q * ps + q_c - base]
        r_head = span[(q + 1) * ps - base : (q + 1) * ps + plan.took_from_r - base]
        n_content = prefix + core + r_head
        if len(n_content) != plan.n_bytes:
            raise TreeCorrupt(
                f"assembled {len(n_content)} bytes for N, plan says {plan.n_bytes}"
            )
        n_segments = allocate_and_write(segio, buddy, n_content)
    else:
        r_take_pages = 0

    # ---- Free the boundary segments' dead pages ------------------------------
    l_keep = ceil_div(plan.l_bytes, ps)
    if plan.r_bytes:
        r_start = q + 1 + r_take_pages
    else:
        r_start = sp_entry.pages
    if same_segment:
        if r_start > l_keep:
            buddy.free(s_entry.child + l_keep, r_start - l_keep)
    else:
        if s_entry.pages > l_keep:
            buddy.free(s_entry.child + l_keep, s_entry.pages - l_keep)
        if r_start > 0:
            buddy.free(sp_entry.child, r_start)

    # ---- Step 5/6: fix parents, merge/rotate, fix root ------------------------
    new_entries: list[Entry] = []
    if plan.l_bytes:
        new_entries.append(Entry(plan.l_bytes, s_entry.child, l_keep))
    new_entries.extend(
        Entry(count, ref.first_page, ref.n_pages) for ref, count in n_segments
    )
    if plan.r_bytes:
        new_entries.append(
            Entry(plan.r_bytes, sp_entry.child + r_start, sp_entry.pages - r_start)
        )
    replace_hi = sp_lo + sp_entry.count
    dropped = tree.replace_leaf_range(s_lo, replace_hi, new_entries)

    # Middle segments die whole; the boundary segments were already
    # partially freed above.
    boundary = {s_entry.child, sp_entry.child}
    for entry in dropped:
        if entry.child not in boundary:
            buddy.free(entry.child, entry.pages)


def truncate(
    tree: LargeObjectTree,
    segio: SegmentIO,
    buddy: BuddyManager,
    new_size: int,
    *,
    policy: ThresholdPolicy | None = None,
) -> None:
    """Delete from ``new_size`` to the end of the object.

    "With B=0 truncation becomes equivalent to deleting the entire
    object and thus, this operation too does not need to access any
    segment of the object."
    """
    size = tree.size()
    if new_size < 0 or new_size > size:
        raise ByteRangeError(new_size, 0, size)
    if new_size < size:
        delete_range(tree, segio, buddy, new_size, size - new_size, policy=policy)


def _taken_pages(took_from_r: int, r0: int, page_size: int) -> int:
    if took_from_r == 0:
        return 0
    if took_from_r == r0:
        return ceil_div(r0, page_size)
    return took_from_r // page_size
