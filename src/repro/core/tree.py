"""The positional tree: structure maintenance for one large object.

This module owns the B-tree mechanics that Sections 4.1-4.4 rely on:

* descending by byte position (the paper's Section 4.2 traversal);
* replacing a run of leaf entries with new ones — the single structural
  primitive behind insert ("fix parent so that it includes a pair for
  each of the segments L, N, and R"), delete (dropping covered subtrees,
  splicing in the survivors) and append;
* node splits on overflow, and the paper's delete-side maintenance:
  "check if a node in one of the two stacks has now less than the
  allowed number of pairs and if so, merge or rotate with a sibling";
* the root rules: the client-visible root page never moves, a root with
  a single index-node child collapses ("copy the pairs of this child to
  the root and repeat this step"), and an optional byte limit on the
  root (footnote 3) caps its fan-out.

Writes go through a :class:`~repro.core.pager.NodePager`, and children
are always written before their parents.  This ordering is what lets a
shadowing pager (Section 4.5) relocate every modified index page and
commit the whole update with one in-place root write.

Deleting a subtree never touches a leaf page: "the address and size of
each segment are stored in the corresponding parent index nodes, and
they can be given directly to the buddy system."  The structural
primitive therefore *returns* the dropped leaf entries and lets the
operation executor free exactly the right page ranges (boundary
segments are partially kept).
"""

from __future__ import annotations

from repro.core.config import EOSConfig
from repro.core.node import ENTRY_SIZE, HEADER_SIZE, Entry, Node, fanout, min_entries
from repro.core.pager import NodePager
from repro.errors import ByteRangeError, TreeCorrupt
from repro.obs.tracer import NULL_OBS, Observability
from repro.storage.page import PageId
from repro.util.bitops import ceil_div


class PathStep:
    """One step of a root-to-leaf descent: a node and the child taken."""

    __slots__ = ("page", "node", "index")

    def __init__(self, page: PageId, node: Node, index: int) -> None:
        self.page = page
        self.node = node
        self.index = index


class LargeObjectTree:
    """Structure and bookkeeping of one large object's positional tree."""

    def __init__(
        self,
        pager: NodePager,
        config: EOSConfig,
        root_page: PageId,
        *,
        obs: Observability | None = None,
    ):
        self.pager = pager
        self.config = config
        self.root_page = root_page
        self.obs = obs if obs is not None else NULL_OBS
        self.fanout = fanout(config.page_size)
        self.min_entries = min_entries(config.page_size)
        if config.max_root_bytes is not None:
            limit = (config.max_root_bytes - HEADER_SIZE) // ENTRY_SIZE
            if limit < 2:
                raise ValueError(
                    f"max_root_bytes={config.max_root_bytes} leaves room for "
                    f"{limit} root entries; need at least 2"
                )
            self.root_fanout = min(self.fanout, limit)
        else:
            self.root_fanout = self.fanout

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        pager: NodePager,
        config: EOSConfig,
        *,
        obs: Observability | None = None,
    ) -> "LargeObjectTree":
        """Allocate a root page holding an empty object."""
        root_page = pager.allocate()
        tree = cls(pager, config, root_page, obs=obs)
        pager.write_new(root_page, Node(level=0))
        return tree

    # ------------------------------------------------------------------
    # Reading structure
    # ------------------------------------------------------------------

    def read_root(self) -> Node:
        """Load the root node from its (stable) page."""
        return self.pager.read(self.root_page)

    def size(self) -> int:
        """Total object size: "the count value of the rightmost pair of
        the root" (Section 4)."""
        return self.read_root().total_bytes

    def height(self) -> int:
        """Tree levels (a level-0 root is height 1)."""
        return self.read_root().level + 1

    def descend(self, byte: int) -> tuple[list[PathStep], int]:
        """Root-to-leaf-parent path for the child holding ``byte``.

        ``byte`` may equal the object size (append position).  The final
        step's node is level 0 and its index selects the leaf segment;
        the returned int is the byte's offset *within* that segment (the
        paper's "B" after the Section 4.2 loop).
        """
        with self.obs.tracer.span(
            "tree.descend", root=self.root_page, byte=byte
        ) as span:
            path: list[PathStep] = []
            page = self.root_page
            node = self.read_root()
            local = byte
            while True:
                if not node.entries:
                    raise ByteRangeError(byte, 0, 0)
                index, local = node.find_child(local)
                path.append(PathStep(page, node, index))
                if node.level == 0:
                    span.set(depth=len(path))
                    return path, local
                page = node.entries[index].child
                node = self.pager.read(page)

    def leaf_entries(self) -> list[tuple[int, Entry]]:
        """All leaf entries with their global byte offsets (left to right)."""
        out: list[tuple[int, Entry]] = []

        def walk(node: Node, base: int) -> None:
            offset = base
            for entry in node.entries:
                if node.level == 0:
                    out.append((offset, entry))
                else:
                    walk(self.pager.read(entry.child), offset)
                offset += entry.count

        root = self.read_root()
        if root.entries:
            walk(root, 0)
        return out

    def iter_segments(self, lo: int, hi: int):
        """Yield ``(global_offset, entry)`` for leaf entries overlapping
        [lo, hi), reading only the index pages on the way (Section 4.2's
        stack traversal, expressed recursively)."""

        def walk(node: Node, base: int):
            offset = base
            for entry in node.entries:
                end = offset + entry.count
                if end > lo and offset < hi:
                    if node.level == 0:
                        yield offset, entry
                    else:
                        yield from walk(self.pager.read(entry.child), offset)
                if offset >= hi:
                    break
                offset = end

        if lo < hi:
            root = self.read_root()
            if root.entries:
                yield from walk(root, 0)

    # ------------------------------------------------------------------
    # The structural primitive
    # ------------------------------------------------------------------

    def replace_leaf_range(
        self, lo: int, hi: int, new_entries: list[Entry]
    ) -> list[Entry]:
        """Replace the leaf entries covering [lo, hi) with ``new_entries``.

        ``lo`` and ``hi`` must fall on leaf-segment boundaries (the
        executors choose them that way: an insert replaces exactly the
        segment it hits; a delete replaces from the start of its left
        boundary segment to the end of its right one).  Returns the
        dropped leaf entries, whose segments the caller disposes of; this
        method itself never reads or writes a leaf page.
        """
        size = self.size()
        if not (0 <= lo < hi <= size):
            raise ByteRangeError(lo, hi - lo, size)
        dropped: list[Entry] = []
        root = self.read_root()
        if root.level == 0:
            entries = self._splice_leaf(root.entries, lo, hi, new_entries, dropped)
            root.entries = entries
        else:
            root.entries = self._edit_internal(root, lo, hi, new_entries, dropped)
        self._finish_root(root)
        return dropped

    def append_leaf_entries(self, new_entries: list[Entry]) -> None:
        """Add entries after the rightmost leaf entry (the append path)."""
        if not new_entries:
            return
        root = self.read_root()
        if not root.entries:
            root.entries = [e.copy() for e in new_entries]
            self._finish_root(root)
            return
        root.entries = self._append_into(root, new_entries)
        self._finish_root(root)

    def update_tail(self, count_delta: int, pages: int | None = None) -> None:
        """Adjust the rightmost leaf entry (append fills, trims).

        Children are rewritten bottom-up so a shadowing pager works: each
        ancestor's last entry gets the child's (possibly new) page id.
        """
        path, _ = self.descend(self.size())
        leaf_step = path[-1]
        entry = leaf_step.node.entries[leaf_step.index]
        entry.count += count_delta
        if pages is not None:
            entry.pages = pages
        if entry.count < 0 or (entry.count == 0 and entry.pages):
            raise TreeCorrupt(f"tail update produced an invalid entry {entry}")
        child_page = None
        for step in reversed(path):
            if child_page is not None:
                step.node.entries[step.index].child = child_page
                step.node.entries[step.index].count += count_delta
            if step.page == self.root_page:
                self.pager.write_root(step.page, step.node)
                child_page = step.page
            else:
                child_page = self.pager.write(step.page, step.node)

    # ------------------------------------------------------------------
    # Recursive editing internals
    # ------------------------------------------------------------------

    def _splice_leaf(
        self,
        entries: list[Entry],
        lo: int,
        hi: int,
        new_entries: list[Entry],
        dropped: list[Entry],
    ) -> list[Entry]:
        """Level-0 edit: drop covered entries, insert replacements."""
        out: list[Entry] = []
        insert_at: int | None = None
        offset = 0
        for entry in entries:
            start, end = offset, offset + entry.count
            offset = end
            if end <= lo or start >= hi:
                out.append(entry)
                continue
            if start < lo or end > hi:
                raise TreeCorrupt(
                    f"replace range [{lo}, {hi}) cuts through the leaf entry "
                    f"covering [{start}, {end})"
                )
            dropped.append(entry)
            if insert_at is None:
                insert_at = len(out)
        if insert_at is None:
            raise TreeCorrupt(f"replace range [{lo}, {hi}) covered no leaf entry")
        out[insert_at:insert_at] = [e.copy() for e in new_entries]
        return out

    def _edit_node(
        self,
        page: PageId,
        lo: int,
        hi: int,
        new_entries: list[Entry],
        dropped: list[Entry],
    ) -> list[Entry]:
        """Edit a non-root node; returns its replacement parent entries."""
        node = self.pager.read(page)
        if node.level == 0:
            node.entries = self._splice_leaf(
                node.entries, lo, hi, new_entries, dropped
            )
        else:
            node.entries = self._edit_internal(node, lo, hi, new_entries, dropped)
        return self._emit(page, node)

    def _edit_internal(
        self,
        node: Node,
        lo: int,
        hi: int,
        new_entries: list[Entry],
        dropped: list[Entry],
    ) -> list[Entry]:
        """Shared internal-node edit body (used for root and non-root)."""
        out: list[Entry] = []
        fix_positions: list[int] = []
        gave_new = False
        offset = 0
        for entry in node.entries:
            start, end = offset, offset + entry.count
            offset = end
            if end <= lo or start >= hi:
                out.append(entry)
                continue
            fully_covered = start >= lo and end <= hi
            if fully_covered and (gave_new or not new_entries):
                # Whole subtree dies: free its index pages, collect its
                # leaf entries — without touching any leaf page.
                self._free_subtree(entry, node.level - 1, dropped)
                continue
            # Boundary child (or the first covered child, which carries
            # the replacement entries down to leaf level).
            child_lo = max(lo, start) - start
            child_hi = min(hi, end) - start
            pass_new: list[Entry] = []
            if not gave_new:
                pass_new = new_entries
                gave_new = True
            replacements = self._edit_node(
                entry.child, child_lo, child_hi, pass_new, dropped
            )
            fix_positions.extend(range(len(out), len(out) + len(replacements)))
            out.extend(replacements)
        if new_entries and not gave_new:
            raise TreeCorrupt(
                f"range [{lo}, {hi}) found no child to carry replacements"
            )
        node.entries = out
        self._fix_underflows(node, fix_positions)
        return node.entries

    def _append_into(self, node: Node, new_entries: list[Entry]) -> list[Entry]:
        """Append-path edit body: add entries below the rightmost child."""
        if node.level == 0:
            node.entries = node.entries + [e.copy() for e in new_entries]
            return node.entries
        last = node.entries[-1]
        child = self.pager.read(last.child)
        child.entries = self._append_into(child, new_entries)
        replacements = self._emit(last.child, child)
        node.entries = node.entries[:-1] + replacements
        return node.entries

    def _emit(self, page: PageId, node: Node) -> list[Entry]:
        """Persist an edited non-root node; split on overflow.

        Returns the parent entries describing where the content now
        lives.  An emptied node frees its page and returns nothing.
        """
        if not node.entries:
            self.pager.free(page)
            return []
        if len(node.entries) <= self.fanout:
            new_page = self.pager.write(page, node)
            return [Entry(node.total_bytes, new_page, 0)]
        # Overflow: split into as few nodes as possible, each at least
        # half full.  (A single insert adds at most two entries, giving
        # the classic two-way split; bulk appends may need more parts.)
        parts = self._partition(node.entries)
        out: list[Entry] = []
        for i, part in enumerate(parts):
            part_node = Node(node.level, part, node.lsn)
            if i == 0:
                target = self.pager.write(page, part_node)
            else:
                target = self.pager.write_new(self.pager.allocate(), part_node)
            out.append(Entry(part_node.total_bytes, target, 0))
        return out

    def _partition(self, entries: list[Entry]) -> list[list[Entry]]:
        """Split an overfull entry list into balanced, legal chunks."""
        n_parts = ceil_div(len(entries), self.fanout)
        base = len(entries) // n_parts
        extra = len(entries) % n_parts
        parts = []
        position = 0
        for i in range(n_parts):
            take = base + (1 if i < extra else 0)
            parts.append(entries[position : position + take])
            position += take
        if any(len(p) < self.min_entries for p in parts):
            raise TreeCorrupt(
                f"cannot partition {len(entries)} entries into legal nodes"
            )
        return parts

    def _free_subtree(self, entry: Entry, level: int, dropped: list[Entry]) -> None:
        """Collect the leaf entries below ``entry`` and free its index pages.

        Only index pages are read; the leaf segments are reported via
        ``dropped`` for the caller to hand "directly to the buddy
        system" (Section 4.3.2).
        """
        node = self.pager.read(entry.child)
        if node.level != level:
            raise TreeCorrupt(
                f"expected a level-{level} node at page {entry.child}, "
                f"found level {node.level}"
            )
        if node.level == 0:
            dropped.extend(node.entries)
        else:
            for child_entry in node.entries:
                self._free_subtree(child_entry, level - 1, dropped)
        self.pager.free(entry.child)

    # ------------------------------------------------------------------
    # Underflow maintenance (delete step 5)
    # ------------------------------------------------------------------

    def _fix_underflows(self, node: Node, positions: list[int]) -> None:
        """Merge or rotate children that dropped below half full."""
        # Positions shift as merges remove entries; walk right-to-left.
        for position in sorted(set(positions), reverse=True):
            if position >= len(node.entries):
                position = len(node.entries) - 1
            if position < 0 or len(node.entries) <= 1:
                continue
            self._fix_child(node, position)

    def _fix_child(self, node: Node, index: int) -> None:
        entry = node.entries[index]
        child = self.pager.read(entry.child)
        if len(child.entries) >= self.min_entries:
            return
        sibling_index = index - 1 if index > 0 else index + 1
        if not 0 <= sibling_index < len(node.entries):
            return
        left_index = min(index, sibling_index)
        right_index = max(index, sibling_index)
        left_entry = node.entries[left_index]
        right_entry = node.entries[right_index]
        left = self.pager.read(left_entry.child) if left_entry is not entry else child
        right = (
            self.pager.read(right_entry.child) if right_entry is not entry else child
        )
        if len(left.entries) + len(right.entries) <= self.fanout:
            # Merge right into left; free the right page.
            left.entries = left.entries + right.entries
            new_left = self.pager.write(left_entry.child, left)
            self.pager.free(right_entry.child)
            node.entries[left_index] = Entry(left.total_bytes, new_left, 0)
            del node.entries[right_index]
        else:
            # Rotate: even the entries out between the two nodes.
            combined = left.entries + right.entries
            split = len(combined) // 2
            left.entries = combined[:split]
            right.entries = combined[split:]
            new_left = self.pager.write(left_entry.child, left)
            new_right = self.pager.write(right_entry.child, right)
            node.entries[left_index] = Entry(left.total_bytes, new_left, 0)
            node.entries[right_index] = Entry(right.total_bytes, new_right, 0)

    # ------------------------------------------------------------------
    # Root maintenance
    # ------------------------------------------------------------------

    def _finish_root(self, root: Node) -> None:
        """Apply the root rules and write the root page in place."""
        # Grow: the root holds at most root_fanout entries (footnote 3's
        # byte limit); overflow pushes entries down into new children.
        while len(root.entries) > self.root_fanout:
            parts = self._partition_for_root(root.entries)
            child_entries = []
            for part in parts:
                page = self.pager.allocate()
                child = Node(root.level, part)
                self.pager.write_new(page, child)
                child_entries.append(Entry(child.total_bytes, page, 0))
            root.level += 1
            root.entries = child_entries
        # Shrink: "If the root has exactly one child, copy the pairs of
        # this child to the root and repeat this step."
        while root.level > 0 and len(root.entries) == 1:
            child_page = root.entries[0].child
            child = self.pager.read(child_page)
            root.level = child.level
            root.entries = child.entries
            self.pager.free(child_page)
        if not root.entries:
            root.level = 0
        self.pager.write_root(self.root_page, root)

    def _partition_for_root(self, entries: list[Entry]) -> list[list[Entry]]:
        """Split root overflow into balanced children.

        With an unrestricted root, overflow means more than ``fanout``
        entries, so the balanced parts are automatically at least half
        full.  With a byte-limited root (footnote 3) the tree may be so
        small that half-fullness is unattainable for the root's direct
        children; they are allowed to be under-full (and
        :meth:`verify` knows this).
        """
        n_parts = max(2, ceil_div(len(entries), self.fanout))
        base = len(entries) // n_parts
        extra = len(entries) % n_parts
        parts = []
        position = 0
        for i in range(n_parts):
            take = base + (1 if i < extra else 0)
            parts.append(entries[position : position + take])
            position += take
        if any(not p for p in parts):
            raise TreeCorrupt("root partition produced an empty child")
        return parts

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self) -> None:
        """Check every structural invariant; raises TreeCorrupt on failure.

        * counts: each internal entry equals its child's total;
        * levels: each child is exactly one level below its parent;
        * occupancy: non-root nodes are at least half full;
        * leaf entries: positive byte counts, pages >= ceil(count/PS),
          and only the rightmost segment may hold spare pages;
        * segments and index pages are pairwise disjoint.
        """
        root = self.read_root()
        claimed_pages: list[tuple[int, int, str]] = [(self.root_page, 1, "root")]
        leaf_entries: list[Entry] = []

        # A byte-limited root (footnote 3) can force under-half-full
        # nodes: a root capped at k entries may have to push fewer than
        # 2*min entries down into children.  Such trees trade the
        # occupancy floor for the embeddable root.
        root_is_limited = self.root_fanout < self.fanout
        occupancy_floor = 1 if root_is_limited else self.min_entries

        def walk(node: Node, is_root: bool, under_root: bool = False) -> int:
            if not is_root and len(node.entries) < occupancy_floor:
                raise TreeCorrupt(
                    f"non-root node has {len(node.entries)} entries; "
                    f"minimum is {occupancy_floor}"
                )
            if len(node.entries) > (self.root_fanout if is_root else self.fanout):
                raise TreeCorrupt("node exceeds its fan-out")
            total = 0
            for entry in node.entries:
                if node.level == 0:
                    if entry.count <= 0:
                        raise TreeCorrupt(f"leaf entry with {entry.count} bytes")
                    needed = ceil_div(entry.count, self.config.page_size)
                    if entry.pages < needed:
                        raise TreeCorrupt(
                            f"segment at page {entry.child} has {entry.pages} "
                            f"pages for {entry.count} bytes"
                        )
                    claimed_pages.append((entry.child, entry.pages, "segment"))
                    leaf_entries.append(entry)
                else:
                    child = self.pager.read(entry.child)
                    if child.level != node.level - 1:
                        raise TreeCorrupt(
                            f"level skew: node level {node.level} has child "
                            f"level {child.level}"
                        )
                    claimed_pages.append((entry.child, 1, "index"))
                    child_total = walk(child, False, under_root=is_root)
                    if child_total != entry.count:
                        raise TreeCorrupt(
                            f"entry says {entry.count} bytes, child holds "
                            f"{child_total}"
                        )
                total += entry.count
            return total

        if root.entries:
            walk(root, True)
        # Spare capacity is legal only in the rightmost segment.
        for entry in leaf_entries[:-1]:
            exact = ceil_div(entry.count, self.config.page_size)
            if entry.pages != exact:
                raise TreeCorrupt(
                    f"non-tail segment at page {entry.child} holds spare pages "
                    f"({entry.pages} vs {exact})"
                )
        # Disjointness.
        spans = sorted((p, p + n, what) for p, n, what in claimed_pages)
        for (a_lo, a_hi, a_what), (b_lo, b_hi, b_what) in zip(spans, spans[1:]):
            if b_lo < a_hi:
                raise TreeCorrupt(
                    f"{a_what} pages [{a_lo},{a_hi}) overlap {b_what} pages "
                    f"[{b_lo},{b_hi})"
                )
