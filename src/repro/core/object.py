"""The large object handle: the public face of Section 4.

A :class:`LargeObject` bundles the positional tree, the buddy allocator,
and the leaf-segment I/O into the operation set the paper specifies:
append (with optional size hint), read, replace, insert, delete,
truncate, plus trim and introspection (size, segment map, utilization,
I/O-free structural verification).

Recovery integration (Section 4.5) is by composition: an attached
:class:`~repro.recovery.recovery.RecoveryManager` supplies the page log
used by replace/append and wraps structural updates in shadowed
transactions; without one, the object behaves like the EOS prototype
("a single process, with no support for transactions").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buddy.manager import BuddyManager
from repro.core.append import append as _append
from repro.core.append import trim as _trim
from repro.core.config import EOSConfig
from repro.core.delete import delete_range as _delete
from repro.core.delete import truncate as _truncate
from repro.core.insert import insert as _insert
from repro.core.node import Entry
from repro.core.search import read_range as _read
from repro.core.search import read_range_into as _read_into
from repro.core.search import replace_range as _replace
from repro.core.segio import SegmentIO
from repro.core.threshold import ThresholdPolicy
from repro.core.tree import LargeObjectTree
from repro.obs.tracer import NULL_OBS, Observability
from repro.storage.page import PageId
from repro.util.bitops import ceil_div


@dataclass(frozen=True)
class ObjectStats:
    """Space accounting for one large object."""

    size_bytes: int
    segments: int
    leaf_pages: int
    index_pages: int  # includes the root page
    height: int

    @property
    def total_pages(self) -> int:
        return self.leaf_pages + self.index_pages

    def utilization(self, page_size: int) -> float:
        """Live bytes over all allocated bytes (leaves + index)."""
        if self.total_pages == 0:
            return 0.0
        return self.size_bytes / (self.total_pages * page_size)

    def leaf_utilization(self, page_size: int) -> float:
        """Live bytes over leaf bytes only — the paper's 1 - 1/2T metric."""
        if self.leaf_pages == 0:
            return 0.0
        return self.size_bytes / (self.leaf_pages * page_size)


class LargeObject:
    """One large dynamic object, addressed by byte position."""

    def __init__(
        self,
        tree: LargeObjectTree,
        segio: SegmentIO,
        buddy: BuddyManager,
        *,
        size_hint: int | None = None,
        page_log=None,
        obs: Observability | None = None,
    ) -> None:
        self.tree = tree
        self.segio = segio
        self.buddy = buddy
        self.size_hint = size_hint
        self.page_log = page_log
        self.obs = obs if obs is not None else NULL_OBS
        self.policy = ThresholdPolicy(
            tree.config.threshold, tree.config.adaptive_threshold
        )

    def _span(self, op: str, **attrs):
        """An ``op.<name>`` span tagged with this object's identity."""
        return self.obs.tracer.span(
            f"op.{op}", oid=getattr(self, "oid", None), **attrs
        )

    # -- identity -----------------------------------------------------------

    @property
    def root_page(self) -> PageId:
        """Where the root lives; "the placement of the root ... is left
        to the client"."""
        return self.tree.root_page

    @property
    def config(self) -> EOSConfig:
        return self.tree.config

    # -- reads ----------------------------------------------------------------

    def size(self) -> int:
        """Object size in bytes (the root's rightmost count)."""
        return self.tree.size()

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset`` (Section 4.2)."""
        with self._span("read", offset=offset, bytes=length):
            return _read(self.tree, self.segio, offset, length)

    def read_into(self, offset: int, length: int, dest) -> int:
        """Read ``length`` bytes at ``offset`` into a writable buffer.

        The zero-copy variant of :meth:`read`: coalesced page views land
        directly in ``dest`` with no intermediate buffer.  Returns the
        byte count written.
        """
        with self._span("read", offset=offset, bytes=length):
            return _read_into(self.tree, self.segio, offset, length, dest)

    def read_all(self) -> bytes:
        """Read the whole object."""
        return self.read(0, self.size())

    # -- updates ----------------------------------------------------------------

    def append(self, data) -> None:
        """Append bytes at the end (Section 4.1).

        Carries the creation-time size hint while the object is still
        below it, so known-size objects land in exactly-sized segments.
        """
        hint = self.size_hint
        if hint is not None and self.size() >= hint:
            hint = None
        with self._span("append", bytes=len(data)):
            _append(
                self.tree, self.segio, self.buddy, data,
                size_hint=hint, log=self.page_log,
            )

    def replace(self, offset: int, data) -> None:
        """Overwrite bytes in place; size is unchanged (Section 4.2)."""
        with self._span("replace", offset=offset, bytes=len(data)):
            _replace(self.tree, self.segio, offset, data, log=self.page_log)

    def insert(self, offset: int, data: bytes) -> None:
        """Insert bytes at ``offset`` (Section 4.3.1)."""
        with self._span("insert", offset=offset, bytes=len(data)):
            _insert(
                self.tree, self.segio, self.buddy, offset, data,
                policy=self.policy, log=self.page_log,
            )

    def delete(self, offset: int, length: int) -> None:
        """Delete a byte range (Section 4.3.2)."""
        with self._span("delete", offset=offset, bytes=length):
            _delete(
                self.tree, self.segio, self.buddy, offset, length,
                policy=self.policy,
            )

    def truncate(self, new_size: int) -> None:
        """Delete from ``new_size`` to the end."""
        with self._span("truncate", new_size=new_size):
            _truncate(
                self.tree, self.segio, self.buddy, new_size, policy=self.policy
            )

    def trim(self) -> int:
        """Return the tail segment's spare pages to free space (4.1)."""
        with self._span("trim"):
            return _trim(self.tree, self.buddy)

    def compact(self) -> int:
        """Rewrite the object into freshly allocated exact-size segments.

        The threshold mechanism (Section 4.4) *preserves* clustering
        incrementally; compaction *restores* it wholesale after an
        edit-heavy period — the object ends up as if created with a size
        hint: maximum-size segments plus one trimmed remainder, with
        sub-page waste.  Costs a full read and a full write.  Returns the
        number of segments the object has afterwards.
        """
        size = self.size()
        if size == 0:
            return 0
        with self._span("compact", bytes=size):
            data = self.read_all()
            # Write the replacement first, then swap and free the old pages —
            # the same never-overwrite discipline as insert/delete.
            from repro.core.segio import allocate_and_write

            new_segments = allocate_and_write(self.segio, self.buddy, data)
            new_entries = [
                Entry(count, ref.first_page, ref.n_pages)
                for ref, count in new_segments
            ]
            dropped = self.tree.replace_leaf_range(0, size, new_entries)
            for entry in dropped:
                self.buddy.free(entry.child, entry.pages)
            return len(new_entries)

    def set_threshold(self, threshold: int, *, adaptive: bool | None = None) -> None:
        """Change T for subsequent updates.

        "The threshold value does not have to be constant during the
        lifetime of a large object" — applications may adjust it every
        time the object is opened for updates.
        """
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1 page, got {threshold}")
        if adaptive is None:
            adaptive = self.policy.adaptive
        self.policy = ThresholdPolicy(threshold, adaptive)

    def destroy(self) -> None:
        """Delete all content and free the root page."""
        size = self.size()
        if size:
            self.delete(0, size)
        self.tree.pager.free(self.tree.root_page)

    # -- introspection ------------------------------------------------------

    def segments(self) -> list[tuple[int, Entry]]:
        """(global_offset, entry) for every leaf segment, left to right."""
        return self.tree.leaf_entries()

    def extent_runs(self) -> list[tuple[int, int]]:
        """Physically contiguous ``(first_page, n_pages)`` runs of the leaves.

        Adjacent leaf segments whose page runs abut on disk are merged:
        the result is the sequence of disk runs a full sequential scan
        visits (index pages excluded), the basis of the layout metrics
        in :mod:`repro.obs.health`.
        """
        runs: list[tuple[int, int]] = []
        for _, entry in self.tree.leaf_entries():
            if runs and runs[-1][0] + runs[-1][1] == entry.child:
                first, pages = runs[-1]
                runs[-1] = (first, pages + entry.pages)
            else:
                runs.append((entry.child, entry.pages))
        return runs

    def stats(self) -> ObjectStats:
        """Space accounting (reads the whole index, no leaf I/O)."""
        size = self.tree.size()
        leaf_pages = 0
        segments = 0
        index_pages = 1  # the root

        def walk(node) -> None:
            nonlocal leaf_pages, segments, index_pages
            for entry in node.entries:
                if node.level == 0:
                    segments += 1
                    leaf_pages += entry.pages
                else:
                    index_pages += 1
                    walk(self.tree.pager.read(entry.child))

        root = self.tree.read_root()
        walk(root)
        return ObjectStats(
            size_bytes=size,
            segments=segments,
            leaf_pages=leaf_pages,
            index_pages=index_pages,
            height=root.level + 1,
        )

    def mean_segment_pages(self) -> float:
        """Average leaf-segment size in pages (clustering metric, E3)."""
        stats = self.stats()
        return stats.leaf_pages / stats.segments if stats.segments else 0.0

    def verify(self) -> None:
        """Check all structural invariants plus content accounting."""
        self.tree.verify()
        # Cross-check: page counts of non-tail segments are exact.
        entries = self.tree.leaf_entries()
        ps = self.config.page_size
        for _, entry in entries[:-1]:
            if entry.pages != ceil_div(entry.count, ps):
                raise AssertionError("non-tail segment with spare pages")
