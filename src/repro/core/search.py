"""Search (byte-range read) and replace (paper Section 4.2).

The search algorithm descends the positional tree by cumulative counts
and then reads, "in one step", all pages of the target segment that the
requested range covers — one seek plus N transfers per segment touched.
The worked example (read 320 bytes at offset 1470 of Figure 5.c) costs 3
seeks + 6 page transfers; on the single-segment object of Figure 5.a it
costs 1 seek + 5 transfers.  Both are reproduced in the tests and in
``benchmarks/bench_fig6_search_cost.py``.

Replace uses the same traversal to locate the range, then overwrites the
affected pages in place.  It is the one update that touches leaf pages
without touching the index, so it is protected by logging rather than
shadowing (Section 4.5); the optional ``log`` callback receives each
page's pre- and post-image.
"""

from __future__ import annotations

from typing import Callable

from repro.core.segio import SegmentIO
from repro.core.tree import LargeObjectTree
from repro.errors import ByteRangeError

# Callback signature: (physical_page, pre_image, post_image).
PageLog = Callable[[int, bytes, bytes], None]


def read_range(
    tree: LargeObjectTree, segio: SegmentIO, offset: int, length: int
) -> bytes:
    """Read ``length`` bytes starting at byte ``offset``.

    Index pages are read through the buffer pool during the descent;
    each leaf segment touched contributes one contiguous multi-page
    read.
    """
    size = tree.size()
    if length < 0 or offset < 0 or offset + length > size:
        raise ByteRangeError(offset, length, size)
    if length == 0:
        return b""
    lo, hi = offset, offset + length
    chunks: list[bytes] = []
    for seg_offset, entry in tree.iter_segments(lo, hi):
        local_lo = max(lo, seg_offset) - seg_offset
        local_hi = min(hi, seg_offset + entry.count) - seg_offset
        chunks.append(segio.read_bytes(entry.child, local_lo, local_hi))
    data = b"".join(chunks)
    if len(data) != length:
        raise ByteRangeError(offset, length, size)
    return data


def replace_range(
    tree: LargeObjectTree,
    segio: SegmentIO,
    offset: int,
    data: bytes,
    log: PageLog | None = None,
) -> None:
    """Overwrite ``len(data)`` bytes in place starting at ``offset``.

    The object's size and structure are unchanged — this is the paper's
    byte-range *replace*, not insert.  Every affected page is rewritten
    via read-modify-write of the covering span (boundary pages need
    their unmodified bytes preserved); with logging enabled, each page's
    old and new images go to the log.
    """
    size = tree.size()
    if offset < 0 or offset + len(data) > size:
        raise ByteRangeError(offset, len(data), size)
    if not data:
        return
    ps = segio.page_size
    lo, hi = offset, offset + len(data)
    for seg_offset, entry in tree.iter_segments(lo, hi):
        local_lo = max(lo, seg_offset) - seg_offset
        local_hi = min(hi, seg_offset + entry.count) - seg_offset
        page_lo = local_lo // ps
        page_hi = (local_hi - 1) // ps
        span, base = segio.read_span(entry.child, page_lo, page_hi)
        patched = bytearray(span)
        start = local_lo - base
        patched[start : start + (local_hi - local_lo)] = data[
            seg_offset + local_lo - lo : seg_offset + local_hi - lo
        ]
        if log is not None:
            for i in range(page_hi - page_lo + 1):
                pre = span[i * ps : (i + 1) * ps]
                post = bytes(patched[i * ps : (i + 1) * ps])
                if pre != post:
                    log(entry.child + page_lo + i, pre, post)
        segio.write_segment(entry.child, bytes(patched), at_page=page_lo)
