"""Search (byte-range read) and replace (paper Section 4.2).

The search algorithm descends the positional tree by cumulative counts
and then reads, "in one step", all pages of the target segment that the
requested range covers — one seek plus N transfers per segment touched.
The worked example (read 320 bytes at offset 1470 of Figure 5.c) costs 3
seeks + 6 page transfers; on the single-segment object of Figure 5.a it
costs 1 seek + 5 transfers.  Both are reproduced in the tests and in
``benchmarks/bench_fig6_search_cost.py``.

Reads are *planned first*: the index descent materializes the list of
leaf transfers, physically adjacent segments are coalesced into single
multi-page runs (one seek per contiguous run — the paper's cost model),
and the result is assembled from borrowed page views in one pass, so a
ranged read costs exactly one Python-level payload copy however many
segments it spans.

Replace uses the same traversal to locate the range, then overwrites the
affected pages in place.  It is the one update that touches leaf pages
without touching the index, so it is protected by logging rather than
shadowing (Section 4.5); the optional ``log`` callback receives each
page's pre- and post-image.
"""

from __future__ import annotations

from typing import Callable

from repro.core.segio import SegmentIO
from repro.core.tree import LargeObjectTree
from repro.errors import ByteRangeError
from repro.util import copytrace

# Callback signature: (physical_page, pre_image, post_image).
PageLog = Callable[[int, bytes, bytes], None]


def _plan_reads(
    tree: LargeObjectTree, segio: SegmentIO, lo: int, hi: int
) -> list[tuple[int, int, list[tuple[int, int]]]]:
    """Plan the leaf transfers covering bytes [lo, hi).

    Returns coalesced runs ``(first_page, n_pages, parts)`` where each
    part ``(run_byte_offset, take)`` names a payload slice inside the
    run's page span.  Consecutive segments that are physically adjacent
    on disk merge into one run: one transfer call, one seek at most.
    The index descent completes before any leaf I/O is issued, so the
    page views borrowed per run stay valid through assembly.
    """
    ps = segio.page_size
    runs: list[tuple[int, int, list[tuple[int, int]]]] = []
    for seg_offset, entry in list(tree.iter_segments(lo, hi)):
        local_lo = max(lo, seg_offset) - seg_offset
        local_hi = min(hi, seg_offset + entry.count) - seg_offset
        if local_lo >= local_hi:
            continue
        page_lo = local_lo // ps
        page_hi = (local_hi - 1) // ps
        first = entry.child + page_lo
        n_pages = page_hi - page_lo + 1
        skip = local_lo - page_lo * ps
        take = local_hi - local_lo
        if runs and runs[-1][0] + runs[-1][1] == first:
            prev_first, prev_pages, parts = runs[-1]
            parts.append((prev_pages * ps + skip, take))
            runs[-1] = (prev_first, prev_pages + n_pages, parts)
        else:
            runs.append((first, n_pages, [(skip, take)]))
    return runs


def read_range(
    tree: LargeObjectTree, segio: SegmentIO, offset: int, length: int
) -> bytes:
    """Read ``length`` bytes starting at byte ``offset``.

    Index pages are read through the buffer pool during the descent;
    leaf segments are then read as coalesced contiguous runs and the
    result is joined from borrowed views — one payload copy total.
    """
    size = tree.size()
    if length < 0 or offset < 0 or offset + length > size:
        raise ByteRangeError(offset, length, size)
    if length == 0:
        return b""
    pieces: list[memoryview] = []
    for first, n_pages, parts in _plan_reads(tree, segio, offset, offset + length):
        view = segio.view_run(first, n_pages)
        for part_off, take in parts:
            pieces.append(view[part_off : part_off + take])
    data = b"".join(pieces)
    if len(data) != length:
        raise ByteRangeError(offset, length, size)
    copytrace.record("search.assemble", length)
    return data


def read_range_into(
    tree: LargeObjectTree, segio: SegmentIO, offset: int, length: int, dest
) -> int:
    """Read ``length`` bytes at ``offset`` into a caller-supplied buffer.

    ``dest`` is any writable buffer of at least ``length`` bytes; page
    views are copied straight into it — zero intermediate buffers.
    Returns the byte count written.
    """
    size = tree.size()
    if length < 0 or offset < 0 or offset + length > size:
        raise ByteRangeError(offset, length, size)
    out = memoryview(dest).cast("B")
    if len(out) < length:
        raise ByteRangeError(offset, length, len(out))
    position = 0
    for first, n_pages, parts in _plan_reads(tree, segio, offset, offset + length):
        view = segio.view_run(first, n_pages)
        for part_off, take in parts:
            out[position : position + take] = view[part_off : part_off + take]
            position += take
    if position != length:
        raise ByteRangeError(offset, length, size)
    copytrace.record("search.assemble_into", length)
    return position


def replace_range(
    tree: LargeObjectTree,
    segio: SegmentIO,
    offset: int,
    data,
    log: PageLog | None = None,
) -> None:
    """Overwrite ``len(data)`` bytes in place starting at ``offset``.

    The object's size and structure are unchanged — this is the paper's
    byte-range *replace*, not insert.  Every affected page is rewritten
    via read-modify-write of the covering span (boundary pages need
    their unmodified bytes preserved); with logging enabled, each page's
    old and new images go to the log.
    """
    size = tree.size()
    if offset < 0 or offset + len(data) > size:
        raise ByteRangeError(offset, len(data), size)
    if not len(data):
        return
    src = memoryview(data).cast("B")
    ps = segio.page_size
    lo, hi = offset, offset + len(src)
    for seg_offset, entry in tree.iter_segments(lo, hi):
        local_lo = max(lo, seg_offset) - seg_offset
        local_hi = min(hi, seg_offset + entry.count) - seg_offset
        page_lo = local_lo // ps
        page_hi = (local_hi - 1) // ps
        span, base = segio.read_span(entry.child, page_lo, page_hi)
        patched = bytearray(span)
        start = local_lo - base
        patched[start : start + (local_hi - local_lo)] = src[
            seg_offset + local_lo - lo : seg_offset + local_hi - lo
        ]
        if log is not None:
            for i in range(page_hi - page_lo + 1):
                pre = span[i * ps : (i + 1) * ps]
                post = copytrace.materialize(
                    memoryview(patched)[i * ps : (i + 1) * ps], "replace.log_post"
                )
                if pre != post:
                    log(entry.child + page_lo + i, pre, post)
        segio.write_segment(entry.child, patched, at_page=page_lo)
