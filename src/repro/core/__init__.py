"""The EOS large object manager (paper Section 4).

Layering within this package:

* :mod:`~repro.core.node` — positional-tree index nodes (Figure 5);
* :mod:`~repro.core.pager` — index-page storage policies (in-place vs
  the shadowing of Section 4.5);
* :mod:`~repro.core.tree` — descent and structural maintenance;
* :mod:`~repro.core.reshuffle` — byte/page reshuffling (4.3/4.4);
* :mod:`~repro.core.segio` — contiguous leaf-segment I/O;
* :mod:`~repro.core.search` / :mod:`~repro.core.append` /
  :mod:`~repro.core.insert` / :mod:`~repro.core.delete` — the four
  update operations plus read;
* :mod:`~repro.core.threshold` — fixed and adaptive threshold policies;
* :mod:`~repro.core.object` — the public :class:`LargeObject` handle.
"""

from repro.core.config import EOSConfig
from repro.core.node import Entry, Node, fanout, min_entries
from repro.core.object import LargeObject, ObjectStats
from repro.core.pager import InPlacePager, NodePager
from repro.core.reshuffle import ReshufflePlan, plan_reshuffle
from repro.core.stream import ObjectStream
from repro.core.threshold import ThresholdPolicy
from repro.core.tree import LargeObjectTree

__all__ = [
    "EOSConfig",
    "Entry",
    "Node",
    "fanout",
    "min_entries",
    "LargeObject",
    "ObjectStats",
    "InPlacePager",
    "NodePager",
    "ReshufflePlan",
    "plan_reshuffle",
    "ObjectStream",
    "ThresholdPolicy",
    "LargeObjectTree",
]
