"""Structured observability: tracing, metrics, and the stats facade.

The paper's claims are *cost* claims — piece-wise operations proportional
to the bytes touched, ~1 disk access per allocation, near-transfer-rate
scans — and this package is how the repository attributes those costs to
individual operations instead of reading three global counter bags:

* :mod:`repro.obs.tracer` — :class:`Tracer` produces nested spans
  (``op=append oid=7 bytes=65536`` with child spans for tree descent,
  buddy allocation and segment I/O), each carrying the seek/transfer
  delta the disk-head model recorded while the span was open;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` holds named
  counters, gauges and histograms (modelled-cost latencies, seek
  distributions, transfer-run lengths);
* :mod:`repro.obs.sinks` — pluggable receivers: an in-memory ring for
  tests, a JSON-lines file for offline analysis (rendered by
  ``python -m repro.tools.tracefmt``), and a human summary;
* :mod:`repro.obs.facade` — ``db.stats``: one snapshot/reset/delta
  surface over the disk, buffer-pool and allocator counters;
* :mod:`repro.obs.health` — storage health: the :class:`VolumeHealth`
  fragmentation/layout collector, decayed per-object heat, and the
  background :class:`HealthMonitor` with its jsonl time series.

Tracing is off by default: every component holds a shared
:data:`NULL_OBS` whose tracer and registry are no-op singletons, so hot
paths pay one attribute lookup and an empty method call::

    db = EOSDatabase.create(num_pages=8192)
    ring = RingSink()
    db.obs.enable(sinks=[ring])
    obj = db.create_object(b"...")
    obj.read(0, obj.size())
    print(SummarySink.render_records(ring.records))
"""

from repro.obs.facade import DatabaseStats, StatsDelta, StatsSnapshot
from repro.obs.flight import FlightRecorder, load_flight
from repro.obs.health import (
    HealthMonitor,
    HeatTracker,
    ObjectLayout,
    SpaceHealth,
    VolumeHealth,
    collect_volume_health,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prom import render_prometheus
from repro.obs.sinks import JsonLinesSink, RingSink, SummarySink
from repro.obs.summary import aggregate_spans, format_summary, format_tree
from repro.obs.tracer import (
    NULL_OBS,
    NULL_TRACER,
    NullTracer,
    Observability,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "DatabaseStats",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "HeatTracker",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "NullTracer",
    "ObjectLayout",
    "Observability",
    "RingSink",
    "Span",
    "SpaceHealth",
    "StatsDelta",
    "StatsSnapshot",
    "SummarySink",
    "Tracer",
    "VolumeHealth",
    "aggregate_spans",
    "collect_volume_health",
    "format_summary",
    "format_tree",
    "load_flight",
    "render_prometheus",
]
