"""Named counters, gauges and histograms.

Instruments are created lazily through a :class:`MetricsRegistry` and
identified by dotted names (``span.op.append.cost_ms``,
``disk.read_run_pages``).  A registry snapshot is a plain dict of plain
values, so sinks can serialise it without knowing instrument internals.

When observability is disabled the registry in use is
:data:`NULL_METRICS`, whose instruments share a single no-op object —
recording into it costs one method call and touches no state.
"""

from __future__ import annotations

import bisect
from typing import Iterable

#: Default histogram boundaries.  Values are unit-free: the same ladder
#: works for modelled milliseconds, seek counts and page-run lengths.
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def snapshot(self) -> int:
        """The current value."""
        return self.value

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def snapshot(self) -> float:
        """The current value."""
        return self.value

    def reset(self) -> None:
        """Zero the gauge."""
        self.value = 0.0


class Histogram:
    """A fixed-boundary histogram with count/sum/min/max.

    ``bounds`` are upper-inclusive bucket edges; one overflow bucket
    catches everything above the last edge.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Count, sum, min/max/mean and labelled bucket counts."""
        labels = [f"<={b:g}" for b in self.bounds] + [f">{self.bounds[-1]:g}"]
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
            "buckets": dict(zip(labels, self.buckets)),
        }

    def reset(self) -> None:
        """Zero all buckets and statistics."""
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None


class MetricsRegistry:
    """Get-or-create access to named instruments, plus bulk snapshot/reset."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Counter):
            raise ValueError(f"metric {name!r} already exists with another type")
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Gauge):
            raise ValueError(f"metric {name!r} already exists with another type")
        return instrument

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, bounds)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise ValueError(f"metric {name!r} already exists with another type")
        return instrument

    def snapshot(self) -> dict:
        """All instruments as plain values, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """One object stands in for every instrument when metrics are off."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """A registry whose instruments discard everything."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        """Always empty."""
        return {}

    def reset(self) -> None:
        """Nothing to reset."""

    def __len__(self) -> int:
        return 0


NULL_METRICS = NullMetrics()
