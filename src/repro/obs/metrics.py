"""Named counters, gauges and histograms.

Instruments are created lazily through a :class:`MetricsRegistry` and
identified by dotted names (``span.op.append.cost_ms``,
``disk.read_run_pages``).  A registry snapshot is a plain dict of plain
values, so sinks can serialise it without knowing instrument internals.

Every primitive is thread-safe: the serving layer mutates instruments
from executor worker threads while the event loop reads gauges and the
metrics endpoint snapshots the registry, so ``inc``/``set``/``observe``
and ``snapshot``/``reset`` all take the instrument's lock.  The lock is
per-instrument, so contention is limited to callers of the same metric.

When observability is disabled the registry in use is
:data:`NULL_METRICS`, whose instruments share a single no-op object —
recording into it costs one method call and touches no state.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable

#: Default histogram boundaries.  Values are unit-free: the same ladder
#: works for modelled milliseconds, seek counts and page-run lengths.
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self.value += amount

    def snapshot(self) -> int:
        """The current value."""
        with self._lock:
            return self.value

    def reset(self) -> None:
        """Zero the counter."""
        with self._lock:
            self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self.value = value

    def snapshot(self) -> float:
        """The current value."""
        with self._lock:
            return self.value

    def reset(self) -> None:
        """Zero the gauge."""
        with self._lock:
            self.value = 0.0


class Histogram:
    """A fixed-boundary histogram with count/sum/min/max.

    ``bounds`` are upper-inclusive bucket edges; one overflow bucket
    catches everything above the last edge.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.buckets[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the containing bucket (the overflow
        bucket interpolates toward the recorded max), clamped to the
        observed min/max.  Returns 0.0 when nothing has been observed.
        Estimates are monotone in ``q``, so p50 <= p95 <= p99 always
        holds even for skewed distributions.
        """
        with self._lock:
            return self._percentile(q)

    def _percentile(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        if q <= 0.0:
            return float(self.min)
        if q >= 1.0:
            return float(self.max)
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if cum + n >= rank:
                lo = float(self.bounds[i - 1]) if i > 0 else 0.0
                hi = (
                    float(self.bounds[i])
                    if i < len(self.bounds)
                    else float(self.max)
                )
                value = lo + (hi - lo) * ((rank - cum) / n)
                return min(max(value, float(self.min)), float(self.max))
            cum += n
        return float(self.max)

    def snapshot(self) -> dict:
        """Count, sum, min/max/mean, p50/p95/p99, labelled bucket counts."""
        with self._lock:
            labels = [f"<={b:g}" for b in self.bounds] + [f">{self.bounds[-1]:g}"]
            return {
                "count": self.count,
                "sum": round(self.total, 6),
                "min": self.min,
                "max": self.max,
                "mean": round(self.mean, 6),
                "p50": round(self._percentile(0.50), 6),
                "p95": round(self._percentile(0.95), 6),
                "p99": round(self._percentile(0.99), 6),
                "buckets": dict(zip(labels, self.buckets)),
            }

    def reset(self) -> None:
        """Zero all buckets and statistics."""
        with self._lock:
            self.buckets = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None


class MetricsRegistry:
    """Get-or-create access to named instruments, plus bulk snapshot/reset."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, *args)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(f"metric {name!r} already exists with another type")
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        return self._get_or_create(name, Histogram, bounds)

    def instruments(self) -> list[tuple[str, Counter | Gauge | Histogram]]:
        """``(name, instrument)`` pairs, sorted by name (for exposition)."""
        with self._lock:
            return sorted(self._instruments.items())

    def snapshot(self) -> dict:
        """All instruments as plain values, sorted by name."""
        return {name: inst.snapshot() for name, inst in self.instruments()}

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for _, instrument in self.instruments():
            instrument.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


class _NullInstrument:
    """One object stands in for every instrument when metrics are off."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """A registry whose instruments discard everything."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> _NullInstrument:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT

    def instruments(self) -> list:
        """Always empty."""
        return []

    def snapshot(self) -> dict:
        """Always empty."""
        return {}

    def reset(self) -> None:
        """Nothing to reset."""

    def __len__(self) -> int:
        return 0


NULL_METRICS = NullMetrics()
