"""Span/metrics sinks: in-memory ring, JSON-lines file, human summary.

A sink is anything with ``on_span(record: dict)``; ``on_metrics``,
``flush`` and ``close`` are optional and discovered by ``getattr``.
Records are plain dicts (see :class:`~repro.obs.tracer.Tracer`), so
sinks never need to know about span internals.
"""

from __future__ import annotations

import io
import json
import os
from collections import deque

from repro.obs.summary import format_summary, format_tree


class RingSink:
    """Keeps the last ``capacity`` span records in memory (for tests)."""

    def __init__(self, capacity: int = 4096) -> None:
        self._ring: deque = deque(maxlen=capacity)
        self.metrics: dict | None = None

    def on_span(self, record: dict) -> None:
        """Store one finished-span record."""
        self._ring.append(record)

    def on_metrics(self, snapshot: dict) -> None:
        """Remember the latest metrics snapshot."""
        self.metrics = snapshot

    @property
    def records(self) -> list[dict]:
        """The retained records, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        """Drop all retained records and the metrics snapshot."""
        self._ring.clear()
        self.metrics = None

    def __len__(self) -> int:
        return len(self._ring)


class JsonLinesSink:
    """Appends one JSON object per finished span to a file.

    Span lines carry ``"kind": "span"``; the metrics snapshot pushed by
    :meth:`Observability.flush`/:meth:`close` is written as one
    ``"kind": "metrics"`` line.  ``python -m repro.tools.tracefmt``
    renders the result.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._file: io.TextIOBase | None = open(self.path, "w")

    def on_span(self, record: dict) -> None:
        """Write the record as one compact JSON line."""
        if self._file is None:
            raise ValueError(f"trace sink {self.path!r} is closed")
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")

    def on_metrics(self, snapshot: dict) -> None:
        """Write the metrics snapshot as one ``kind: metrics`` line."""
        if self._file is None:
            raise ValueError(f"trace sink {self.path!r} is closed")
        line = {"kind": "metrics", "metrics": snapshot}
        self._file.write(json.dumps(line, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        """Flush buffered lines to the file."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Close the file; further writes raise ``ValueError``."""
        if self._file is not None:
            self._file.close()
            self._file = None


class SummarySink:
    """Collects records and renders a per-operation summary on demand."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.metrics: dict | None = None

    def on_span(self, record: dict) -> None:
        """Collect one finished-span record."""
        self.records.append(record)

    def on_metrics(self, snapshot: dict) -> None:
        """Remember the latest metrics snapshot."""
        self.metrics = snapshot

    def render(self, *, tree: bool = False) -> str:
        """The aggregate table, optionally preceded by the span tree."""
        return self.render_records(self.records, tree=tree)

    @staticmethod
    def render_records(records: list[dict], *, tree: bool = False) -> str:
        """Render any record list (used by the tracefmt CLI)."""
        parts = []
        if tree:
            parts.append(format_tree(records))
        parts.append(format_summary(records))
        return "\n\n".join(parts)
