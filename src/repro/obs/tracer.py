"""Nested spans with per-span I/O deltas, and the per-database bundle.

A :class:`Span` is opened with ``with tracer.span("op.append", oid=7,
bytes=65536):`` and nests by call structure: spans opened while another
is active become its children.  At entry the tracer snapshots the bound
:class:`~repro.storage.iostats.IOStats`; at exit it computes

* ``io`` — the cumulative seek/transfer delta over the span (children
  included), straight from the disk-head model, and
* ``self_io`` — ``io`` minus the children's cumulative deltas, i.e. the
  I/O attributable to this span's own code,

plus the modelled cost of ``io`` under the bound
:class:`~repro.storage.geometry.DiskGeometry`.  Finished spans are
rendered to plain dicts and pushed to every sink; per-name counters and
cost/seek histograms are recorded into the metrics registry.

:class:`Observability` is the per-database bundle: it starts disabled
(no-op tracer, no-op registry) and :meth:`Observability.enable` swaps in
live instances — components hold the bundle, not the tracer, so a
database can be observed without rebuilding it.  :data:`NULL_OBS` is the
shared always-disabled bundle that standalone components default to.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.storage.geometry import DISK_1992, DiskGeometry


class NullSpan:
    """The span produced by a disabled tracer: enters, exits, records nothing."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        """Discard the attributes."""
        return self

    def under(self, trace_id: int, parent_id: int | None = None,
              *, remote: bool = False) -> "NullSpan":
        """Discard the preset context."""
        return self


_NULL_SPAN = NullSpan()


class NullTracer:
    """A tracer whose spans are one shared no-op object."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs) -> NullSpan:
        """The shared no-op span."""
        return _NULL_SPAN

    def new_span_id(self) -> int:
        """Disabled tracers allocate nothing."""
        return 0

    def new_trace_id(self) -> int:
        """Disabled tracers allocate nothing."""
        return 0

    def record_span(self, name: str, **kwargs) -> None:
        """Discard the hand-built record."""


NULL_TRACER = NullTracer()


class Span:
    """One timed, I/O-accounted region of work."""

    __slots__ = (
        "tracer", "name", "attrs", "trace_id", "span_id", "parent_id",
        "elapsed_ms", "io", "self_io", "cost_ms", "error", "remote_parent",
        "_t0", "_io0", "_child_io", "_preset",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: int | None = None
        self.elapsed_ms = 0.0
        self.io = (0, 0, 0)        # (seeks, page_reads, page_writes)
        self.self_io = (0, 0, 0)
        self.cost_ms = 0.0
        self.error: str | None = None
        self.remote_parent = False
        self._t0 = 0.0
        self._io0 = (0, 0, 0)
        self._child_io = [0, 0, 0]
        self._preset: tuple[int, int | None, bool] | None = None

    def set(self, **attrs) -> "Span":
        """Attach more attributes mid-span (e.g. the allocation result)."""
        self.attrs.update(attrs)
        return self

    def under(self, trace_id: int, parent_id: int | None = None,
              *, remote: bool = False) -> "Span":
        """Preset the trace context this span roots under when it lands at
        the bottom of the tracer's stack.

        Used by the serving layer to hang a worker-thread span tree under
        a per-request root (``remote=False``) or a client-propagated wire
        context (``remote=True``).  Ignored when the span nests under an
        already-open local span — call structure wins.
        """
        self._preset = (trace_id, parent_id, remote)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.error = exc_type.__name__
        self.tracer._pop(self)
        return False


class Tracer:
    """Produces spans, captures their I/O deltas, and feeds the sinks."""

    enabled = True

    def __init__(
        self,
        iostats=None,
        *,
        metrics=NULL_METRICS,
        sinks: Iterable = (),
        geometry: DiskGeometry = DISK_1992,
        page_size: int = 4096,
        first_trace_id: int = 1,
        first_span_id: int = 1,
    ) -> None:
        self.iostats = iostats
        self.metrics = metrics
        self.sinks = list(sinks)
        self.geometry = geometry
        self.page_size = page_size
        self._stack: list[Span] = []
        self._next_span = first_span_id
        self._next_trace = first_trace_id
        # Span/trace ids are handed out to the serving layer from both the
        # event loop and executor threads; emission interleaves the same
        # way, so both take small locks.
        self._id_lock = threading.Lock()
        self._emit_lock = threading.Lock()

    def span(self, name: str, **attrs) -> Span:
        """A new span; it joins the trace tree when entered."""
        return Span(self, name, attrs)

    def new_span_id(self) -> int:
        """Allocate a span id (thread-safe; for hand-built records)."""
        with self._id_lock:
            span_id = self._next_span
            self._next_span += 1
            return span_id

    def new_trace_id(self) -> int:
        """Allocate a trace id (thread-safe; for hand-built records)."""
        with self._id_lock:
            trace_id = self._next_trace
            self._next_trace += 1
            return trace_id

    # -- span lifecycle ------------------------------------------------------

    def _io_now(self) -> tuple[int, int, int]:
        stats = self.iostats
        if stats is None:
            return (0, 0, 0)
        return (stats.seeks, stats.page_reads, stats.page_writes)

    def _push(self, span: Span) -> None:
        span.span_id = self.new_span_id()
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
        elif span._preset is not None:
            span.trace_id, span.parent_id, span.remote_parent = span._preset
        else:
            span.parent_id = None
            span.trace_id = self.new_trace_id()
        span._t0 = time.perf_counter()
        span._io0 = self._io_now()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not any(s is span for s in self._stack):
            return  # double exit; already finished
        # Tolerate mis-nested exits: finish still-open children first, so
        # their I/O lands in this span's child accumulator.
        while self._stack[-1] is not span:
            self._pop(self._stack[-1])
        self._stack.pop()
        span.elapsed_ms = (time.perf_counter() - span._t0) * 1000.0
        now = self._io_now()
        span.io = tuple(a - b for a, b in zip(now, span._io0))
        span.self_io = tuple(a - b for a, b in zip(span.io, span._child_io))
        span.cost_ms = self.geometry.cost_ms(
            span.io[0], span.io[1] + span.io[2], self.page_size
        )
        if self._stack:
            parent = self._stack[-1]
            for i in range(3):
                parent._child_io[i] += span.io[i]
        self._emit(span)

    def _pop_all(self) -> None:
        """Finish any spans left open (used when tracing is torn down)."""
        while self._stack:
            self._pop(self._stack[-1])

    def _emit(self, span: Span) -> None:
        metrics = self.metrics
        metrics.counter(f"span.{span.name}").inc()
        metrics.histogram(f"span.{span.name}.cost_ms").observe(span.cost_ms)
        metrics.histogram(f"span.{span.name}.seeks").observe(span.io[0])
        if not self.sinks:
            return
        record = {
            "kind": "span",
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "attrs": span.attrs,
            "elapsed_ms": round(span.elapsed_ms, 3),
            "io": {
                "seeks": span.io[0],
                "page_reads": span.io[1],
                "page_writes": span.io[2],
            },
            "self_io": {
                "seeks": span.self_io[0],
                "page_reads": span.self_io[1],
                "page_writes": span.self_io[2],
            },
            "cost_ms": round(span.cost_ms, 3),
        }
        if span.error is not None:
            record["error"] = span.error
        if span.remote_parent:
            record["remote_parent"] = True
        self._dispatch(record)

    def _dispatch(self, record: dict) -> None:
        with self._emit_lock:
            for sink in self.sinks:
                sink.on_span(record)

    def record_span(
        self,
        name: str,
        *,
        trace_id: int,
        span_id: int,
        parent_id: int | None = None,
        remote_parent: bool = False,
        elapsed_ms: float = 0.0,
        attrs: dict | None = None,
        error: str | None = None,
    ) -> None:
        """Emit a hand-built span record (no stack, no I/O attribution).

        The serving layer uses this for spans whose lifetime does not
        follow call structure — per-request roots that stay open across
        event-loop awaits while other requests interleave, and phase
        children (admission/lock/encode) measured with plain timers.
        Ids come from :meth:`new_span_id`/:meth:`new_trace_id`;
        ``remote_parent`` marks a ``parent_id`` that lives in another
        process's trace file (the wire-propagated client span id).
        """
        self.metrics.counter(f"span.{name}").inc()
        record = {
            "kind": "span",
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "name": name,
            "attrs": attrs or {},
            "elapsed_ms": round(elapsed_ms, 3),
        }
        if error is not None:
            record["error"] = error
        if remote_parent:
            record["remote_parent"] = True
        if self.sinks:
            self._dispatch(record)


class _DiskObserver:
    """Feeds per-transfer metrics from the head model into the registry."""

    __slots__ = ("read_runs", "write_runs", "seeks")

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.read_runs = metrics.histogram("disk.read_run_pages")
        self.write_runs = metrics.histogram("disk.write_run_pages")
        self.seeks = metrics.counter("disk.seeks")

    def on_transfer(
        self, first_page: int, n_pages: int, *, is_write: bool, seeked: bool
    ) -> None:
        (self.write_runs if is_write else self.read_runs).observe(n_pages)
        if seeked:
            self.seeks.inc()


class Observability:
    """Tracer + metrics + sinks for one database, swappable in place.

    Components keep a reference to this object and read ``obs.tracer`` /
    ``obs.metrics`` on every use, so enabling or disabling observability
    mid-life needs no rewiring.  Disabled (the initial state), both are
    shared no-op singletons.
    """

    def __init__(
        self,
        *,
        iostats=None,
        geometry: DiskGeometry = DISK_1992,
        page_size: int = 4096,
    ) -> None:
        self.iostats = iostats
        self.geometry = geometry
        self.page_size = page_size
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self.sinks: list = []
        self._shared = False

    @property
    def enabled(self) -> bool:
        """Whether a live tracer is installed."""
        return self.tracer.enabled

    def enable(
        self,
        sinks: Iterable = (),
        *,
        metrics: MetricsRegistry | None = None,
        geometry: DiskGeometry | None = None,
        first_trace_id: int = 1,
        first_span_id: int = 1,
    ) -> "Observability":
        """Switch tracing and metrics on; returns self for chaining.

        ``first_trace_id`` seeds the tracer's trace-id allocator — a
        client that will merge its trace file with a server's picks a
        random seed so concurrent clients' trace ids don't collide in
        the server-side file.  ``first_span_id`` seeds the span-id
        allocator the same way: a sharded server gives each shard's
        tracer a disjoint span-id block, because shard spans hang under
        coordinator-allocated request roots inside one trace.
        """
        if self._shared:
            raise RuntimeError(
                "NULL_OBS is the shared disabled bundle; create an "
                "Observability of your own (or use the database's) to enable"
            )
        if geometry is not None:
            self.geometry = geometry
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sinks = list(sinks)
        self.tracer = Tracer(
            self.iostats,
            metrics=self.metrics,
            sinks=self.sinks,
            geometry=self.geometry,
            page_size=self.page_size,
            first_trace_id=first_trace_id,
            first_span_id=first_span_id,
        )
        if self.iostats is not None:
            self.iostats.observer = _DiskObserver(self.metrics)
        return self

    def disable(self) -> None:
        """Switch back to the no-op tracer and registry (sinks are kept
        neither open nor closed — use :meth:`close` to finalise them)."""
        if isinstance(self.tracer, Tracer):
            self.tracer._pop_all()
        if self.iostats is not None:
            self.iostats.observer = None
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self.sinks = []

    def flush(self) -> None:
        """Push the current metrics snapshot to sinks and flush them."""
        if self.metrics.enabled:
            snapshot = self.metrics.snapshot()
            for sink in self.sinks:
                on_metrics = getattr(sink, "on_metrics", None)
                if on_metrics is not None:
                    on_metrics(snapshot)
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        """Flush, close every sink that supports it, and disable."""
        sinks = list(self.sinks)
        self.flush()
        self.disable()
        for sink in sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


#: The shared always-disabled bundle standalone components default to.
NULL_OBS = Observability()
NULL_OBS._shared = True
