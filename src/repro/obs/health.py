"""Storage-health observability: fragmentation, layout, and heat.

EOS's own experiments (PAPER.md Section 4) measure allocation cost on
*fresh* volumes; long-object stores degrade as free space fragments
over weeks of churn (Sears & van Ingen, PAPERS.md).  This module is the
measurement half of the ROADMAP's "fragmentation aging + online
compaction" item: the future compactor (and today's operators) get to
*see* volume health instead of guessing.

Three layers:

* :func:`collect_volume_health` walks the buddy allocation maps and the
  catalogued objects' positional trees into one :class:`VolumeHealth`
  snapshot — per-space free-extent histograms, a fragmentation index
  (``1 - largest_free_extent / total_free``), utilization, and
  per-object *layout* stats (extent count, contiguity ratio, estimated
  seeks/MB for a full scan, CoW page-sharing ratio across the version
  chain).
* :class:`HeatTracker` keeps exponentially-decayed per-object read and
  write temperatures, fed by the server's request accounting, so
  hot-but-fragmented objects are rankable.
* :class:`HealthMonitor` samples health on an interval from a daemon
  thread, publishes aggregates to the metrics registry (``health.*``
  series; per-shard ``eos_frag_index{shard=...}`` gauges come from the
  exposition layer), and appends every sample to an append-only
  ``health.jsonl`` time series.

Thread confinement (EOS008): the collector reads buddy directories and
object index pages *through the buffer pool*.  On a served database
those structures belong to the shard worker, so the monitor submits the
walk via ``shard.submit(collect_volume_health, shard.db)`` — exactly
the pattern :func:`repro.server.expo._space_doc` uses — and only walks
inline (under ``db.op_lock``) for unserved databases.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.buddy.stats import extent_size_histogram, free_extents

#: Default seconds between background samples (also the rate limit for
#: explicit ``sample_once`` calls).
DEFAULT_INTERVAL_S = 5.0

#: Default cap on objects walked per sample, bounding sampling cost on
#: volumes with large catalogs (``None`` = walk everything).
DEFAULT_MAX_OBJECTS = 64


# ---------------------------------------------------------------------------
# The collector
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectLayout:
    """How one object's bytes are laid out on disk."""

    oid: int
    size_bytes: int
    #: Leaf segments in the positional tree.
    extents: int
    #: Physically contiguous disk runs those extents merge into.
    runs: int
    leaf_pages: int
    #: 1.0 when every adjacent extent pair abuts on disk, 0.0 when none do.
    contiguity: float
    #: Disk runs a full sequential scan visits, per MiB of content
    #: (index pages excluded — they are read once, not per-MB).
    est_seeks_per_mb: float
    #: ``1 - distinct_pages / total_page_refs`` across the version
    #: chain; None on an unversioned database.
    cow_sharing: float | None = None
    #: Buddy space holding the object's first extent (-1 when empty);
    #: the compaction planner's coldest-space ordering key.
    home_space: int = -1
    #: Every buddy space the object's extents touch (extents never span
    #: space boundaries); the evacuation pass selects victims by it.
    spaces: tuple[int, ...] = ()

    def to_doc(self) -> dict:
        """A JSON-ready document for one object's layout."""
        doc = {
            "oid": self.oid,
            "size_bytes": self.size_bytes,
            "extents": self.extents,
            "runs": self.runs,
            "leaf_pages": self.leaf_pages,
            "contiguity": round(self.contiguity, 4),
            "est_seeks_per_mb": round(self.est_seeks_per_mb, 3),
            "home_space": self.home_space,
        }
        if self.cow_sharing is not None:
            doc["cow_sharing"] = round(self.cow_sharing, 4)
        return doc


@dataclass(frozen=True)
class SpaceHealth:
    """Free-space quality of one buddy space."""

    index: int
    capacity: int
    free_pages: int
    free_extent_count: int
    largest_free_extent: int
    #: Extent count per power-of-two bucket (upper-inclusive key).
    free_extent_histogram: dict[int, int]

    @property
    def utilization(self) -> float:
        if not self.capacity:
            return 0.0
        return 1.0 - self.free_pages / self.capacity

    @property
    def frag_index(self) -> float:
        """1 - largest_free_extent/free_pages: 0 when free space is one run."""
        if not self.free_pages:
            return 0.0
        return 1.0 - self.largest_free_extent / self.free_pages

    def to_doc(self) -> dict:
        """A JSON-ready document for one space's free-extent picture."""
        return {
            "index": self.index,
            "capacity": self.capacity,
            "free_pages": self.free_pages,
            "free_extent_count": self.free_extent_count,
            "largest_free_extent": self.largest_free_extent,
            "free_extent_histogram": {
                str(k): v for k, v in self.free_extent_histogram.items()
            },
            "utilization": round(self.utilization, 4),
            "frag_index": round(self.frag_index, 4),
        }


@dataclass(frozen=True)
class VolumeHealth:
    """One point-in-time health snapshot of a whole database volume."""

    page_size: int
    spaces: list[SpaceHealth]
    objects: list[ObjectLayout]
    #: Catalogued object count (``objects`` may be a truncated sample).
    objects_total: int

    # -- volume-wide rollups ------------------------------------------------

    @property
    def total_pages(self) -> int:
        return sum(s.capacity for s in self.spaces)

    @property
    def free_pages(self) -> int:
        return sum(s.free_pages for s in self.spaces)

    @property
    def free_extent_count(self) -> int:
        return sum(s.free_extent_count for s in self.spaces)

    @property
    def largest_free_extent(self) -> int:
        # Extents never span space boundaries (each space has its own
        # directory page between data regions), so the volume-wide
        # largest is the max over spaces.
        return max((s.largest_free_extent for s in self.spaces), default=0)

    @property
    def utilization(self) -> float:
        total = self.total_pages
        if not total:
            return 0.0
        return 1.0 - self.free_pages / total

    @property
    def frag_index(self) -> float:
        free = self.free_pages
        if not free:
            return 0.0
        return 1.0 - self.largest_free_extent / free

    @property
    def free_extent_histogram(self) -> dict[int, int]:
        merged: dict[int, int] = {}
        for space in self.spaces:
            for bucket, count in space.free_extent_histogram.items():
                merged[bucket] = merged.get(bucket, 0) + count
        return dict(sorted(merged.items()))

    def worst_objects(self, k: int = 8) -> list[ObjectLayout]:
        """The sampled objects ranked worst-layout-first (seeks/MB)."""
        ranked = sorted(
            self.objects, key=lambda o: (-o.est_seeks_per_mb, o.oid)
        )
        return ranked[:k]

    def mean_contiguity(self) -> float:
        """Mean contiguity over the sampled objects (1.0 when none)."""
        if not self.objects:
            return 1.0
        return sum(o.contiguity for o in self.objects) / len(self.objects)

    def mean_seeks_per_mb(self) -> float:
        """Mean estimated seeks/MB over the sampled objects."""
        if not self.objects:
            return 0.0
        return sum(o.est_seeks_per_mb for o in self.objects) / len(self.objects)

    def mean_cow_sharing(self) -> float | None:
        """Mean CoW page-sharing ratio, or ``None`` without versioning."""
        shared = [o.cow_sharing for o in self.objects if o.cow_sharing is not None]
        if not shared:
            return None
        return sum(shared) / len(shared)

    def to_doc(self, *, top_objects: int = 8) -> dict:
        """A JSON-ready document (jsonl sample / HEALTH status section)."""
        sampled = self.objects
        doc = {
            "page_size": self.page_size,
            "total_pages": self.total_pages,
            "free_pages": self.free_pages,
            "utilization": round(self.utilization, 4),
            "frag_index": round(self.frag_index, 4),
            "largest_free_extent": self.largest_free_extent,
            "free_extent_count": self.free_extent_count,
            "free_extent_histogram": {
                str(k): v for k, v in self.free_extent_histogram.items()
            },
            "spaces": [s.to_doc() for s in self.spaces],
            "objects": {
                "count": self.objects_total,
                "sampled": len(sampled),
                "worst": [o.to_doc() for o in self.worst_objects(top_objects)],
            },
        }
        if sampled:
            doc["objects"]["mean_contiguity"] = round(self.mean_contiguity(), 4)
            doc["objects"]["mean_seeks_per_mb"] = round(
                self.mean_seeks_per_mb(), 3
            )
        sharing = self.mean_cow_sharing()
        if sharing is not None:
            doc["objects"]["cow_sharing"] = round(sharing, 4)
        return doc


def _object_layout(db, obj, *, cow_sharing: bool) -> ObjectLayout:
    entries = obj.segments()
    extents = len(entries)
    leaf_pages = sum(entry.pages for _, entry in entries)
    runs = obj.extent_runs()
    size = obj.size()
    if extents > 1:
        contiguity = (extents - len(runs)) / (extents - 1)
    else:
        contiguity = 1.0
    mib = size / (1 << 20)
    est_seeks = len(runs) / mib if mib > 0 else 0.0
    sharing = None
    oid = getattr(obj, "oid", -1)
    if cow_sharing and db.versions is not None and oid >= 0:
        total_refs, distinct = db.versions.sharing_stats(oid)
        sharing = 1.0 - distinct / total_refs if total_refs else 0.0
    return ObjectLayout(
        oid=oid,
        size_bytes=size,
        extents=extents,
        runs=len(runs),
        leaf_pages=leaf_pages,
        contiguity=contiguity,
        est_seeks_per_mb=est_seeks,
        cow_sharing=sharing,
        home_space=db.buddy.space_of(runs[0][0]) if runs else -1,
        spaces=tuple(sorted({db.buddy.space_of(first) for first, _ in runs})),
    )


def collect_volume_health(
    db,
    *,
    max_objects: int | None = DEFAULT_MAX_OBJECTS,
    cow_sharing: bool = True,
) -> VolumeHealth:
    """Walk the allocator and object trees into one health snapshot.

    Buddy directories and object index pages are read through the
    buffer pool, so on a served database this must run on the owning
    shard's worker — submit it via ``shard.submit(collect_volume_health,
    shard.db)`` (EOS008); an unserved database is walked inline.  The
    op lock serialises the walk against mutations either way.

    ``max_objects`` bounds the per-object layout pass (``None`` walks
    the whole catalog, ``0`` skips it); the space pass always covers
    every buddy space.
    """
    with db.op_lock:
        spaces: list[SpaceHealth] = []
        for index in range(db.volume.n_spaces):
            space = db.buddy.load_space(index)
            extents = free_extents(space.amap.decode())
            sizes = [pages for _, pages in extents]
            spaces.append(
                SpaceHealth(
                    index=index,
                    capacity=space.capacity,
                    free_pages=sum(sizes),
                    free_extent_count=len(extents),
                    largest_free_extent=max(sizes, default=0),
                    free_extent_histogram=extent_size_histogram(sizes),
                )
            )
        catalog = db.objects()
        sample = catalog if max_objects is None else catalog[:max_objects]
        layouts = [
            _object_layout(db, obj, cow_sharing=cow_sharing) for obj in sample
        ]
    return VolumeHealth(
        page_size=db.config.page_size,
        spaces=spaces,
        objects=layouts,
        objects_total=len(catalog),
    )


# ---------------------------------------------------------------------------
# Heat
# ---------------------------------------------------------------------------


class HeatTracker:
    """Exponentially-decayed per-object read/write temperatures.

    Every :meth:`touch` adds one unit of heat to the object's read or
    write temperature; temperatures halve every ``half_life_s`` seconds
    of inactivity, so recent traffic dominates.  The table is bounded:
    when full, the coldest entry is evicted to make room.  Thread-safe
    (the server's request path and the monitor both call in).
    """

    def __init__(
        self,
        *,
        half_life_s: float = 300.0,
        max_objects: int = 1024,
        clock=time.monotonic,
    ) -> None:
        if half_life_s <= 0:
            raise ValueError(f"half_life_s must be positive, got {half_life_s}")
        self.half_life_s = half_life_s
        self.max_objects = max_objects
        self._clock = clock
        self._lock = threading.Lock()
        # oid -> [read_temp, write_temp, last_decay_ts]
        self._table: dict[int, list[float]] = {}

    def _decay(self, entry: list[float], now: float) -> None:
        dt = now - entry[2]
        if dt > 0:
            factor = 0.5 ** (dt / self.half_life_s)
            entry[0] *= factor
            entry[1] *= factor
            entry[2] = now

    def touch(self, oid: int, *, write: bool = False, weight: float = 1.0) -> None:
        """Record one operation against ``oid``."""
        now = self._clock()
        with self._lock:
            entry = self._table.get(oid)
            if entry is None:
                if len(self._table) >= self.max_objects:
                    coldest = min(
                        self._table,
                        key=lambda o: self._table[o][0] + self._table[o][1],
                    )
                    del self._table[coldest]
                entry = self._table[oid] = [0.0, 0.0, now]
            self._decay(entry, now)
            if write:
                entry[1] += weight
            else:
                entry[0] += weight

    def top(self, k: int = 8) -> list[dict]:
        """The hottest objects, as JSON-ready rows, hottest first."""
        now = self._clock()
        with self._lock:
            rows = []
            for oid, entry in self._table.items():
                self._decay(entry, now)
                rows.append(
                    {
                        "oid": oid,
                        "read": round(entry[0], 3),
                        "write": round(entry[1], 3),
                        "heat": round(entry[0] + entry[1], 3),
                    }
                )
        rows.sort(key=lambda r: (-r["heat"], r["oid"]))
        return rows[:k]

    def read_heat(self, oid: int) -> float:
        """The object's current (decayed) read temperature; 0.0 if untracked."""
        now = self._clock()
        with self._lock:
            entry = self._table.get(oid)
            if entry is None:
                return 0.0
            self._decay(entry, now)
            return entry[0]

    def snapshot(self) -> dict[int, tuple[float, float]]:
        """All tracked temperatures as ``oid -> (read, write)``, decayed.

        The compaction planner scores a whole victim list against one
        consistent heat picture, so it takes a snapshot instead of
        calling :meth:`read_heat` per object.
        """
        now = self._clock()
        with self._lock:
            out = {}
            for oid, entry in self._table.items():
                self._decay(entry, now)
                out[oid] = (entry[0], entry[1])
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)


# ---------------------------------------------------------------------------
# The background monitor
# ---------------------------------------------------------------------------


class HealthMonitor:
    """Rate-limited background sampler of volume health.

    Targets either one unserved database (``db=``, walked inline) or a
    list of shard-like objects (``shards=``, each with ``index``,
    ``alive``, ``db`` and ``submit``; every sample runs on the shard's
    worker thread so the walk respects thread confinement).  Each tick
    produces one document per target, updates the registry's
    ``health.*`` instruments, appends the documents to
    ``<health_dir>/health.jsonl``, and caches them for the HEALTH
    section of :func:`repro.server.expo.status_snapshot`.

    Explicit :meth:`sample_once` calls are rate-limited to the sampling
    interval (scrape storms must not turn into directory-walk storms);
    pass ``force=True`` to bypass, as the paced background loop does.
    """

    def __init__(
        self,
        db=None,
        *,
        shards=None,
        interval_s: float = DEFAULT_INTERVAL_S,
        health_dir: str | os.PathLike | None = None,
        registry=None,
        max_objects: int | None = DEFAULT_MAX_OBJECTS,
        cow_sharing: bool = True,
        top_heat: int = 8,
        heat_half_life_s: float = 300.0,
    ) -> None:
        if (db is None) == (shards is None):
            raise ValueError("pass exactly one of db= or shards=")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.db = db
        self.shards = list(shards) if shards is not None else None
        self.interval_s = interval_s
        self.health_dir = os.fspath(health_dir) if health_dir is not None else None
        self.registry = registry
        self.max_objects = max_objects
        self.cow_sharing = cow_sharing
        self.top_heat = top_heat
        self.heat = HeatTracker(half_life_s=heat_half_life_s)
        self.samples_taken = 0
        self.total_sample_ms = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._last_docs: list[dict] = []
        self._last_ts = 0.0
        if self.health_dir is not None:
            os.makedirs(self.health_dir, exist_ok=True)

    @property
    def jsonl_path(self) -> str | None:
        if self.health_dir is None:
            return None
        return os.path.join(self.health_dir, "health.jsonl")

    # -- sampling ------------------------------------------------------------

    def _targets(self):
        if self.db is not None:
            return [(None, self.db)]
        return [(shard, shard.db) for shard in self.shards]

    def sample_once(self, *, force: bool = False) -> list[dict]:
        """Take (or, within the rate limit, reuse) one sample per target."""
        now = time.time()
        with self._lock:
            fresh_enough = (
                self._last_docs and now - self._last_ts < self.interval_s
            )
            if not force and fresh_enough:
                return list(self._last_docs)
        docs: list[dict] = []
        for shard, db in self._targets():
            doc: dict = {"ts": round(time.time(), 3)}
            if shard is not None:
                doc["shard"] = shard.index
            t0 = time.perf_counter()
            try:
                if shard is not None:
                    health = shard.submit(
                        collect_volume_health,
                        db,
                        max_objects=self.max_objects,
                        cow_sharing=self.cow_sharing,
                    ).result()
                else:
                    health = collect_volume_health(
                        db,
                        max_objects=self.max_objects,
                        cow_sharing=self.cow_sharing,
                    )
                doc.update(health.to_doc(top_objects=self.top_heat))
            except Exception as exc:  # one sick target must not stop the tick
                doc["error"] = f"{exc.__class__.__name__}: {exc}"
            ms = (time.perf_counter() - t0) * 1000.0
            doc["sample_ms"] = round(ms, 3)
            self.total_sample_ms += ms
            docs.append(doc)
        self.samples_taken += 1
        self._publish(docs)
        self._persist(docs)
        with self._lock:
            self._last_docs = docs
            self._last_ts = now
        return list(docs)

    def _publish(self, docs: list[dict]) -> None:
        """Update the registry's aggregate ``health.*`` instruments."""
        registry = self.registry
        if registry is None:
            return
        registry.counter("health.samples").inc()
        for doc in docs:
            registry.histogram("health.sample_ms").observe(doc["sample_ms"])
        good = [d for d in docs if "error" not in d]
        if good:
            free = sum(d["free_pages"] for d in good)
            total = sum(d["total_pages"] for d in good)
            largest = max(d["largest_free_extent"] for d in good)
            registry.gauge("health.free_pages").set(free)
            registry.gauge("health.largest_free_extent").set(largest)
            registry.gauge("health.utilization").set(
                round(1.0 - free / total, 4) if total else 0.0
            )
            registry.gauge("health.frag_index").set(
                round(1.0 - largest / free, 4) if free else 0.0
            )
        registry.gauge("health.heat_tracked").set(len(self.heat))

    def _persist(self, docs: list[dict]) -> None:
        path = self.jsonl_path
        if path is None:
            return
        # Append-open per tick: crash-tolerant, and rotation-friendly
        # (an operator may truncate or move the file between ticks).
        with open(path, "a", encoding="utf-8") as f:
            for doc in docs:
                f.write(json.dumps(doc, sort_keys=True) + "\n")

    # -- exposition ----------------------------------------------------------

    def last(self) -> list[dict]:
        """The most recent tick's documents (empty before the first)."""
        with self._lock:
            return list(self._last_docs)

    def status_doc(self) -> dict:
        """The HEALTH section for :func:`~repro.server.expo.status_snapshot`."""
        with self._lock:
            docs = list(self._last_docs)
            ts = self._last_ts
        return {
            "interval_s": self.interval_s,
            "ts": round(ts, 3),
            "samples_taken": self.samples_taken,
            "samples": docs,
            "heat": self.heat.top(self.top_heat),
        }

    # -- lifecycle -----------------------------------------------------------

    def _loop(self) -> None:
        # An immediate first sample: a fresh server exposes health
        # before the first interval elapses.
        self.sample_once(force=True)
        while not self._stop.wait(self.interval_s):
            self.sample_once(force=True)

    def start(self) -> "HealthMonitor":
        """Start the daemon sampling thread (idempotent); returns self."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="eos-health", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampling thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    def __enter__(self) -> "HealthMonitor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
