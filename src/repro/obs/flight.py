"""The flight recorder: an always-on ring of recent request evidence.

Overload and error incidents on a long-running server are only
diagnosable if the requests *leading up to* the incident left evidence
behind — after the fact, counters say how much went wrong but not what
the traffic looked like.  :class:`FlightRecorder` keeps two fixed-size
rings in memory at negligible cost:

* **summaries** — one compact dict per finished request (opcode, oid,
  status, per-phase timings, byte counts, trace context), recorded by
  the server for every request whether or not tracing is enabled;
* **spans** — the most recent finished-span records, captured by
  attaching the recorder as a tracer sink (``on_span``), so a dump
  carries the span *trees* of recent requests when tracing is on.

On an incident (a :class:`~repro.errors.ServerOverloaded` rejection, an
error response, or an operator signal) the server calls
:meth:`maybe_dump`, which snapshots both rings to a JSON-lines file —
rate-limited so an error storm produces one dump, not thousands.  The
dump opens with a ``kind: "flight_header"`` line, then ``kind:
"flight"`` summary lines, then ``kind: "span"`` lines; because span
lines use the ordinary trace schema, ``python -m repro.tools.tracefmt``
renders a dump directly.

Entries are redacted on the way in: payload-carrying keys are dropped
and long strings truncated, so a dump never contains object bytes —
safe to ship off-box.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

#: Keys that may carry object payloads; never recorded.
_REDACTED_KEYS = frozenset({"data", "payload", "body", "bytes"})

#: Longest string (error messages, attr values) kept in an entry.
_MAX_STRING = 256


def _redact(value):
    """Return ``value`` with payload keys dropped and strings truncated."""
    if isinstance(value, dict):
        return {
            k: _redact(v) for k, v in value.items() if k not in _REDACTED_KEYS
        }
    if isinstance(value, (list, tuple)):
        return [_redact(v) for v in value]
    if isinstance(value, str) and len(value) > _MAX_STRING:
        return value[: _MAX_STRING - 1] + "…"
    if isinstance(value, (bytes, bytearray)):
        return f"<{len(value)} bytes redacted>"
    return value


class FlightRecorder:
    """Fixed-size rings of request summaries and span records.

    Thread-safe: the server records from the event loop while the
    tracer's ``on_span`` arrives from executor threads and ``to_jsonl``
    runs on whatever thread serves the dump.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        span_capacity: int | None = None,
        min_dump_interval: float = 5.0,
    ) -> None:
        self.capacity = capacity
        self.min_dump_interval = min_dump_interval
        self._entries: deque = deque(maxlen=capacity)
        self._spans: deque = deque(maxlen=span_capacity or capacity * 8)
        self._lock = threading.Lock()
        self._last_dump = 0.0
        self.dumps = 0
        self.last_dump_path: str | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, entry: dict) -> None:
        """Append one request summary (redacted; evicts the oldest)."""
        clean = _redact(entry)
        clean["kind"] = "flight"
        with self._lock:
            self._entries.append(clean)

    def on_span(self, record: dict) -> None:
        """Tracer-sink hook: retain one finished-span record."""
        with self._lock:
            self._spans.append(_redact(record))

    def entries(self) -> list[dict]:
        """The retained request summaries, oldest first."""
        with self._lock:
            return list(self._entries)

    def spans(self) -> list[dict]:
        """The retained span records, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop everything retained."""
        with self._lock:
            self._entries.clear()
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Snapshots and dumps
    # ------------------------------------------------------------------

    def to_jsonl(self, *, reason: str = "snapshot") -> str:
        """The whole ring as JSON-lines text (header, summaries, spans)."""
        with self._lock:
            entries = list(self._entries)
            spans = list(self._spans)
        header = {
            "kind": "flight_header",
            "reason": reason,
            "dumped_at": round(time.time(), 3),
            "capacity": self.capacity,
            "entries": len(entries),
            "spans": len(spans),
        }
        lines = [json.dumps(header, separators=(",", ":"))]
        lines.extend(json.dumps(e, separators=(",", ":")) for e in entries)
        lines.extend(json.dumps(s, separators=(",", ":")) for s in spans)
        return "\n".join(lines) + "\n"

    def dump(self, directory: str | os.PathLike, reason: str = "manual") -> str:
        """Write a snapshot to ``directory``; returns the file path.

        The directory is created if missing; file names carry a
        millisecond timestamp plus the reason, so successive dumps never
        overwrite each other.
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        stamp = int(time.time() * 1000)
        safe_reason = "".join(
            c if c.isalnum() or c in "-_" else "-" for c in reason
        ) or "dump"
        path = os.path.join(directory, f"flight-{stamp}-{safe_reason}.jsonl")
        text = self.to_jsonl(reason=reason)
        with open(path, "w") as f:
            f.write(text)
        with self._lock:
            self._last_dump = time.monotonic()
            self.dumps += 1
            self.last_dump_path = path
        return path

    def maybe_dump(
        self, directory: str | os.PathLike, reason: str = "incident"
    ) -> str | None:
        """Dump unless one happened within ``min_dump_interval`` seconds.

        The rate limit makes incident-triggered dumping safe to wire to
        *every* error response: a storm costs one file per interval.
        Returns the path written, or None when suppressed.
        """
        with self._lock:
            now = time.monotonic()
            if self._last_dump and now - self._last_dump < self.min_dump_interval:
                return None
            # Claim the slot before the (unlocked) file write so two
            # racing incidents produce one dump, not two.
            self._last_dump = now
        return self.dump(directory, reason)


def load_flight(path: str | os.PathLike) -> tuple[dict | None, list[dict], list[dict]]:
    """Parse a flight dump: ``(header, summaries, span_records)``.

    Unparseable lines are skipped, matching the tracefmt loader's
    posture — a dump truncated by a crash still loads.
    """
    header: dict | None = None
    entries: list[dict] = []
    spans: list[dict] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            kind = record.get("kind")
            if kind == "flight_header":
                header = record
            elif kind == "flight":
                entries.append(record)
            elif kind == "span":
                spans.append(record)
    return header, entries, spans
