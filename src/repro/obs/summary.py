"""Aggregation and rendering of span records.

Shared by :class:`~repro.obs.sinks.SummarySink` and the
``repro.tools.tracefmt`` CLI: :func:`aggregate_spans` folds a record
list into per-name totals, :func:`format_summary` renders them as the
usual fixed-width table, and :func:`format_tree` prints the nesting with
each span's cumulative I/O.
"""

from __future__ import annotations

from repro.util.fmt import TextTable


def aggregate_spans(records: list[dict]) -> dict[str, dict]:
    """Per-span-name totals: count, errors, I/O sums, modelled cost.

    Only *self* I/O is summed for seeks/transfers so that nested spans do
    not double-count their children; ``cost_ms`` sums the cumulative
    cost of **root** spans only, which makes the table's total the cost
    of the traced session.
    """
    out: dict[str, dict] = {}
    for record in records:
        if record.get("kind", "span") != "span":
            continue
        agg = out.setdefault(
            record["name"],
            {
                "count": 0, "errors": 0, "seeks": 0, "page_reads": 0,
                "page_writes": 0, "elapsed_ms": 0.0, "cost_ms": 0.0,
            },
        )
        agg["count"] += 1
        if record.get("error"):
            agg["errors"] += 1
        self_io = record.get("self_io", {})
        agg["seeks"] += self_io.get("seeks", 0)
        agg["page_reads"] += self_io.get("page_reads", 0)
        agg["page_writes"] += self_io.get("page_writes", 0)
        agg["elapsed_ms"] += record.get("elapsed_ms", 0.0)
        if record.get("parent") is None:
            agg["cost_ms"] += record.get("cost_ms", 0.0)
    return out


def format_summary(records: list[dict]) -> str:
    """Aggregate table: one row per span name, sorted by modelled cost."""
    aggregated = aggregate_spans(records)
    table = TextTable(
        "span summary (self I/O per name; cost_ms totals root spans)",
        ["span", "count", "errors", "seeks", "pg reads", "pg writes",
         "elapsed ms", "cost ms"],
    )
    for name in sorted(
        aggregated, key=lambda n: (-aggregated[n]["cost_ms"], n)
    ):
        agg = aggregated[name]
        table.add_row([
            name, agg["count"], agg["errors"], agg["seeks"],
            agg["page_reads"], agg["page_writes"],
            agg["elapsed_ms"], agg["cost_ms"],
        ])
    if not aggregated:
        return "span summary: no spans recorded"
    return table.render()


def _format_attrs(attrs: dict) -> str:
    return " ".join(f"{k}={v}" for k, v in attrs.items())


def format_tree(records: list[dict], *, max_spans: int = 200) -> str:
    """The span forest, indented by nesting, with per-span I/O deltas.

    Spans whose parent is missing from the input (the parent fell out of
    the flight ring, or the capture window cut a trace in half) are not
    silently promoted to look like roots: each trace's orphans render
    under a labelled synthetic root, so a merged view distinguishes "a
    request root" from "half a tree whose top is gone".
    """
    spans = [r for r in records if r.get("kind", "span") == "span"]
    children: dict[int | None, list[dict]] = {}
    by_id = {r["span"]: r for r in spans}
    orphans: list[dict] = []
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent not in by_id:
            orphans.append(record)
            continue
        children.setdefault(parent, []).append(record)

    lines: list[str] = []

    def walk(record: dict, depth: int) -> None:
        if len(lines) >= max_spans:
            return
        io = record.get("io", {})
        attrs = _format_attrs(record.get("attrs", {}))
        error = f"  ERROR={record['error']}" if record.get("error") else ""
        lines.append(
            "  " * depth
            + f"{record['name']}"
            + (f" [{attrs}]" if attrs else "")
            + f"  io={io.get('seeks', 0)}s/{io.get('page_reads', 0)}r/"
            + f"{io.get('page_writes', 0)}w"
            + f"  cost={record.get('cost_ms', 0.0):.2f}ms"
            + error
        )
        for child in children.get(record["span"], []):
            walk(child, depth + 1)

    roots = children.get(None, [])
    previous_trace = None
    for root in roots:
        if len(lines) >= max_spans:
            break
        if root["trace"] != previous_trace:
            lines.append(f"trace {root['trace']}:")
            previous_trace = root["trace"]
        walk(root, 1)
    if orphans:
        by_trace: dict[int, list[dict]] = {}
        for record in orphans:
            by_trace.setdefault(record["trace"], []).append(record)
        for trace, group in by_trace.items():
            if len(lines) >= max_spans:
                break
            lines.append(f"trace {trace}:")
            lines.append(
                f"  (orphaned: {len(group)} span(s) whose parent is not "
                "in the input)"
            )
            for record in group:
                walk(record, 2)
    total = len(spans)
    if total > max_spans:
        lines.append(f"... {total - max_spans} more spans")
    if not lines:
        return "trace: no spans recorded"
    return "\n".join(lines)
