"""Prometheus text exposition for a :class:`~repro.obs.metrics.MetricsRegistry`.

:func:`render_prometheus` walks the registry's live instruments (it
needs the typed objects, not a snapshot, to tell a counter from a
gauge) and renders `Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:

* dotted metric names become underscore names under an ``eos_`` prefix
  (``server.latency_ms`` → ``eos_server_latency_ms``);
* counters and gauges are single series;
* histograms render cumulative ``_bucket{le="..."}`` series (the
  registry keeps per-bucket counts; Prometheus wants running totals)
  plus ``_sum``/``_count`` and ``_p50``/``_p95``/``_p99`` gauges from
  :meth:`~repro.obs.metrics.Histogram.percentile`;
* ``extra_gauges`` lets the caller graft in values that live outside
  the registry (buffer hit ratio, buddy free pages, uptime).

Only the stdlib is used; the HTTP side lives in
:mod:`repro.server.expo`.
"""

from __future__ import annotations

import re

from repro.obs.metrics import Counter, Gauge, Histogram

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix applied to every exposed series.
PREFIX = "eos_"


def metric_name(name: str, prefix: str = PREFIX) -> str:
    """The Prometheus-legal series name for a dotted registry name.

    A ``{label="value"}`` suffix (used by the per-shard gauges) is kept
    verbatim — only the base name is sanitized.
    """
    base, brace, labels = name.partition("{")
    sanitized = _NAME_RE.sub("_", base)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized + brace + labels


def _fmt(value) -> str:
    if value is None:
        return "0"
    if isinstance(value, float):
        return repr(round(value, 6))
    return str(value)


def _render_histogram(out: list[str], name: str, hist: Histogram) -> None:
    snap = hist.snapshot()
    out.append(f"# TYPE {name} histogram")
    cumulative = 0
    buckets = snap["buckets"]
    for label, count in buckets.items():
        cumulative += count
        if label.startswith("<="):
            le = label[2:]
        else:  # the overflow bucket renders as +Inf
            le = "+Inf"
        out.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
    out.append(f"{name}_sum {_fmt(snap['sum'])}")
    out.append(f"{name}_count {snap['count']}")
    for q in ("p50", "p95", "p99"):
        out.append(f"# TYPE {name}_{q} gauge")
        out.append(f"{name}_{q} {_fmt(snap[q])}")


def render_prometheus(
    registry,
    *,
    extra_gauges: dict[str, float] | None = None,
    prefix: str = PREFIX,
) -> str:
    """The registry (plus ``extra_gauges``) as Prometheus text format.

    Accepts any object with ``instruments()`` yielding ``(name,
    instrument)`` pairs — including :data:`~repro.obs.metrics.NULL_METRICS`,
    which contributes nothing.
    """
    out: list[str] = []
    for raw_name, instrument in registry.instruments():
        name = metric_name(raw_name, prefix)
        if isinstance(instrument, Counter):
            out.append(f"# TYPE {name} counter")
            out.append(f"{name} {instrument.snapshot()}")
        elif isinstance(instrument, Gauge):
            out.append(f"# TYPE {name} gauge")
            out.append(f"{name} {_fmt(instrument.snapshot())}")
        elif isinstance(instrument, Histogram):
            _render_histogram(out, name, instrument)
    typed: set[str] = set()
    for raw_name, value in sorted((extra_gauges or {}).items()):
        name = metric_name(raw_name, prefix)
        # Labeled series share one TYPE line for their base name.
        base = name.partition("{")[0]
        if base not in typed:
            out.append(f"# TYPE {base} gauge")
            typed.add(base)
        out.append(f"{name} {_fmt(value)}")
    return "\n".join(out) + "\n"
