"""``db.stats``: one snapshot/reset/delta surface over every layer.

Before this facade, measuring a workload meant poking three counter bags
(``db.disk.stats``, ``db.pool.stats``, ``db.buddy.stats``) and manually
resetting the disk-head position for cold-cache runs.  The facade keeps
those attributes intact but gives benchmarks and examples one call:

    with db.stats.delta(cold=True) as d:
        obj.read(0, 1 << 20)
    print(d.seeks, d.page_transfers, d.hit_ratio)

:class:`StatsSnapshot` composes immutable copies of the disk, buffer
pool and allocator counters and subtracts componentwise; the forwarding
properties make the common disk numbers (``seeks``, ``page_reads`` …)
reachable without spelling the layer, so code written against
:class:`~repro.storage.iostats.IODelta` keeps working.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator

from repro.storage.iostats import IOSnapshot


@dataclass(frozen=True)
class BufferSnapshot:
    """Immutable copy of the buffer pool's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over accesses (0.0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def __sub__(self, other: "BufferSnapshot") -> "BufferSnapshot":
        """Componentwise difference."""
        return BufferSnapshot(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            writebacks=self.writebacks - other.writebacks,
        )


@dataclass(frozen=True)
class AllocSnapshot:
    """Immutable copy of the buddy manager's counters."""

    allocations: int = 0
    frees: int = 0
    directory_loads: int = 0
    superdirectory_skips: int = 0
    superdirectory_corrections: int = 0

    def __sub__(self, other: "AllocSnapshot") -> "AllocSnapshot":
        """Componentwise difference."""
        return AllocSnapshot(
            allocations=self.allocations - other.allocations,
            frees=self.frees - other.frees,
            directory_loads=self.directory_loads - other.directory_loads,
            superdirectory_skips=(
                self.superdirectory_skips - other.superdirectory_skips
            ),
            superdirectory_corrections=(
                self.superdirectory_corrections - other.superdirectory_corrections
            ),
        )


class _IOForwarding:
    """Convenience properties lifting the common disk counters to the top."""

    io: IOSnapshot

    @property
    def seeks(self) -> int:
        """Disk seeks (``io.seeks``)."""
        return self.io.seeks

    @property
    def page_reads(self) -> int:
        """Pages read (``io.page_reads``)."""
        return self.io.page_reads

    @property
    def page_writes(self) -> int:
        """Pages written (``io.page_writes``)."""
        return self.io.page_writes

    @property
    def page_transfers(self) -> int:
        """Pages read plus pages written."""
        return self.io.page_transfers

    @property
    def read_calls(self) -> int:
        """Read operations issued."""
        return self.io.read_calls

    @property
    def write_calls(self) -> int:
        """Write operations issued."""
        return self.io.write_calls


@dataclass(frozen=True)
class StatsSnapshot(_IOForwarding):
    """All layers' counters at one instant; subtract to get a delta."""

    io: IOSnapshot
    buffer: BufferSnapshot
    alloc: AllocSnapshot

    @property
    def hit_ratio(self) -> float:
        """The buffer pool's hit ratio."""
        return self.buffer.hit_ratio

    def __sub__(self, other: "StatsSnapshot") -> "StatsSnapshot":
        """Componentwise difference across every layer."""
        return StatsSnapshot(
            io=self.io - other.io,
            buffer=self.buffer - other.buffer,
            alloc=self.alloc - other.alloc,
        )

    def as_dict(self) -> dict:
        """Plain-values form, for JSON sidecars and sinks."""
        return {
            "io": {
                "seeks": self.io.seeks,
                "page_reads": self.io.page_reads,
                "page_writes": self.io.page_writes,
                "read_calls": self.io.read_calls,
                "write_calls": self.io.write_calls,
            },
            "buffer": {
                "hits": self.buffer.hits,
                "misses": self.buffer.misses,
                "evictions": self.buffer.evictions,
                "writebacks": self.buffer.writebacks,
                "hit_ratio": round(self.buffer.hit_ratio, 4),
            },
            "alloc": {
                "allocations": self.alloc.allocations,
                "frees": self.alloc.frees,
                "directory_loads": self.alloc.directory_loads,
                "superdirectory_skips": self.alloc.superdirectory_skips,
                "superdirectory_corrections": (
                    self.alloc.superdirectory_corrections
                ),
            },
        }


class StatsDelta(_IOForwarding):
    """Mutable view populated when a :meth:`DatabaseStats.delta` block exits."""

    def __init__(self) -> None:
        self.io = IOSnapshot()
        self.buffer = BufferSnapshot()
        self.alloc = AllocSnapshot()

    @property
    def hit_ratio(self) -> float:
        """The buffer pool's hit ratio over the measured block."""
        return self.buffer.hit_ratio

    def _fill(self, snapshot: StatsSnapshot) -> None:
        self.io = snapshot.io
        self.buffer = snapshot.buffer
        self.alloc = snapshot.alloc

    def as_dict(self) -> dict:
        """Plain-values form, for JSON sidecars and sinks."""
        return StatsSnapshot(
            io=self.io, buffer=self.buffer, alloc=self.alloc
        ).as_dict()


class DatabaseStats:
    """The ``db.stats`` facade bound to one database's layers."""

    def __init__(self, db) -> None:
        self._db = db

    def snapshot(self) -> StatsSnapshot:
        """Immutable copy of every layer's counters, as one object."""
        db = self._db
        pool = db.pool.stats
        alloc = db.buddy.stats
        snapshot = StatsSnapshot(
            io=db.disk.stats.snapshot(),
            buffer=BufferSnapshot(
                hits=pool.hits,
                misses=pool.misses,
                evictions=pool.evictions,
                writebacks=pool.writebacks,
            ),
            alloc=AllocSnapshot(
                allocations=alloc.allocations,
                frees=alloc.frees,
                directory_loads=alloc.directory_loads,
                superdirectory_skips=alloc.superdirectory_skips,
                superdirectory_corrections=alloc.superdirectory_corrections,
            ),
        )
        # Keep the registry's gauges current whenever somebody looks.
        metrics = db.obs.metrics
        if metrics.enabled:
            metrics.gauge("buffer.hit_ratio").set(snapshot.buffer.hit_ratio)
            metrics.gauge("buffer.resident_pages").set(len(db.pool))
        return snapshot

    def metrics(self) -> dict:
        """The observability registry's snapshot ({} when disabled)."""
        return self._db.obs.metrics.snapshot()

    def reset(self) -> None:
        """Zero every layer's counters and the metrics registry."""
        db = self._db
        db.disk.stats.reset()
        pool = db.pool.stats
        pool.hits = pool.misses = pool.evictions = pool.writebacks = 0
        alloc = db.buddy.stats
        alloc.allocations = alloc.frees = alloc.directory_loads = 0
        alloc.superdirectory_skips = alloc.superdirectory_corrections = 0
        db.obs.metrics.reset()

    @contextlib.contextmanager
    def delta(self, *, cold: bool = False) -> Iterator[StatsDelta]:
        """Measure a block; ``cold=True`` clears the pool and forgets the
        disk-head position first (a cold-cache run)."""
        db = self._db
        if cold:
            db.pool.clear()
            db.disk.stats.head = None
        before = self.snapshot()
        delta = StatsDelta()
        try:
            yield delta
        finally:
            delta._fill(self.snapshot() - before)
