"""The Starburst long field manager [Lehm89], as characterized in Section 2.

Key properties reproduced:

* **Extent-based allocation from a binary buddy system** — Starburst is
  the one prior database system the paper credits with buddy allocation.
* **The doubling growth pattern** — "when the eventual size of a long
  field is not known in advance, successive segments allocated for
  storage double in size until the maximum segment size is reached";
  with a known size, maximum-size segments are used.  "In either case,
  the last segment is trimmed."
* **A flat descriptor** — "the long field descriptor contains the size
  of the first and last segment and an array of pointers to all segments
  allocated to the long field."  The descriptor must fit in a small
  record, which caps the object size (the real system topped out around
  1.5 GB [Lohm91]); we model the descriptor as one page of 4-byte
  segment pointers.
* **No graceful length-changing updates** — "these operations require
  all segments to the right of and including the segment on which the
  update is performed to be copied into new segments."  That is exactly
  what :meth:`insert` and :meth:`delete` do, and experiment E5 measures
  the consequence: update cost grows with the object size.

Deviation noted: the real descriptor encodes intermediate segment sizes
implicitly via the growth pattern; we store (page, pages, bytes) per
segment explicitly, which only affects descriptor arithmetic, not I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import LargeObjectStore, Placement, PlacementAllocator, StoreStats
from repro.buddy.manager import BuddyManager
from repro.core.segio import SegmentIO
from repro.errors import ByteRangeError, ObjectTooLarge
from repro.util.bitops import ceil_div

_POINTER_BYTES = 4
_DESCRIPTOR_HEADER = 16


@dataclass
class _Segment:
    first_page: int
    pages: int
    bytes: int


@dataclass
class StarburstField:
    """A long field: its descriptor's in-memory form."""

    segments: list[_Segment] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(s.bytes for s in self.segments)


class StarburstStore(LargeObjectStore):
    """Long fields with doubling extents and copy-right updates."""

    name = "Starburst"

    def __init__(
        self,
        buddy: BuddyManager,
        segio: SegmentIO,
        *,
        placement: Placement = Placement.CLUSTERED,
        initial_growth_pages: int = 1,
    ) -> None:
        self.buddy = buddy
        self.segio = segio
        self.allocator = PlacementAllocator(buddy, placement)
        self.page_size = segio.page_size
        self.initial_growth_pages = initial_growth_pages
        self.max_descriptor_segments = (
            self.page_size - _DESCRIPTOR_HEADER
        ) // _POINTER_BYTES

    # ------------------------------------------------------------------
    # Allocation pattern
    # ------------------------------------------------------------------

    def _next_segment_pages(
        self, handle: StarburstField, hint_remaining: int | None
    ) -> int:
        max_seg = self.buddy.max_segment_pages
        if hint_remaining is not None and hint_remaining > 0:
            # Known size: "maximum size segments are used to hold the field."
            return min(max_seg, ceil_div(hint_remaining, self.page_size))
        if not handle.segments:
            return min(max_seg, self.initial_growth_pages)
        return min(max_seg, handle.segments[-1].pages * 2)

    def _check_descriptor(self, n_segments: int) -> None:
        if n_segments > self.max_descriptor_segments:
            raise ObjectTooLarge(
                n_segments * self.buddy.max_segment_pages * self.page_size,
                self.max_descriptor_segments
                * self.buddy.max_segment_pages
                * self.page_size,
                self.name,
            )

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------

    def create(self, data: bytes = b"", size_hint: int | None = None) -> StarburstField:
        handle = StarburstField()
        if data:
            self._append(handle, data, size_hint)
            self._trim(handle)
        return handle

    def size(self, handle: StarburstField) -> int:
        return handle.size

    def read(self, handle: StarburstField, offset: int, length: int) -> bytes:
        if length < 0 or offset < 0 or offset + length > handle.size:
            raise ByteRangeError(offset, length, handle.size)
        chunks = []
        position = 0
        for seg in handle.segments:
            lo = max(offset, position)
            hi = min(offset + length, position + seg.bytes)
            if lo < hi:
                chunks.append(
                    self.segio.read_bytes(seg.first_page, lo - position, hi - position)
                )
            position += seg.bytes
            if position >= offset + length:
                break
        return b"".join(chunks)

    def append(self, handle: StarburstField, data: bytes) -> None:
        self._append(handle, data, None)
        self._trim(handle)

    def _append(self, handle: StarburstField, data: bytes, size_hint: int | None) -> None:
        ps = self.page_size
        position = 0
        # Fill the last segment's spare space (partial page, spare pages).
        if handle.segments:
            last = handle.segments[-1]
            partial = last.bytes % ps
            if partial and position < len(data):
                take = min(ps - partial, len(data))
                self.segio.patch_page(
                    last.first_page + last.bytes // ps, partial, data[:take]
                )
                last.bytes += take
                position += take
            live_pages = ceil_div(last.bytes, ps)
            if position < len(data) and live_pages < last.pages:
                take = min((last.pages - live_pages) * ps, len(data) - position)
                self.segio.write_segment(
                    last.first_page, data[position : position + take], at_page=live_pages
                )
                last.bytes += take
                position += take
        while position < len(data):
            remaining = len(data) - position
            hint_rem = None
            if size_hint is not None and size_hint > handle.size:
                hint_rem = max(size_hint - handle.size, remaining)
            want = self._next_segment_pages(handle, hint_rem)
            self._check_descriptor(len(handle.segments) + 1)
            ref = self.buddy.allocate_up_to(want)
            take = min(remaining, ref.n_pages * ps)
            self.segio.write_segment(ref.first_page, data[position : position + take])
            handle.segments.append(_Segment(ref.first_page, ref.n_pages, take))
            position += take

    def _trim(self, handle: StarburstField) -> None:
        # "In either case, the last segment is trimmed."
        if not handle.segments:
            return
        last = handle.segments[-1]
        needed = ceil_div(last.bytes, self.page_size)
        if last.pages > needed:
            self.buddy.free(last.first_page + needed, last.pages - needed)
            last.pages = needed

    def replace(self, handle: StarburstField, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > handle.size:
            raise ByteRangeError(offset, len(data), handle.size)
        ps = self.page_size
        position = 0
        for seg in handle.segments:
            lo = max(offset, position)
            hi = min(offset + len(data), position + seg.bytes)
            if lo < hi:
                local_lo = lo - position
                local_hi = hi - position
                page_lo = local_lo // ps
                page_hi = (local_hi - 1) // ps
                span, base = self.segio.read_span(seg.first_page, page_lo, page_hi)
                patched = bytearray(span)
                patched[local_lo - base : local_hi - base] = data[
                    lo - offset : hi - offset
                ]
                self.segio.write_segment(
                    seg.first_page, bytes(patched), at_page=page_lo
                )
            position += seg.bytes
            if position >= offset + len(data):
                break

    def insert(self, handle: StarburstField, offset: int, data: bytes) -> None:
        """Copy-right: rebuild every segment from the affected one on."""
        if offset < 0 or offset > handle.size:
            raise ByteRangeError(offset, len(data), handle.size)
        index, local = self._segment_at(handle, offset)
        tail_old = self._read_tail(handle, index)
        new_tail = tail_old[:local] + data + tail_old[local:]
        self._rebuild_tail(handle, index, new_tail)

    def delete(self, handle: StarburstField, offset: int, length: int) -> None:
        if length < 0 or offset < 0 or offset + length > handle.size:
            raise ByteRangeError(offset, length, handle.size)
        if length == 0:
            return
        index, local = self._segment_at(handle, offset)
        tail_old = self._read_tail(handle, index)
        new_tail = tail_old[:local] + tail_old[local + length :]
        self._rebuild_tail(handle, index, new_tail)

    def delete_object(self, handle: StarburstField) -> None:
        for seg in handle.segments:
            self.buddy.free(seg.first_page, seg.pages)
        handle.segments.clear()

    def stats(self, handle: StarburstField) -> StoreStats:
        return StoreStats(
            size_bytes=handle.size,
            data_pages=sum(s.pages for s in handle.segments),
            meta_pages=1,  # the descriptor record's page
        )

    # ------------------------------------------------------------------
    # Copy-right machinery
    # ------------------------------------------------------------------

    def _segment_at(self, handle: StarburstField, offset: int) -> tuple[int, int]:
        """Segment index and local offset for a byte (end maps to last)."""
        position = 0
        for i, seg in enumerate(handle.segments):
            if offset < position + seg.bytes:
                return i, offset - position
            position += seg.bytes
        # Offset == size: extend from the last segment (or none).
        if handle.segments:
            return len(handle.segments) - 1, handle.segments[-1].bytes
        return 0, 0

    def _read_tail(self, handle: StarburstField, index: int) -> bytes:
        """Read every byte from segment ``index`` to the end — the cost
        the paper criticizes."""
        chunks = [
            self.segio.read_bytes(seg.first_page, 0, seg.bytes)
            for seg in handle.segments[index:]
        ]
        return b"".join(chunks)

    def _rebuild_tail(self, handle: StarburstField, index: int, data: bytes) -> None:
        for seg in handle.segments[index:]:
            self.buddy.free(seg.first_page, seg.pages)
        del handle.segments[index:]
        if data:
            self._append(handle, data, None)
        self._trim(handle)
