"""Exodus large objects [Care86], as characterized in Section 2.

Exodus "handles large objects of unlimited size by storing them on data
pages that are indexed by a B-tree-like structure, where the key is the
maximum byte position stored in a leaf data page."  It is the system the
EOS positional tree is "identical" to structurally; the difference is at
the leaves:

* Exodus leaves are **fixed-size blocks** — "clients can set the size of
  data pages of all large objects within a file to be some fixed number
  of disk blocks" — which may each be *partially full* anywhere in the
  object (B-tree style: between half and completely full after
  maintenance);
* EOS leaves are variable-size segments where only the last page of a
  segment may be partial.

That one difference is the paper's critique: "large pages waste too much
space at the end of partially full pages (but offer good search time),
and small pages offer good storage utilization (but require doing many
I/O's for reads)" — the trade-off experiment E6 sweeps.

Structure reuse: the index machinery is *shared with* the EOS
implementation (:class:`~repro.core.tree.LargeObjectTree`) because the
paper says the data structure is identical; only the leaf-level
algorithms differ, and they live here.  Leaf blocks are allocated whole
(contiguous within a block) but independently of each other, so
consecutive blocks are generally not adjacent — especially under the
SCATTERED placement policy.
"""

from __future__ import annotations

from repro.baselines.base import LargeObjectStore, Placement, PlacementAllocator, StoreStats
from repro.buddy.manager import BuddyManager
from repro.core.config import EOSConfig
from repro.core.node import Entry
from repro.core.pager import InPlacePager
from repro.core.segio import SegmentIO
from repro.core.tree import LargeObjectTree
from repro.errors import ByteRangeError
from repro.util.bitops import ceil_div


class ExodusStore(LargeObjectStore):
    """Fixed-leaf-block positional-tree large objects."""

    name = "Exodus"

    def __init__(
        self,
        buddy: BuddyManager,
        segio: SegmentIO,
        pager: InPlacePager,
        *,
        leaf_pages: int = 1,
        placement: Placement = Placement.SCATTERED,
    ) -> None:
        if leaf_pages < 1:
            raise ValueError(f"leaf block must be >= 1 page, got {leaf_pages}")
        self.buddy = buddy
        self.segio = segio
        self.pager = pager
        self.allocator = PlacementAllocator(buddy, placement)
        self.page_size = segio.page_size
        self.leaf_pages = leaf_pages
        self.capacity = leaf_pages * self.page_size  # bytes per leaf block
        self.config = EOSConfig(page_size=self.page_size)
        self.name = f"Exodus({leaf_pages}p)"

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------

    def create(self, data: bytes = b"", size_hint: int | None = None) -> LargeObjectTree:
        tree = LargeObjectTree.create(self.pager, self.config)
        if data:
            self.append(tree, data)
        return tree

    def size(self, tree: LargeObjectTree) -> int:
        return tree.size()

    def read(self, tree: LargeObjectTree, offset: int, length: int) -> bytes:
        size = tree.size()
        if length < 0 or offset < 0 or offset + length > size:
            raise ByteRangeError(offset, length, size)
        chunks = []
        for seg_offset, entry in tree.iter_segments(offset, offset + length):
            lo = max(offset, seg_offset) - seg_offset
            hi = min(offset + length, seg_offset + entry.count) - seg_offset
            chunks.append(self.segio.read_bytes(entry.child, lo, hi))
        return b"".join(chunks)

    def append(self, tree: LargeObjectTree, data: bytes) -> None:
        position = 0
        size = tree.size()
        if size:
            path, _ = tree.descend(size)
            entry = path[-1].node.entries[path[-1].index]
            room = self.capacity - entry.count
            if room > 0:
                take = min(room, len(data))
                # Complete the block in place: read-modify-write its tail
                # page, then whole-page writes for the rest.
                self._write_into_block(entry, entry.count, data[:take])
                tree.update_tail(take)
                position = take
        new_entries = []
        while position < len(data):
            take = min(self.capacity, len(data) - position)
            ref = self.allocator.allocate(self.leaf_pages)
            self.segio.write_segment(ref.first_page, data[position : position + take])
            new_entries.append(Entry(take, ref.first_page, self.leaf_pages))
            position += take
        if new_entries:
            tree.append_leaf_entries(new_entries)

    def replace(self, tree: LargeObjectTree, offset: int, data: bytes) -> None:
        size = tree.size()
        if offset < 0 or offset + len(data) > size:
            raise ByteRangeError(offset, len(data), size)
        for seg_offset, entry in tree.iter_segments(offset, offset + len(data)):
            lo = max(offset, seg_offset) - seg_offset
            hi = min(offset + len(data), seg_offset + entry.count) - seg_offset
            self._write_into_block(entry, lo, data[seg_offset + lo - offset : seg_offset + hi - offset])

    def insert(self, tree: LargeObjectTree, offset: int, data: bytes) -> None:
        size = tree.size()
        if offset < 0 or offset > size:
            raise ByteRangeError(offset, len(data), size)
        if not data:
            return
        if size == 0 or offset == size:
            self.append(tree, data)
            return
        path, local = tree.descend(offset)
        step = path[-1]
        entry = step.node.entries[step.index]
        block_lo = offset - local
        if entry.count + len(data) <= self.capacity:
            # Fits: shift the block's tail right in place.
            content = self.segio.read_bytes(entry.child, 0, entry.count)
            updated = content[:local] + data + content[local:]
            self.segio.write_segment(entry.child, updated)
            tree.replace_leaf_range(
                block_lo,
                block_lo + entry.count,
                [Entry(len(updated), entry.child, entry.pages)],
            )
            return
        # Overflow: split the block's bytes across as few blocks as
        # possible, reusing the original block for the first part.
        content = self.segio.read_bytes(entry.child, 0, entry.count)
        combined = content[:local] + data + content[local:]
        parts = self._split_bytes(combined)
        new_entries = []
        for i, part in enumerate(parts):
            if i == 0:
                self.segio.write_segment(entry.child, part)
                new_entries.append(Entry(len(part), entry.child, entry.pages))
            else:
                ref = self.allocator.allocate(self.leaf_pages)
                self.segio.write_segment(ref.first_page, part)
                new_entries.append(Entry(len(part), ref.first_page, self.leaf_pages))
        tree.replace_leaf_range(block_lo, block_lo + entry.count, new_entries)

    def delete(self, tree: LargeObjectTree, offset: int, length: int) -> None:
        size = tree.size()
        if length < 0 or offset < 0 or offset + length > size:
            raise ByteRangeError(offset, length, size)
        if length == 0:
            return
        lo, hi = offset, offset + length
        # Collect the boundary blocks' surviving bytes (reading them),
        # then replace the whole covered block range in one edit.
        touched: list[tuple[int, Entry]] = list(tree.iter_segments(lo, hi))
        first_offset, first_entry = touched[0]
        last_offset, last_entry = touched[-1]
        head = b""
        if first_offset < lo:
            head = self.segio.read_bytes(first_entry.child, 0, lo - first_offset)
        tail = b""
        last_end = last_offset + last_entry.count
        if last_end > hi:
            tail = self.segio.read_bytes(
                last_entry.child, hi - last_offset, last_entry.count
            )
        survivors = head + tail
        new_entries = []
        if survivors:
            parts = self._split_bytes(survivors)
            for i, part in enumerate(parts):
                if i == 0:
                    self.segio.write_segment(first_entry.child, part)
                    new_entries.append(Entry(len(part), first_entry.child, first_entry.pages))
                else:
                    ref = self.allocator.allocate(self.leaf_pages)
                    self.segio.write_segment(ref.first_page, part)
                    new_entries.append(Entry(len(part), ref.first_page, self.leaf_pages))
        dropped = tree.replace_leaf_range(first_offset, last_end, new_entries)
        reused = {e.child for e in new_entries}
        for e in dropped:
            if e.child not in reused:
                self.allocator.free(e.child, e.pages)
        if new_entries:
            self._maybe_merge(tree, first_offset)

    def delete_object(self, tree: LargeObjectTree) -> None:
        size = tree.size()
        if size:
            dropped = tree.replace_leaf_range(0, size, [])
            for e in dropped:
                self.allocator.free(e.child, e.pages)
        self.pager.free(tree.root_page)

    def stats(self, tree: LargeObjectTree) -> StoreStats:
        data_pages = 0
        meta_pages = 1

        def walk(node) -> None:
            nonlocal data_pages, meta_pages
            for entry in node.entries:
                if node.level == 0:
                    data_pages += entry.pages
                else:
                    meta_pages += 1
                    walk(self.pager.read(entry.child))

        walk(tree.read_root())
        return StoreStats(
            size_bytes=tree.size(), data_pages=data_pages, meta_pages=meta_pages
        )

    # ------------------------------------------------------------------
    # Leaf-block helpers
    # ------------------------------------------------------------------

    def _write_into_block(self, entry: Entry, local: int, data: bytes) -> None:
        """Read-modify-write the affected page span of one leaf block."""
        if not data:
            return
        ps = self.page_size
        page_lo = local // ps
        page_hi = (local + len(data) - 1) // ps
        span, base = self.segio.read_span(entry.child, page_lo, page_hi)
        patched = bytearray(span)
        patched[local - base : local - base + len(data)] = data
        self.segio.write_segment(entry.child, bytes(patched), at_page=page_lo)

    def _split_bytes(self, data: bytes) -> list[bytes]:
        """Split bytes across blocks, each at least half full (B-tree style)."""
        n_parts = ceil_div(len(data), self.capacity)
        base = len(data) // n_parts
        extra = len(data) % n_parts
        parts = []
        position = 0
        for i in range(n_parts):
            take = base + (1 if i < extra else 0)
            parts.append(data[position : position + take])
            position += take
        return parts

    def _maybe_merge(self, tree: LargeObjectTree, around: int) -> None:
        """Merge an underfull boundary block with its right neighbour.

        Exodus keeps leaves at least half full; after a delete the
        boundary block may have shrunk below that.
        """
        size = tree.size()
        if size == 0:
            return
        path, local = tree.descend(min(around, size - 1))
        step = path[-1]
        entry = step.node.entries[step.index]
        if entry.count * 2 >= self.capacity:
            return
        block_lo = min(around, size - 1) - local
        _neighbours = list(
            tree.iter_segments(block_lo, min(size, block_lo + entry.count + 1))
        )
        # Find a right neighbour to merge with.
        right = None
        for seg_offset, seg_entry in tree.iter_segments(
            block_lo + entry.count, min(size, block_lo + entry.count + 1)
        ):
            right = (seg_offset, seg_entry)
            break
        if right is None:
            return
        r_offset, r_entry = right
        combined_bytes = entry.count + r_entry.count
        mine = self.segio.read_bytes(entry.child, 0, entry.count)
        theirs = self.segio.read_bytes(r_entry.child, 0, r_entry.count)
        combined = mine + theirs
        if combined_bytes <= self.capacity:
            self.segio.write_segment(entry.child, combined)
            tree.replace_leaf_range(
                block_lo,
                r_offset + r_entry.count,
                [Entry(combined_bytes, entry.child, entry.pages)],
            )
            self.allocator.free(r_entry.child, r_entry.pages)
        else:
            # Rotate: even the bytes out between the two blocks.
            split = combined_bytes // 2
            self.segio.write_segment(entry.child, combined[:split])
            self.segio.write_segment(r_entry.child, combined[split:])
            tree.replace_leaf_range(
                block_lo,
                r_offset + r_entry.count,
                [
                    Entry(split, entry.child, entry.pages),
                    Entry(combined_bytes - split, r_entry.child, r_entry.pages),
                ],
            )
