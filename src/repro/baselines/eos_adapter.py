"""EOS itself behind the common baseline interface.

The comparative experiments (E4-E6) sweep a list of
:class:`~repro.baselines.base.LargeObjectStore` instances; this adapter
lets EOS take part without special-casing.
"""

from __future__ import annotations

from repro.api import EOSDatabase
from repro.baselines.base import LargeObjectStore, StoreStats
from repro.core.object import LargeObject


class EOSStore(LargeObjectStore):
    """The paper's system, adapted to the baseline interface."""

    name = "EOS"

    def __init__(self, db: EOSDatabase) -> None:
        self.db = db

    def create(self, data: bytes = b"", size_hint: int | None = None) -> LargeObject:
        return self.db.create_object(data, size_hint=size_hint)

    def size(self, handle: LargeObject) -> int:
        return handle.size()

    def read(self, handle: LargeObject, offset: int, length: int) -> bytes:
        return handle.read(offset, length)

    def append(self, handle: LargeObject, data: bytes) -> None:
        handle.append(data)

    def replace(self, handle: LargeObject, offset: int, data: bytes) -> None:
        handle.replace(offset, data)

    def insert(self, handle: LargeObject, offset: int, data: bytes) -> None:
        handle.insert(offset, data)

    def delete(self, handle: LargeObject, offset: int, length: int) -> None:
        handle.delete(offset, length)

    def delete_object(self, handle: LargeObject) -> None:
        self.db.delete_object(handle)

    def stats(self, handle: LargeObject) -> StoreStats:
        s = handle.stats()
        return StoreStats(
            size_bytes=s.size_bytes,
            data_pages=s.leaf_pages,
            meta_pages=s.index_pages,
        )
