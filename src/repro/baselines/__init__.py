"""The Section 2 comparator systems, behind one interface.

* :class:`~repro.baselines.systemr.SystemRStore` — linked 255-byte
  segments, whole-object access only, 32 KB cap [Astr76];
* :class:`~repro.baselines.wiss.WissStore` — one-page slices behind a
  one-page directory, ~1.6 MB cap [Chou85];
* :class:`~repro.baselines.starburst.StarburstStore` — buddy-allocated
  doubling extents, copy-right inserts/deletes [Lehm89];
* :class:`~repro.baselines.exodus.ExodusStore` — fixed-size leaf blocks
  under a positional B-tree [Care86];
* :class:`~repro.baselines.eos_adapter.EOSStore` — the paper's system,
  adapted so the benchmark harness can sweep everything uniformly.
"""

from repro.baselines.base import (
    LargeObjectStore,
    Placement,
    PlacementAllocator,
    StoreStats,
)
from repro.baselines.eos_adapter import EOSStore
from repro.baselines.exodus import ExodusStore
from repro.baselines.starburst import StarburstStore
from repro.baselines.systemr import SystemRStore
from repro.baselines.wiss import WissStore

__all__ = [
    "LargeObjectStore",
    "Placement",
    "PlacementAllocator",
    "StoreStats",
    "EOSStore",
    "ExodusStore",
    "StarburstStore",
    "SystemRStore",
    "WissStore",
]
