"""The common interface the comparative experiments sweep over.

Section 2 of the paper reviews four earlier designs — System R long
fields, WiSS slices, Starburst long fields, and Exodus large objects —
and argues each satisfies some but not all of EOS's six objectives.  To
measure that, every store (including EOS itself, via
:class:`~repro.baselines.eos_adapter.EOSStore`) implements this
interface; a store raises :class:`~repro.errors.UnsupportedOperation`
for operations the original system did not provide, which is itself one
of the paper's points of comparison.

Placement: systems that allocate storage a page (or slice) at a time end
up with logically consecutive data physically scattered — "blocks that
store consecutive byte ranges of the object are scattered over a disk
volume.  As a result, reads will be slow because virtually every disk
page fetch will most likely result in a disk seek."  The
:class:`Placement` policy makes that explicit and controllable: the
``CLUSTERED`` policy allocates first-fit (a fresh, single-tenant
volume); ``SCATTERED`` spreads successive allocations round-robin across
buddy spaces, modelling an aged, shared volume.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.buddy.manager import BuddyManager, SegmentRef
from repro.errors import OutOfSpace


class Placement(enum.Enum):
    """How page-at-a-time allocations land on the volume."""

    CLUSTERED = "clustered"
    SCATTERED = "scattered"


class PlacementAllocator:
    """Wraps a BuddyManager with a placement policy for small allocations."""

    def __init__(self, buddy: BuddyManager, placement: Placement) -> None:
        self.buddy = buddy
        self.placement = placement
        self._next_space = 0

    def allocate(self, n_pages: int) -> SegmentRef:
        """Allocate ``n_pages`` under the placement policy."""
        if self.placement is Placement.CLUSTERED:
            return self.buddy.allocate(n_pages)
        # Scattered: rotate the starting space so consecutive allocations
        # land in different regions of the volume.
        n_spaces = self.buddy.volume.n_spaces
        for attempt in range(n_spaces):
            index = (self._next_space + attempt) % n_spaces
            space = self.buddy.load_space(index)
            start = space.allocate(n_pages)
            if start is None:
                continue
            self.buddy._update_guess(index, space)
            self.buddy.store_space(index, space)
            self._next_space = (index + 1) % n_spaces
            extent = self.buddy.volume.spaces[index]
            return SegmentRef(extent.to_physical(start), n_pages)
        raise OutOfSpace(n_pages)

    def free(self, first_page: int, n_pages: int) -> None:
        """Return a previously allocated run."""
        self.buddy.free(first_page, n_pages)


@dataclass(frozen=True)
class StoreStats:
    """Space accounting every store can report for one object."""

    size_bytes: int
    data_pages: int
    meta_pages: int  # directories, descriptors, index pages

    @property
    def total_pages(self) -> int:
        return self.data_pages + self.meta_pages

    def utilization(self, page_size: int) -> float:
        """Live bytes over all allocated bytes (data + metadata)."""
        if self.total_pages == 0:
            return 0.0
        return self.size_bytes / (self.total_pages * page_size)


class LargeObjectStore(ABC):
    """A storage system for large byte-string objects.

    Handles are opaque; each store defines its own.  Stores must honour
    the byte-string semantics exactly (the cross-baseline property test
    runs all of them against one reference model) and raise
    ``UnsupportedOperation`` where the original system had no such
    operation.
    """

    #: Human-readable system name, used in benchmark tables.
    name: str = "abstract"

    @abstractmethod
    def create(self, data: bytes = b"", size_hint: int | None = None) -> Any:
        """Create an object, returning a handle."""

    @abstractmethod
    def size(self, handle: Any) -> int:
        """Object size in bytes."""

    @abstractmethod
    def read(self, handle: Any, offset: int, length: int) -> bytes:
        """Read a byte range (partial reads may be unsupported)."""

    @abstractmethod
    def append(self, handle: Any, data: bytes) -> None:
        """Append bytes at the end."""

    @abstractmethod
    def replace(self, handle: Any, offset: int, data: bytes) -> None:
        """Overwrite a byte range in place."""

    @abstractmethod
    def insert(self, handle: Any, offset: int, data: bytes) -> None:
        """Insert bytes at an arbitrary offset."""

    @abstractmethod
    def delete(self, handle: Any, offset: int, length: int) -> None:
        """Delete a byte range."""

    @abstractmethod
    def delete_object(self, handle: Any) -> None:
        """Destroy the object, returning its space."""

    @abstractmethod
    def stats(self, handle: Any) -> StoreStats:
        """Space accounting."""

    # -- conveniences ---------------------------------------------------

    def read_all(self, handle: Any) -> bytes:
        """Read the whole object."""
        return self.read(handle, 0, self.size(handle))

    def supports(self, operation: str) -> bool:
        """Whether the original system provided ``operation``.

        Subclasses override; defaults to True for everything.
        """
        return True
