"""WiSS long objects [Chou85], as characterized in Section 2.

"The Wisconsin Storage System stores large objects in data segments
called *slices* ... Each slice can be at most one page in length.  A
directory to these slices is stored as a regular (small) record, and it
may grow approximately to the size of a page.  It contains the address
and size of each slice.  Thus, with 4K-byte pages, the directory can
accommodate approximately 400 slices, which gives an upper limit of 1.6
Megabytes to the object size."

Consequences this model reproduces:

* the **object size cap** — the one-page directory bounds the number of
  slices; exceeding it raises :class:`~repro.errors.ObjectTooLarge`;
* the **loss of sequentiality** — slices are allocated one page at a
  time; under the SCATTERED placement policy, a sequential scan pays a
  seek per page (the E4 measurement);
* **cheap local edits** — an insert only splits one slice (partial
  slices are legal), so WiSS actually beats Starburst on updates while
  losing badly on scans and maximum size, matching the paper's
  each-design-satisfies-some-objectives framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import LargeObjectStore, Placement, PlacementAllocator, StoreStats
from repro.buddy.manager import BuddyManager
from repro.core.segio import SegmentIO
from repro.errors import ByteRangeError, ObjectTooLarge

_DIRECTORY_HEADER = 8
_SLICE_ENTRY_BYTES = 10  # 4-byte page id + 2-byte length, padded


@dataclass
class _Slice:
    page: int
    bytes: int  # 1 .. page_size


@dataclass
class WissObject:
    slices: list[_Slice] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(s.bytes for s in self.slices)


class WissStore(LargeObjectStore):
    """Slice-directory storage with a one-page directory cap."""

    name = "WiSS"

    def __init__(
        self,
        buddy: BuddyManager,
        segio: SegmentIO,
        *,
        placement: Placement = Placement.SCATTERED,
        max_slices: int | None = None,
    ) -> None:
        self.buddy = buddy
        self.segio = segio
        self.allocator = PlacementAllocator(buddy, placement)
        self.page_size = segio.page_size
        # The real cap follows from a one-page directory; tests with toy
        # page sizes may override it (the cap scales with page size
        # squared, which toy pages understate badly).
        self.max_slices = (
            max_slices
            if max_slices is not None
            else (self.page_size - _DIRECTORY_HEADER) // _SLICE_ENTRY_BYTES
        )

    @property
    def max_object_bytes(self) -> int:
        """The WiSS ceiling: slice count times page size (~1.6 MB at 4 KB)."""
        return self.max_slices * self.page_size

    def _check_directory(self, handle: WissObject, extra: int = 0) -> None:
        if len(handle.slices) + extra > self.max_slices:
            raise ObjectTooLarge(handle.size, self.max_object_bytes, self.name)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------

    def create(self, data: bytes = b"", size_hint: int | None = None) -> WissObject:
        handle = WissObject()
        if data:
            self.append(handle, data)
        return handle

    def size(self, handle: WissObject) -> int:
        return handle.size

    def read(self, handle: WissObject, offset: int, length: int) -> bytes:
        if length < 0 or offset < 0 or offset + length > handle.size:
            raise ByteRangeError(offset, length, handle.size)
        chunks = []
        position = 0
        for s in handle.slices:
            lo = max(offset, position)
            hi = min(offset + length, position + s.bytes)
            if lo < hi:
                page = self.segio.read_page(s.page)
                chunks.append(page[lo - position : hi - position])
            position += s.bytes
            if position >= offset + length:
                break
        return b"".join(chunks)

    def append(self, handle: WissObject, data: bytes) -> None:
        position = 0
        if handle.slices and handle.slices[-1].bytes < self.page_size:
            last = handle.slices[-1]
            take = min(self.page_size - last.bytes, len(data))
            self.segio.patch_page(last.page, last.bytes, data[:take])
            last.bytes += take
            position = take
        while position < len(data):
            take = min(self.page_size, len(data) - position)
            self._check_directory(handle, extra=1)
            ref = self.allocator.allocate(1)
            self.segio.write_segment(ref.first_page, data[position : position + take])
            handle.slices.append(_Slice(ref.first_page, take))
            position += take

    def replace(self, handle: WissObject, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > handle.size:
            raise ByteRangeError(offset, len(data), handle.size)
        position = 0
        for s in handle.slices:
            lo = max(offset, position)
            hi = min(offset + len(data), position + s.bytes)
            if lo < hi:
                self.segio.patch_page(s.page, lo - position, data[lo - offset : hi - offset])
            position += s.bytes
            if position >= offset + len(data):
                break

    def insert(self, handle: WissObject, offset: int, data: bytes) -> None:
        """Split the slice at ``offset`` and thread new slices in."""
        if offset < 0 or offset > handle.size:
            raise ByteRangeError(offset, len(data), handle.size)
        if not data:
            return
        index, local = self._slice_at(handle, offset)
        if index < len(handle.slices) and local > 0:
            # Split the slice: keep its prefix, move the suffix into the
            # inserted-byte stream.
            s = handle.slices[index]
            page = self.segio.read_page(s.page)
            suffix = page[local : s.bytes]
            s.bytes = local
            data = data + suffix
            index += 1
        # Write the inserted bytes (plus any displaced suffix) as new slices.
        new_slices = []
        position = 0
        while position < len(data):
            take = min(self.page_size, len(data) - position)
            self._check_directory(handle, extra=len(new_slices) + 1)
            ref = self.allocator.allocate(1)
            self.segio.write_segment(ref.first_page, data[position : position + take])
            new_slices.append(_Slice(ref.first_page, take))
            position += take
        handle.slices[index:index] = new_slices

    def delete(self, handle: WissObject, offset: int, length: int) -> None:
        if length < 0 or offset < 0 or offset + length > handle.size:
            raise ByteRangeError(offset, length, handle.size)
        if length == 0:
            return
        lo, hi = offset, offset + length
        out: list[_Slice] = []
        position = 0
        for s in handle.slices:
            s_lo, s_hi = position, position + s.bytes
            position = s_hi
            if s_hi <= lo or s_lo >= hi:
                out.append(s)
                continue
            keep_head = max(0, lo - s_lo)
            keep_tail = max(0, s_hi - hi)
            if keep_head == 0 and keep_tail == 0:
                self.allocator.free(s.page, 1)
                continue
            # Compact the survivors within the slice's page.
            page = self.segio.read_page(s.page)
            survivors = page[:keep_head] + page[s.bytes - keep_tail : s.bytes]
            self.segio.write_page(s.page, survivors)
            s.bytes = len(survivors)
            out.append(s)
        handle.slices = out

    def delete_object(self, handle: WissObject) -> None:
        for s in handle.slices:
            self.allocator.free(s.page, 1)
        handle.slices.clear()

    def stats(self, handle: WissObject) -> StoreStats:
        return StoreStats(
            size_bytes=handle.size,
            data_pages=len(handle.slices),
            meta_pages=1,  # the slice directory
        )

    # ------------------------------------------------------------------

    def _slice_at(self, handle: WissObject, offset: int) -> tuple[int, int]:
        position = 0
        for i, s in enumerate(handle.slices):
            if offset < position + s.bytes:
                return i, offset - position
            position += s.bytes
        return len(handle.slices), 0
