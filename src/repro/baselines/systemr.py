"""System R long fields [Astr76], as characterized in Section 2.

"System R supported long fields with lengths up to 32 Kilobytes.  The
long field was implemented as a linear linked list of small segments,
each 255 bytes in length, with the long field descriptor pointing to the
head of the list.  Partial reads or updates were not supported."

The model packs 255-byte mini-segments into a chain of pages (each page
carries a next-page pointer and as many mini-segments as fit), which is
how record-oriented storage of the era laid such lists out.  Reading the
field walks the chain page by page — under scattered placement, a seek
per page, which is why "good random access ... rules out solutions based
on chaining the pages in a linear linked list fashion" (Section 1).

Unsupported operations raise :class:`~repro.errors.UnsupportedOperation`
(partial read, replace, insert, delete); appends are allowed only at
creation time, matching the write-whole-field usage of the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import LargeObjectStore, Placement, PlacementAllocator, StoreStats
from repro.buddy.manager import BuddyManager
from repro.core.segio import SegmentIO
from repro.errors import ObjectTooLarge, UnsupportedOperation

MINISEGMENT_BYTES = 255
MAX_FIELD_BYTES = 32 * 1024
_PAGE_HEADER = 4  # next-page pointer
_RECORD_HEADER = 2  # mini-segment length prefix


@dataclass
class SystemRField:
    pages: list[int] = field(default_factory=list)
    size: int = 0
    sealed: bool = False  # fields are written once


class SystemRStore(LargeObjectStore):
    """Linked-list long fields: whole-object access only, 32 KB cap."""

    name = "SystemR"

    def __init__(
        self,
        buddy: BuddyManager,
        segio: SegmentIO,
        *,
        placement: Placement = Placement.SCATTERED,
        max_field_bytes: int = MAX_FIELD_BYTES,
    ) -> None:
        self.buddy = buddy
        self.segio = segio
        self.allocator = PlacementAllocator(buddy, placement)
        self.page_size = segio.page_size
        self.max_field_bytes = max_field_bytes
        # Mini-segments are 255 bytes, capped so one fits in a page even
        # with toy page sizes (the paper's examples use 100-byte pages).
        self.miniseg_bytes = min(
            MINISEGMENT_BYTES, self.page_size - _PAGE_HEADER - _RECORD_HEADER
        )
        self.minisegs_per_page = max(
            1,
            (self.page_size - _PAGE_HEADER) // (self.miniseg_bytes + _RECORD_HEADER),
        )

    # ------------------------------------------------------------------

    def create(self, data: bytes = b"", size_hint: int | None = None) -> SystemRField:
        handle = SystemRField()
        if data:
            self._write_field(handle, data)
        handle.sealed = bool(data)
        return handle

    def size(self, handle: SystemRField) -> int:
        return handle.size

    def read(self, handle: SystemRField, offset: int, length: int) -> bytes:
        if offset != 0 or length != handle.size:
            raise UnsupportedOperation(
                "System R long fields do not support partial reads"
            )
        return self._read_field(handle)

    def append(self, handle: SystemRField, data: bytes) -> None:
        if handle.sealed:
            raise UnsupportedOperation(
                "System R long fields are written whole at creation"
            )
        self._write_field(handle, data)
        handle.sealed = True

    def replace(self, handle: SystemRField, offset: int, data: bytes) -> None:
        raise UnsupportedOperation("System R long fields do not support updates")

    def insert(self, handle: SystemRField, offset: int, data: bytes) -> None:
        raise UnsupportedOperation("System R long fields do not support inserts")

    def delete(self, handle: SystemRField, offset: int, length: int) -> None:
        raise UnsupportedOperation("System R long fields do not support deletes")

    def delete_object(self, handle: SystemRField) -> None:
        for page in handle.pages:
            self.allocator.free(page, 1)
        handle.pages.clear()
        handle.size = 0

    def stats(self, handle: SystemRField) -> StoreStats:
        return StoreStats(
            size_bytes=handle.size,
            data_pages=len(handle.pages),
            meta_pages=1,  # the long field descriptor
        )

    def supports(self, operation: str) -> bool:
        return operation in {"create", "read_all", "size", "delete_object"}

    # ------------------------------------------------------------------
    # Chain layout
    # ------------------------------------------------------------------

    def _write_field(self, handle: SystemRField, data: bytes) -> None:
        if len(data) > self.max_field_bytes:
            raise ObjectTooLarge(len(data), self.max_field_bytes, self.name)
        minisegs = [
            data[i : i + self.miniseg_bytes]
            for i in range(0, len(data), self.miniseg_bytes)
        ]
        pages: list[int] = []
        images: list[bytearray] = []
        for i in range(0, len(minisegs), self.minisegs_per_page):
            batch = minisegs[i : i + self.minisegs_per_page]
            image = bytearray(self.page_size)
            cursor = _PAGE_HEADER
            for seg in batch:
                image[cursor : cursor + 2] = len(seg).to_bytes(2, "little")
                image[cursor + 2 : cursor + 2 + len(seg)] = seg
                cursor += _RECORD_HEADER + self.miniseg_bytes
            ref = self.allocator.allocate(1)
            pages.append(ref.first_page)
            images.append(image)
        # Thread the chain, then write each page (a separate transfer —
        # the chain is what forces page-at-a-time I/O).  Page 0 is the
        # volume header, never allocatable, so it serves as "end of list".
        for i, image in enumerate(images):
            next_page = pages[i + 1] if i + 1 < len(pages) else 0
            image[0:4] = next_page.to_bytes(4, "little")
            self.segio.write_page(pages[i], image)
        handle.pages = pages
        handle.size = len(data)

    def _read_field(self, handle: SystemRField) -> bytes:
        """Follow the chain from the head, as the descriptor only points
        to the first segment."""
        chunks: list[bytes] = []
        remaining = handle.size
        page_id = handle.pages[0] if handle.pages else 0
        while page_id and remaining > 0:
            image = self.segio.read_page(page_id)
            cursor = _PAGE_HEADER
            for _ in range(self.minisegs_per_page):
                if remaining <= 0:
                    break
                length = int.from_bytes(image[cursor : cursor + 2], "little")
                if length == 0:
                    break
                take = min(length, remaining)
                chunks.append(image[cursor + 2 : cursor + 2 + take])
                remaining -= take
                cursor += _RECORD_HEADER + self.miniseg_bytes
            page_id = int.from_bytes(image[0:4], "little")
        return b"".join(chunks)
