"""Exposition: the live status document and the metrics HTTP sidecar.

Two consumers want to look at a running server without attaching a
debugger: the METRICS opcode (served on the object-server port itself,
before admission control) and the optional HTTP sidecar this module
provides.  Both render the same :func:`status_snapshot` — one JSON
document combining the server's scheduling state, the metrics registry,
the ``db.stats`` counters and the volume's space accounting.

:class:`MetricsHTTPServer` is a stdlib ``ThreadingHTTPServer`` on its
own daemon thread serving

* ``GET /metrics`` — Prometheus text format
  (:func:`repro.obs.prom.render_prometheus` over the live registry,
  plus space/uptime gauges grafted from the status document);
* ``GET /healthz`` — a small JSON liveness document (status, uptime,
  inflight, rejection count).

The sidecar holds no state of its own: every request recomputes from
the live registry, so a scrape always sees current values.  Space
accounting walks the buddy directory (real page reads), so it is taken
under ``db.op_lock`` — a scrape is a cheap reader, not a stop-the-world
event.
"""

from __future__ import annotations

import http.server
import json
import threading
import time

from repro.obs.prom import render_prometheus


def _space_doc(db) -> dict:
    # free_pages() reads buddy directory pages, so serialise with the op
    # entry points rather than racing them.  Walks pool/buddy state:
    # when the database belongs to a shard this must run on the shard
    # worker — call it via _space_for / shard.submit, never directly.
    with db.op_lock:
        free = db.free_pages()
    total = db.volume.total_data_pages
    return {
        "free_pages": free,
        "total_pages": total,
        "utilization": round(1.0 - free / total, 4) if total else 0.0,
    }


def _owning_shard(db, server):
    """The live shard whose worker thread owns this database, if any."""
    shard_set = getattr(server, "shards", None)
    if shard_set is None:
        return None
    for shard in shard_set.shards:
        if shard.db is db and shard.alive:
            return shard
    return None


def _space_for(db, server) -> dict:
    """A space document, routed through the owning shard's worker.

    The exposition endpoints run on sidecar/executor threads; a served
    database's pool and buddy are confined to its shard worker, so the
    walk is submitted there (EOS008).  Unserved databases have no
    worker and are walked inline.
    """
    shard = _owning_shard(db, server)
    if shard is not None:
        return shard.submit(_space_doc, db).result()
    return _space_doc(db)


def status_snapshot(db, server=None, *, include_space: bool = True) -> dict:
    """One JSON-ready document describing a database (and its server).

    ``server`` is duck-typed (anything with the
    :class:`~repro.server.server.EOSServer` scheduling attributes);
    pass None to snapshot a database that is not being served.  For a
    multi-shard server pass ``db=None``: the document then carries a
    per-shard ``shards`` list (each entry with that shard's stats and
    space) plus the fleet-aggregated ``space``; its metrics come from
    the coordinator's registry.  The single-database document keeps its
    pre-sharding shape exactly.
    """
    doc: dict = {"ts": round(time.time(), 3)}
    shard_set = getattr(server, "shards", None) if db is None else None
    if server is not None:
        started = getattr(server, "started_at", 0.0)
        doc["server"] = {
            "host": server.host,
            "port": server.port,
            "inflight": server.inflight,
            "write_queued": server.write_queued,
            "max_inflight": server.max_inflight,
            "max_write_queue": server.max_write_queue,
            "uptime_s": round(time.time() - started, 3) if started else 0.0,
            "flight": {
                "entries": len(server.flight),
                "dumps": server.flight.dumps,
                "last_dump": server.flight.last_dump_path,
            },
        }
        if shard_set is not None:
            doc["server"]["shards"] = shard_set.n_shards
    monitor = getattr(server, "health", None)
    if monitor is not None:
        # The HEALTH section: the monitor's cached last tick (never a
        # fresh walk — a scrape must stay cheap) plus the heat top-k.
        doc["health"] = monitor.status_doc()
    compactor = getattr(server, "compactor", None)
    if compactor is not None:
        # The COMPACTION section: cached per-shard totals and the last
        # tick's progress docs — again no fresh walk on the scrape path.
        doc["compaction"] = compactor.status_doc()
    if db is not None:
        doc["metrics"] = db.obs.metrics.snapshot()
        try:
            if db.is_closed:
                doc["closed"] = True
                return doc
            doc["stats"] = db.stats.snapshot().as_dict()
            if include_space:
                doc["space"] = _space_for(db, server)
        except Exception as exc:  # a snapshot must never take the server down
            doc["error"] = f"{exc.__class__.__name__}: {exc}"
        return doc

    # Multi-shard: per-shard documents plus the aggregate space rollup.
    doc["metrics"] = server.obs.metrics.snapshot()
    shard_docs: list[dict] = []
    total_free = total_pages = 0
    for shard in shard_set.shards:
        sdoc: dict = {"shard": shard.index, "alive": shard.alive}
        try:
            if shard.db.is_closed:
                sdoc["closed"] = True
            else:
                sdoc["stats"] = shard.db.stats.snapshot().as_dict()
                if include_space:
                    # The walk touches this shard's pool/buddy: run it
                    # on the owning worker (a dead shard raises
                    # ShardUnavailable into the per-shard error slot).
                    sdoc["space"] = shard.submit(_space_doc, shard.db).result()
                    total_free += sdoc["space"]["free_pages"]
                    total_pages += sdoc["space"]["total_pages"]
        except Exception as exc:  # one sick shard must not hide the rest
            sdoc["error"] = f"{exc.__class__.__name__}: {exc}"
        shard_docs.append(sdoc)
    doc["shards"] = shard_docs
    if include_space and total_pages:
        doc["space"] = {
            "free_pages": total_free,
            "total_pages": total_pages,
            "utilization": round(1.0 - total_free / total_pages, 4),
        }
    return doc


def gauges_from_status(status: dict) -> dict[str, float]:
    """Registry-external gauges for the Prometheus rendering."""
    out: dict[str, float] = {}
    server = status.get("server")
    if server:
        out["server.uptime_seconds"] = server["uptime_s"]
        out["server.max_inflight"] = server["max_inflight"]
        out["server.flight_entries"] = server["flight"]["entries"]
        out["server.flight_dumps"] = server["flight"]["dumps"]
    space = status.get("space")
    if space:
        out["buddy.free_pages"] = space["free_pages"]
        out["buddy.total_pages"] = space["total_pages"]
        out["buddy.utilization"] = space["utilization"]
    stats = status.get("stats")
    if stats:
        out["buffer.hit_ratio"] = stats["buffer"]["hit_ratio"]
    health = status.get("health")
    if health:
        for sample in health.get("samples", ()):
            if "error" in sample:
                continue
            shard = sample.get("shard")
            tag = '{shard="%d"}' % shard if shard is not None else ""
            out[f"frag_index{tag}"] = sample["frag_index"]
            out[f"free_extent_largest{tag}"] = sample["largest_free_extent"]
            out[f"free_extent_count{tag}"] = sample["free_extent_count"]
            for edge, count in sample.get("free_extent_histogram", {}).items():
                if shard is not None:
                    btag = '{shard="%d",le="%s"}' % (shard, edge)
                else:
                    btag = '{le="%s"}' % edge
                # A snapshot histogram (per-bucket counts at the last
                # sample), not a cumulative Prometheus histogram.
                out[f"free_extents{btag}"] = count
        for row in health.get("heat", ()):
            out['object_heat{oid="%d",kind="read"}' % row["oid"]] = row["read"]
            out['object_heat{oid="%d",kind="write"}' % row["oid"]] = row["write"]
    compaction = status.get("compaction")
    if compaction:
        out["compaction.ticks"] = compaction["runs"]
        out["compaction.paused_ticks"] = compaction["paused_ticks"]
        out["compaction.backpressure_pauses"] = compaction[
            "backpressure_pauses"
        ]
        rows = list(compaction.get("per_shard", ()))
        totals = compaction.get("totals")
        if totals is not None:
            rows.append({"shard": None, **totals})
        for row in rows:
            shard = row["shard"]
            tag = '{shard="%d"}' % shard if shard is not None else ""
            out[f"compaction.runs{tag}"] = row["runs"]
            out[f"compaction.pages_moved{tag}"] = row["pages_moved"]
            out[f"compaction.objects_moved{tag}"] = row["objects_moved"]
            out[f"compaction.frag_index{tag}"] = row["frag_index"]
            # Cumulative frag-index improvement across this target's
            # passes (the frag-delta series).
            out[f"compaction.frag_delta{tag}"] = row["frag_delta"]
    if server and "shards" in server:
        out["server.shards"] = server["shards"]
    for sdoc in status.get("shards", ()):
        # Per-shard series carry a shard label; metric_name() keeps the
        # label suffix verbatim when sanitizing.
        label = '{shard="%d"}' % sdoc["shard"]
        down = not sdoc.get("alive") or sdoc.get("closed") or "error" in sdoc
        out[f"shard.up{label}"] = 0.0 if down else 1.0
        sspace = sdoc.get("space")
        if sspace:
            out[f"buddy.free_pages{label}"] = sspace["free_pages"]
            out[f"buddy.utilization{label}"] = sspace["utilization"]
        sstats = sdoc.get("stats")
        if sstats:
            out[f"buffer.hit_ratio{label}"] = sstats["buffer"]["hit_ratio"]
    out["up"] = 0.0 if status.get("closed") else 1.0
    return out


class _Handler(http.server.BaseHTTPRequestHandler):
    # The sidecar is diagnostics, not an access log.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        sidecar: "MetricsHTTPServer" = self.server.sidecar  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    sidecar.render_metrics().encode("utf-8"),
                )
            elif path == "/healthz":
                self._send(
                    200,
                    "application/json",
                    json.dumps(sidecar.health()).encode("utf-8"),
                )
            else:
                self._send(404, "text/plain", b"try /metrics or /healthz\n")
        except BrokenPipeError:
            pass


class MetricsHTTPServer:
    """A daemon-thread HTTP sidecar exposing ``/metrics`` and ``/healthz``."""

    def __init__(self, db, server=None, host: str = "127.0.0.1", port: int = 0) -> None:
        # A multi-shard EOSServer has no single database; pass db=None
        # and the sidecar renders from the coordinator's registry with
        # per-shard series from the status document.
        if db is None and server is not None:
            db = getattr(server, "db", None)
        self.db = db
        self.server = server
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self._httpd: http.server.ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def _registry(self):
        if self.db is not None:
            return self.db.obs.metrics
        return self.server.obs.metrics

    # -- rendering -----------------------------------------------------------

    def render_metrics(self) -> str:
        """The Prometheus text document for the current instant."""
        status = status_snapshot(self.db, self.server)
        return render_prometheus(
            self._registry(), extra_gauges=gauges_from_status(status)
        )

    def health(self) -> dict:
        """The ``/healthz`` document."""
        status = status_snapshot(self.db, self.server, include_space=False)
        doc = {"status": "closed" if status.get("closed") else "ok"}
        server = status.get("server")
        if server:
            doc["uptime_s"] = server["uptime_s"]
            doc["inflight"] = server["inflight"]
        metrics = status.get("metrics", {})
        doc["requests"] = metrics.get("server.requests", 0)
        doc["rejections"] = metrics.get("server.rejections", 0)
        return doc

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MetricsHTTPServer":
        """Bind and serve on a daemon thread (idempotent); returns self."""
        if self._httpd is not None:
            return self
        httpd = http.server.ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.sidecar = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="eos-metrics-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the sidecar down (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
