"""The blocking client: one socket, one request in flight.

:class:`EOSClient` speaks the frame protocol of
:mod:`repro.server.protocol` over a plain TCP socket.  Calls block until
the response arrives; server-side errors re-raise as the matching class
from the :mod:`repro.errors` hierarchy, so remote and in-process code
handle failures identically::

    with EOSClient("127.0.0.1", 7433) as c:
        oid = c.create(b"hello", size_hint=1 << 20)
        c.append(oid, b" world")
        assert c.read(oid, 0, 11) == b"hello world"

Tracing: :meth:`EOSClient.enable_tracing` writes client-side spans to a
JSON-lines file and propagates the trace context on the wire (the
request frame carries :data:`~repro.server.protocol.FLAG_TRACE` plus the
trace id and sending span id).  Each call becomes a ``client.request``
root with ``client.send``/``client.recv`` children; a tracing server
roots its ``server.request`` tree under the same trace id, so ::

    python -m repro.tools.tracefmt client.jsonl --merge server.jsonl

renders one tree spanning both processes.  Trace ids are seeded randomly
per client so concurrent clients' traces stay distinct in the server's
file.

The client is not thread-safe — a connection carries one conversation.
Concurrent callers each open their own client (connections are what the
server scales by).
"""

from __future__ import annotations

import json
import os
import random
import socket

from repro.errors import ConnectionClosed, ProtocolError
from repro.obs.sinks import JsonLinesSink
from repro.obs.tracer import NULL_TRACER, Observability
from repro.server import protocol
from repro.server.protocol import Opcode, RemoteStat, Status
from repro.util import copytrace


class EOSClient:
    """A blocking connection to an :class:`~repro.server.server.EOSServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7433,
        *,
        timeout: float | None = 30.0,
        max_payload: int = protocol.MAX_PAYLOAD,
        obs: Observability | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_payload = max_payload
        #: Optional observability bundle; when enabled, every call is a
        #: traced span and the trace context rides the wire.
        self.obs = obs
        self._owns_obs = False
        self._sock: socket.socket | None = None
        self._next_id = 1

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def connect(self) -> "EOSClient":
        """Open the TCP connection (idempotent); returns self."""
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    def close(self) -> None:
        """Close the connection (and a tracing bundle this client owns)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        if self._owns_obs and self.obs is not None:
            obs, self.obs = self.obs, None
            self._owns_obs = False
            obs.close()

    def enable_tracing(self, path: str | os.PathLike) -> "EOSClient":
        """Trace every call to a JSON-lines file and propagate on the wire.

        Creates (and owns) an :class:`~repro.obs.tracer.Observability`
        bundle writing to ``path``; :meth:`close` flushes and closes it.
        The trace-id allocator is seeded randomly so ids from concurrent
        clients don't collide in the server's trace file.
        """
        if self.obs is None:
            self.obs = Observability()
            self._owns_obs = True
        if not self.obs.enabled:
            self.obs.enable(
                sinks=[JsonLinesSink(path)],
                first_trace_id=random.randrange(1 << 32, 1 << 62),
            )
        return self

    def __enter__(self) -> "EOSClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------

    def _send_frames(self, frames) -> None:
        """Flush an iovec list to the socket without concatenating it.

        Uses ``socket.sendmsg`` scatter-gather where available, looping
        on partial sends; falls back to per-frame ``sendall``.
        """
        assert self._sock is not None
        sock = self._sock
        if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX
            for frame in frames:
                sock.sendall(frame)
            return
        views = [memoryview(frame).cast("B") for frame in frames if len(frame)]
        while views:
            sent = sock.sendmsg(views)
            while views and sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            if sent and views:
                views[0] = views[0][sent:]

    def _recv_into(self, view: memoryview) -> None:
        """Fill ``view`` from the socket — kernel to buffer, no
        Python-side reassembly."""
        assert self._sock is not None
        n = len(view)
        position = 0
        while position < n:
            got = self._sock.recv_into(view[position:])
            if not got:
                self.close()
                raise ConnectionClosed(
                    f"server closed the connection ({n - position} of {n} "
                    "bytes outstanding)"
                )
            position += got

    def _recv_exact(self, n: int) -> bytearray:
        buf = bytearray(n)
        if n:
            self._recv_into(memoryview(buf))
        return buf

    def _recv_response(self, request_id: int, dest: memoryview | None = None):
        """Receive one response frame.

        Returns ``(header, payload)``; with ``dest`` given and an OK
        status, the payload lands directly in ``dest`` and the byte
        count is returned in its place.
        """
        header = protocol.decode_header(
            self._recv_exact(protocol.HEADER.size), max_payload=self.max_payload
        )
        if header.kind != protocol.KIND_RESPONSE:
            raise ProtocolError("expected a response frame")
        if header.request_id not in (request_id, 0):
            raise ProtocolError(
                f"response id {header.request_id} does not match request "
                f"{request_id}"
            )
        if dest is not None and header.code == Status.OK:
            if header.length > len(dest):
                raise ProtocolError(
                    f"response payload of {header.length} bytes exceeds the "
                    f"{len(dest)}-byte destination buffer"
                )
            self._recv_into(dest[: header.length])
            return header, header.length
        return header, self._recv_exact(header.length)

    def _exchange(self, opcode: Opcode, payload, *, oid: int | None = None,
                  dest: memoryview | None = None):
        """One request/response exchange over the frame protocol.

        The request goes out as an iovec list (header, trace ctx,
        borrowed payload); error responses re-raise as the mapped
        exception class.  Returns the response payload buffer, or the
        byte count when ``dest`` captured it.
        """
        self.connect()
        request_id = self._next_id
        self._next_id += 1
        tracer = self.obs.tracer if self.obs is not None else NULL_TRACER
        if not tracer.enabled:
            self._send_frames(protocol.request_frames(opcode, request_id, payload))
            header, body = self._recv_response(request_id, dest)
            if header.code != Status.OK:
                raise protocol.exception_from(
                    header.code, body.decode("utf-8", "replace")
                )
            return body
        attrs = {"opcode": opcode.name.lower()}
        if oid is not None:
            attrs["oid"] = oid
        with tracer.span("client.request", **attrs) as root:
            frames = protocol.request_frames(
                opcode, request_id, payload,
                trace=(root.trace_id, root.span_id),
            )
            with tracer.span("client.send", bytes=sum(len(f) for f in frames)):
                self._send_frames(frames)
            with tracer.span("client.recv"):
                header, body = self._recv_response(request_id, dest)
            try:
                root.set(status=Status(header.code).name.lower())
            except ValueError:
                root.set(status=int(header.code))
            if header.code != Status.OK:
                raise protocol.exception_from(
                    header.code, body.decode("utf-8", "replace")
                )
            return body

    def call(self, opcode: Opcode, payload: bytes = b"", *, oid: int | None = None) -> bytes:
        """One request/response exchange; returns the response payload.

        ``oid`` is trace metadata only (it tags the ``client.request``
        span so ``tracefmt --oid`` can filter); the object id itself
        always travels inside ``payload``.  The returned ``bytes`` is
        the one client-side payload copy; :meth:`read_into` avoids it.
        """
        return copytrace.materialize(
            self._exchange(opcode, payload, oid=oid), "client.recv"
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self, data: bytes = b"") -> bytes:
        """Round-trip ``data`` through the server."""
        return self.call(Opcode.PING, data)

    def create(self, data: bytes = b"", *, size_hint: int | None = None) -> int:
        """Create an object (optionally with initial content); returns its oid."""
        return protocol.unpack_u64(
            self.call(Opcode.CREATE, protocol.pack_create(data, size_hint))
        )

    def append(self, oid: int, data: bytes) -> int:
        """Append bytes; returns the object's new size."""
        return protocol.unpack_u64(
            self.call(Opcode.APPEND, protocol.pack_oid_data(oid, data), oid=oid)
        )

    def read(
        self, oid: int, offset: int, length: int,
        *, version: int | None = None,
    ) -> bytes:
        """Read ``length`` bytes at ``offset`` (of ``version``, if given).

        With no ``version`` the request goes out in the short (legacy)
        form, so the client interoperates with version-unaware servers.
        """
        return self.call(
            Opcode.READ, protocol.pack_read(oid, offset, length, version), oid=oid
        )

    def read_into(
        self, oid: int, offset: int, length: int, dest,
        *, version: int | None = None,
    ) -> int:
        """Read ``length`` bytes at ``offset`` directly into ``dest``.

        The zero-copy client read: the payload goes from the socket
        into the caller's writable buffer with no intermediate Python
        copies.  Returns the byte count received.
        """
        out = memoryview(dest).cast("B")
        if len(out) < length:
            raise ValueError(
                f"destination of {len(out)} bytes cannot hold a "
                f"{length}-byte read"
            )
        return self._exchange(
            Opcode.READ,
            protocol.pack_read(oid, offset, length, version),
            oid=oid,
            dest=out[:length],
        )

    def write(self, oid: int, offset: int, data: bytes) -> int:
        """Overwrite bytes in place; returns the (unchanged) size."""
        return protocol.unpack_u64(
            self.call(
                Opcode.WRITE, protocol.pack_oid_offset_data(oid, offset, data), oid=oid
            )
        )

    def insert(self, oid: int, offset: int, data: bytes) -> int:
        """Insert bytes at ``offset``; returns the new size."""
        return protocol.unpack_u64(
            self.call(
                Opcode.INSERT, protocol.pack_oid_offset_data(oid, offset, data), oid=oid
            )
        )

    def delete(self, oid: int, offset: int, length: int) -> int:
        """Delete a byte range; returns the new size."""
        return protocol.unpack_u64(
            self.call(
                Opcode.DELETE,
                protocol.pack_oid_offset_length(oid, offset, length),
                oid=oid,
            )
        )

    def size(self, oid: int) -> int:
        """The object's size in bytes."""
        return protocol.unpack_u64(
            self.call(Opcode.SIZE, protocol.pack_oid(oid), oid=oid)
        )

    def stat(self, oid: int, *, version: int | None = None) -> RemoteStat:
        """Space accounting plus the root page (of ``version``, if given).

        A plain ``stat(oid)`` sends the short (legacy) request form and
        gets the short response, so it round-trips with version-unaware
        servers; passing ``version`` (including ``0`` for "latest, with
        its version number") opts into the long forms.
        """
        return protocol.unpack_stat(
            self.call(Opcode.STAT, protocol.pack_stat_req(oid, version), oid=oid)
        )

    def versions(self, oid: int) -> list:
        """The object's committed versions, ascending.

        Returns :class:`~repro.ops.VersionInfo` records; an empty list
        when the server's database has versioning disabled.
        """
        return protocol.unpack_versions(
            self.call(Opcode.VERSIONS, protocol.pack_oid(oid), oid=oid)
        )

    def list_objects(self) -> list[tuple[int, int]]:
        """Every object on the server as ``(oid, size)``."""
        return protocol.unpack_listing(self.call(Opcode.LIST))

    def compact(
        self,
        *,
        target_frag: float | None = None,
        max_pages: int | None = None,
    ) -> list[dict]:
        """Run one compaction pass on every live shard (COMPACT opcode).

        Blocks until the pass finishes; returns the per-shard progress
        documents (objects/pages moved, frag before/after, stop reason).
        ``target_frag`` stops each shard early once its volume frag
        index reaches the goal; ``max_pages`` caps pages written per
        shard.  Long passes can exceed the client timeout — cap the
        work with ``max_pages`` or raise ``timeout`` for aged volumes.
        """
        return json.loads(
            self.call(
                Opcode.COMPACT,
                protocol.pack_compact_req(target_frag, max_pages),
            ).decode("utf-8")
        )

    # ------------------------------------------------------------------
    # ObjectOps conformance
    # ------------------------------------------------------------------
    # The canonical typed surface (:class:`repro.ops.ObjectOps`), so code
    # written against the interface runs unchanged over a local
    # EOSDatabase, a Shard, or this remote client.  Each simply delegates
    # to the friendly wire method above.

    def op_create(self, data: bytes = b"", *, size_hint: int | None = None) -> int:
        """Create an object; its oid (``ObjectOps`` spelling)."""
        return self.create(data, size_hint=size_hint)

    def op_append(self, oid: int, data: bytes) -> int:
        """Append bytes; the new size (``ObjectOps`` spelling)."""
        return self.append(oid, data)

    def op_read(
        self, oid: int, *, offset: int, length: int,
        version: int | None = None,
    ) -> bytes:
        """Read a byte range (``ObjectOps`` spelling)."""
        return self.read(oid, offset, length, version=version)

    def op_read_into(
        self, oid: int, dest, *, offset: int, length: int,
        version: int | None = None,
    ) -> int:
        """Read into a buffer; the byte count (``ObjectOps`` spelling)."""
        return self.read_into(oid, offset, length, dest, version=version)

    def op_write(self, oid: int, data: bytes, *, offset: int) -> int:
        """Overwrite in place (``ObjectOps`` spelling)."""
        return self.write(oid, offset, data)

    def op_insert(self, oid: int, data: bytes, *, offset: int) -> int:
        """Insert at ``offset``; the new size (``ObjectOps`` spelling)."""
        return self.insert(oid, offset, data)

    def op_delete(self, oid: int, *, offset: int, length: int) -> int:
        """Delete a byte range; the new size (``ObjectOps`` spelling)."""
        return self.delete(oid, offset, length)

    def op_size(self, oid: int) -> int:
        """The object's size in bytes (``ObjectOps`` spelling)."""
        return self.size(oid)

    def op_stat(self, oid: int, *, version: int | None = None) -> RemoteStat:
        """Space accounting plus the root page (``ObjectOps`` spelling)."""
        return self.stat(oid, version=version)

    def op_versions(self, oid: int) -> list:
        """The object's committed versions (``ObjectOps`` spelling)."""
        return self.versions(oid)

    def op_list(self) -> list[tuple[int, int]]:
        """Every object as ``(oid, size)`` (``ObjectOps`` spelling)."""
        return self.list_objects()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def metrics(self) -> dict:
        """The server's live status document (METRICS opcode).

        Served before admission control, so it works against an
        overloaded server.
        """
        return json.loads(self.call(Opcode.METRICS).decode("utf-8"))

    def flight(self) -> str:
        """The server's flight-recorder snapshot as JSON-lines text."""
        return self.call(Opcode.FLIGHT).decode("utf-8")
