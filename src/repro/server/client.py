"""The blocking client: one socket, one request in flight.

:class:`EOSClient` speaks the frame protocol of
:mod:`repro.server.protocol` over a plain TCP socket.  Calls block until
the response arrives; server-side errors re-raise as the matching class
from the :mod:`repro.errors` hierarchy, so remote and in-process code
handle failures identically::

    with EOSClient("127.0.0.1", 7433) as c:
        oid = c.create(b"hello", size_hint=1 << 20)
        c.append(oid, b" world")
        assert c.read(oid, 0, 11) == b"hello world"

The client is not thread-safe — a connection carries one conversation.
Concurrent callers each open their own client (connections are what the
server scales by).
"""

from __future__ import annotations

import socket

from repro.errors import ConnectionClosed, ProtocolError
from repro.server import protocol
from repro.server.protocol import Opcode, RemoteStat, Status


class EOSClient:
    """A blocking connection to an :class:`~repro.server.server.EOSServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7433,
        *,
        timeout: float | None = 30.0,
        max_payload: int = protocol.MAX_PAYLOAD,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_payload = max_payload
        self._sock: socket.socket | None = None
        self._next_id = 1

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def connect(self) -> "EOSClient":
        """Open the TCP connection (idempotent); returns self."""
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "EOSClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------

    def _recv_exact(self, n: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                self.close()
                raise ConnectionClosed(
                    f"server closed the connection ({remaining} of {n} bytes "
                    "outstanding)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def call(self, opcode: Opcode, payload: bytes = b"") -> bytes:
        """One request/response exchange; returns the response payload."""
        sock = self.connect()._sock
        assert sock is not None
        request_id = self._next_id
        self._next_id += 1
        sock.sendall(protocol.encode_request(opcode, request_id, payload))
        header = protocol.decode_header(
            self._recv_exact(protocol.HEADER.size), max_payload=self.max_payload
        )
        if header.kind != protocol.KIND_RESPONSE:
            raise ProtocolError("expected a response frame")
        if header.request_id not in (request_id, 0):
            raise ProtocolError(
                f"response id {header.request_id} does not match request "
                f"{request_id}"
            )
        body = self._recv_exact(header.length)
        if header.code != Status.OK:
            raise protocol.exception_from(
                header.code, body.decode("utf-8", "replace")
            )
        return body

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self, data: bytes = b"") -> bytes:
        """Round-trip ``data`` through the server."""
        return self.call(Opcode.PING, data)

    def create(self, data: bytes = b"", *, size_hint: int | None = None) -> int:
        """Create an object (optionally with initial content); returns its oid."""
        return protocol.unpack_u64(
            self.call(Opcode.CREATE, protocol.pack_create(data, size_hint))
        )

    def append(self, oid: int, data: bytes) -> int:
        """Append bytes; returns the object's new size."""
        return protocol.unpack_u64(
            self.call(Opcode.APPEND, protocol.pack_oid_data(oid, data))
        )

    def read(self, oid: int, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``."""
        return self.call(
            Opcode.READ, protocol.pack_oid_offset_length(oid, offset, length)
        )

    def write(self, oid: int, offset: int, data: bytes) -> int:
        """Overwrite bytes in place; returns the (unchanged) size."""
        return protocol.unpack_u64(
            self.call(Opcode.WRITE, protocol.pack_oid_offset_data(oid, offset, data))
        )

    def insert(self, oid: int, offset: int, data: bytes) -> int:
        """Insert bytes at ``offset``; returns the new size."""
        return protocol.unpack_u64(
            self.call(Opcode.INSERT, protocol.pack_oid_offset_data(oid, offset, data))
        )

    def delete(self, oid: int, offset: int, length: int) -> int:
        """Delete a byte range; returns the new size."""
        return protocol.unpack_u64(
            self.call(Opcode.DELETE, protocol.pack_oid_offset_length(oid, offset, length))
        )

    def size(self, oid: int) -> int:
        """The object's size in bytes."""
        return protocol.unpack_u64(self.call(Opcode.SIZE, protocol.pack_oid(oid)))

    def stat(self, oid: int) -> RemoteStat:
        """Space accounting plus the root page."""
        return protocol.unpack_stat(self.call(Opcode.STAT, protocol.pack_oid(oid)))

    def list_objects(self) -> list[tuple[int, int]]:
        """Every object on the server as ``(oid, size)``."""
        return protocol.unpack_listing(self.call(Opcode.LIST))
