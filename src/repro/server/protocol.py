"""The wire protocol: length-prefixed binary frames over a byte stream.

Every message — request or response — is one *frame*::

    magic    4 bytes   b"EOS1"
    kind     u8        low nibble: 0 = request, 1 = response
                       high nibble: flags (:data:`FLAG_TRACE`)
    code     u8        request: opcode        response: status
    id       u32       request id, echoed verbatim in the response
    length   u32       payload length in bytes (trace ctx not counted)
    [trace   12 bytes  only when FLAG_TRACE: u64 trace id, u32 span id]
    payload  <length>  opcode-specific encoding (little-endian structs)

Frames are self-delimiting, so a connection is just a sequence of them;
the server answers each request with exactly one response carrying the
same ``id``.  Payloads are capped (:data:`MAX_PAYLOAD` by default) so a
corrupt or hostile length field cannot make either side buffer without
bound — an oversized length is a :class:`~repro.errors.ProtocolError`,
not an allocation.

Trace propagation: a client with tracing enabled sets
:data:`FLAG_TRACE` in the kind byte and appends a 12-byte trace context
(:data:`TRACE_CTX`: its trace id and the sending span's id) directly
after the fixed header.  The server roots its per-request span tree
under that context, so ``python -m repro.tools.tracefmt client.jsonl
--merge server.jsonl`` renders one tree spanning both processes.  The
flag is optional and ignored on responses; a non-tracing peer never
sets it, which keeps the wire format backward compatible.

Errors travel as a response whose status names a class in the
:mod:`repro.errors` hierarchy and whose payload is the UTF-8 message;
:func:`exception_from` rebuilds an instance of the mapped class on the
client so ``except ObjectNotFound:`` works across the wire exactly as it
does in-process.

Request payload encodings (sizes in bytes):

=========  =====================================  ======================
opcode     request payload                        response payload
=========  =====================================  ======================
PING       opaque echo bytes                      the same bytes
CREATE     u64 size_hint (0 = none) + data        u64 oid
APPEND     u64 oid + data                         u64 new size
READ       u64 oid, u64 offset, u64 length        the bytes read
           [+ u64 version]
WRITE      u64 oid, u64 offset + data             u64 size (unchanged)
INSERT     u64 oid, u64 offset + data             u64 new size
DELETE     u64 oid, u64 offset, u64 length        u64 new size
SIZE       u64 oid                                u64 size
STAT       u64 oid [+ u64 version]                u64 size + u32 ×5
                                                  (segments, leaf pages,
                                                  index pages, height,
                                                  root page) [+ u32
                                                  version, long-form
                                                  requesters only]
VERSIONS   u64 oid                                u16 count + count ×
                                                  (u32 version, u64
                                                  size, f64 commit ts)
COMPACT    f64 target_frag (0 = none),            UTF-8 JSON per-shard
           u64 max_pages (0 = none)               compaction progress
LIST       (empty)                                u32 count + count ×
                                                  (u64 oid, u64 size)
METRICS    (empty)                                UTF-8 JSON status
                                                  document (server,
                                                  metrics, stats)
FLIGHT     (empty)                                UTF-8 JSON-lines
                                                  flight snapshot
=========  =====================================  ======================

METRICS and FLIGHT are exposition opcodes: the server answers them
before admission control, so an overloaded server stays observable.

Versioned reads are length-discriminated: READ and STAT requests carry
an optional trailing u64 version number (0 = latest), so old clients'
fixed-size payloads decode exactly as before, and the server replies
with the version-carrying STAT form only to clients that sent the long
request form.  :data:`Status.VERSION_NOT_FOUND` marshals
:class:`~repro.errors.VersionNotFound` for expired or never-committed
versions.

Oids on the wire are *shard-tagged*: a server running N shards encodes
the owning shard in the low bits (``oid % N`` names the shard; see
:mod:`repro.server.sharding`), so routing needs no lookup table and a
1-shard server's wire oids equal its local oids — the tagging is
invisible to clients, which treat oids as opaque u64 handles either
way.  :data:`Status.SHARD_UNAVAILABLE` marshals
:class:`~repro.errors.ShardUnavailable` when the owning shard is down.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import (
    ByteRangeError,
    ConnectionClosed,
    DatabaseClosed,
    LockConflict,
    ObjectNotFound,
    OutOfSpace,
    ProtocolError,
    ReproError,
    RequestTimeout,
    ServerError,
    ServerOverloaded,
    ShardUnavailable,
    StorageError,
    VersionNotFound,
)
from repro.ops import ObjectStat, VersionInfo

MAGIC = b"EOS1"
HEADER = struct.Struct("<4sBBII")

#: Default cap on one frame's payload (requests and responses alike).
MAX_PAYLOAD = 16 * 1024 * 1024

KIND_REQUEST = 0
KIND_RESPONSE = 1

#: The kind byte's low nibble is the frame kind; the high nibble is flags.
KIND_MASK = 0x0F
FLAG_TRACE = 0x80
_KNOWN_FLAGS = FLAG_TRACE

#: The optional trace context after the header: u64 trace id, u32 span id.
TRACE_CTX = struct.Struct("<QI")


class Opcode(enum.IntEnum):
    PING = 1
    CREATE = 2
    APPEND = 3
    READ = 4
    WRITE = 5
    INSERT = 6
    DELETE = 7
    SIZE = 8
    STAT = 9
    LIST = 10
    METRICS = 11
    FLIGHT = 12
    VERSIONS = 13
    COMPACT = 14


#: Opcodes answered before admission control (see the module docstring).
EXPOSITION_OPCODES = frozenset({Opcode.METRICS, Opcode.FLIGHT})


#: Opcodes that mutate the database (admission control's write queue).
WRITE_OPCODES = frozenset(
    {
        Opcode.CREATE,
        Opcode.APPEND,
        Opcode.WRITE,
        Opcode.INSERT,
        Opcode.DELETE,
        Opcode.COMPACT,
    }
)


class Status(enum.IntEnum):
    OK = 0
    SERVER_ERROR = 1        # anything without a more precise mapping
    PROTOCOL_ERROR = 2
    OVERLOADED = 3
    TIMEOUT = 4
    OBJECT_NOT_FOUND = 5
    BYTE_RANGE = 6
    STORAGE = 7             # disk-level failures (including DiskFault)
    OUT_OF_SPACE = 8
    LOCK_CONFLICT = 9
    DATABASE_CLOSED = 10
    SHARD_UNAVAILABLE = 11
    VERSION_NOT_FOUND = 12


# Ordered most-specific-first: the first isinstance match wins when a
# server-side exception is marshalled onto the wire.
_STATUS_OF: tuple[tuple[type[Exception], Status], ...] = (
    (ServerOverloaded, Status.OVERLOADED),
    (RequestTimeout, Status.TIMEOUT),
    (ProtocolError, Status.PROTOCOL_ERROR),
    (ObjectNotFound, Status.OBJECT_NOT_FOUND),
    (VersionNotFound, Status.VERSION_NOT_FOUND),
    (ByteRangeError, Status.BYTE_RANGE),
    (OutOfSpace, Status.OUT_OF_SPACE),
    (LockConflict, Status.LOCK_CONFLICT),
    (ShardUnavailable, Status.SHARD_UNAVAILABLE),
    (DatabaseClosed, Status.DATABASE_CLOSED),
    (StorageError, Status.STORAGE),
)

_CLASS_OF: dict[Status, type[ReproError]] = {
    Status.SERVER_ERROR: ServerError,
    Status.PROTOCOL_ERROR: ProtocolError,
    Status.OVERLOADED: ServerOverloaded,
    Status.TIMEOUT: RequestTimeout,
    Status.OBJECT_NOT_FOUND: ObjectNotFound,
    Status.BYTE_RANGE: ByteRangeError,
    Status.OUT_OF_SPACE: OutOfSpace,
    Status.LOCK_CONFLICT: LockConflict,
    Status.SHARD_UNAVAILABLE: ShardUnavailable,
    Status.DATABASE_CLOSED: DatabaseClosed,
    Status.STORAGE: StorageError,
    Status.VERSION_NOT_FOUND: VersionNotFound,
}


def status_for_exception(exc: BaseException) -> Status:
    """The wire status an exception marshals to."""
    for cls, status in _STATUS_OF:
        if isinstance(exc, cls):
            return status
    return Status.SERVER_ERROR


def exception_from(status: int, message: str) -> ReproError:
    """Rebuild the client-side exception for an error response.

    Some classes in the hierarchy have structured constructors
    (:class:`ByteRangeError` takes offset/length/size), so instances are
    made without calling ``__init__`` — the message carries everything
    the remote side knew.
    """
    try:
        cls = _CLASS_OF.get(Status(status), ServerError)
    except ValueError:
        cls = ServerError
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    return exc


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Header:
    """A decoded frame header (payload not yet read).

    ``kind`` is the bare frame kind (flags already stripped); ``flags``
    holds the validated flag bits.  ``length`` never includes the
    optional trace context — a flagged frame carries
    :data:`TRACE_CTX.size` extra bytes before the payload.
    """

    kind: int
    code: int
    request_id: int
    length: int
    flags: int = 0

    @property
    def has_trace(self) -> bool:
        return bool(self.flags & FLAG_TRACE)


def encode_frame(
    kind: int, code: int, request_id: int, payload: bytes = b"", *, flags: int = 0
) -> bytes:
    """One complete frame, header plus payload."""
    return HEADER.pack(MAGIC, kind | flags, code, request_id, len(payload)) + payload


def request_frames(
    opcode: Opcode,
    request_id: int,
    payload=b"",
    *,
    trace: tuple[int, int] | None = None,
) -> list:
    """A request as an iovec list: header, optional trace ctx, payload.

    The payload (any buffer-protocol object) is *borrowed*, never
    concatenated — senders flush the list with ``socket.sendmsg`` or
    sequential writes.  ``trace`` — a ``(trace_id, span_id)`` pair —
    sets :data:`FLAG_TRACE` and inserts the 12-byte trace context.
    """
    flags = 0 if trace is None else FLAG_TRACE
    frames: list = [
        HEADER.pack(MAGIC, KIND_REQUEST | flags, int(opcode), request_id, len(payload))
    ]
    if trace is not None:
        frames.append(TRACE_CTX.pack(*trace))
    if len(payload):
        frames.append(payload)
    return frames


def response_frames(status: Status, request_id: int, payload=b"") -> list:
    """A response as an iovec list: header, then the borrowed payload.

    The payload buffer (bytes, bytearray, memoryview) is referenced
    as-is — a GET response hands out the read path's assembled buffer
    without re-copying it into a contiguous frame.
    """
    header = HEADER.pack(MAGIC, KIND_RESPONSE, int(status), request_id, len(payload))
    return [header, payload] if len(payload) else [header]


def encode_request(
    opcode: Opcode,
    request_id: int,
    payload: bytes = b"",
    *,
    trace: tuple[int, int] | None = None,
) -> bytes:
    """A request frame carrying ``opcode``, as one contiguous buffer.

    The copying form of :func:`request_frames`, kept for callers that
    want a single buffer (tests, simple scripts).
    """
    return b"".join(request_frames(opcode, request_id, payload, trace=trace))


def encode_response(status: Status, request_id: int, payload: bytes = b"") -> bytes:
    """A response frame carrying ``status`` (copying form of
    :func:`response_frames`)."""
    return b"".join(response_frames(status, request_id, payload))


def encode_error(exc: BaseException, request_id: int) -> bytes:
    """The error response frame for a server-side exception."""
    message = str(exc) or exc.__class__.__name__
    return encode_response(
        status_for_exception(exc), request_id, message.encode("utf-8", "replace")
    )


def decode_header(data: bytes, *, max_payload: int = MAX_PAYLOAD) -> Header:
    """Validate and decode :data:`HEADER.size` bytes of frame header."""
    if len(data) != HEADER.size:
        raise ProtocolError(
            f"frame header is {HEADER.size} bytes, got {len(data)}"
        )
    magic, kind_byte, code, request_id, length = HEADER.unpack(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    kind = kind_byte & KIND_MASK
    flags = kind_byte & ~KIND_MASK
    if flags & ~_KNOWN_FLAGS:
        raise ProtocolError(f"unknown frame flags 0x{flags & ~_KNOWN_FLAGS:02x}")
    if kind not in (KIND_REQUEST, KIND_RESPONSE):
        raise ProtocolError(f"unknown frame kind {kind}")
    if length > max_payload:
        raise ProtocolError(
            f"payload of {length} bytes exceeds the {max_payload}-byte cap"
        )
    return Header(kind, code, request_id, length, flags)


# ---------------------------------------------------------------------------
# Request payload codecs
# ---------------------------------------------------------------------------

_U64 = struct.Struct("<Q")
_OID_OFF = struct.Struct("<QQ")
_OID_OFF_LEN = struct.Struct("<QQQ")
_OID_OFF_LEN_VER = struct.Struct("<QQQQ")
_OID_VER = struct.Struct("<QQ")
_STAT = struct.Struct("<QIIIII")
_STAT_VER = struct.Struct("<QIIIIII")
_VERSION_COUNT = struct.Struct("<H")
_VERSION_REC = struct.Struct("<IQd")


def _unpack_prefix(fmt: struct.Struct, payload: bytes, what: str) -> tuple:
    if len(payload) < fmt.size:
        raise ProtocolError(
            f"{what}: payload of {len(payload)} bytes is shorter than the "
            f"{fmt.size}-byte fixed part"
        )
    return fmt.unpack_from(payload)


def pack_create(data: bytes, size_hint: int | None) -> bytes:
    """CREATE request payload: u64 size hint (0 = none) + initial data."""
    return _U64.pack(size_hint or 0) + data


def unpack_create(payload: bytes) -> tuple[bytes, int | None]:
    """Split a CREATE payload into (data, size_hint-or-None)."""
    (hint,) = _unpack_prefix(_U64, payload, "create")
    return payload[_U64.size:], (hint or None)


def pack_oid(oid: int) -> bytes:
    """A bare u64 oid payload (SIZE/STAT requests)."""
    return _U64.pack(oid)


def unpack_oid(payload: bytes) -> int:
    """Decode a bare u64 oid payload."""
    if len(payload) != _U64.size:
        raise ProtocolError(f"expected an 8-byte oid payload, got {len(payload)}")
    return _U64.unpack(payload)[0]


def pack_oid_data(oid: int, data: bytes) -> bytes:
    """APPEND request payload: u64 oid + the bytes to append."""
    return _U64.pack(oid) + data


def unpack_oid_data(payload: bytes) -> tuple[int, bytes]:
    """Split an APPEND payload into (oid, data)."""
    (oid,) = _unpack_prefix(_U64, payload, "append")
    return oid, payload[_U64.size:]


def pack_oid_offset_data(oid: int, offset: int, data: bytes) -> bytes:
    """WRITE/INSERT request payload: u64 oid, u64 offset + data."""
    return _OID_OFF.pack(oid, offset) + data


def unpack_oid_offset_data(payload: bytes) -> tuple[int, int, bytes]:
    """Split a WRITE/INSERT payload into (oid, offset, data)."""
    oid, offset = _unpack_prefix(_OID_OFF, payload, "write/insert")
    return oid, offset, payload[_OID_OFF.size:]


def pack_oid_offset_length(oid: int, offset: int, length: int) -> bytes:
    """READ/DELETE request payload: u64 oid, u64 offset, u64 length."""
    return _OID_OFF_LEN.pack(oid, offset, length)


def unpack_oid_offset_length(payload: bytes) -> tuple[int, int, int]:
    """Decode a READ/DELETE payload into (oid, offset, length)."""
    if len(payload) != _OID_OFF_LEN.size:
        raise ProtocolError(
            f"expected a 24-byte (oid, offset, length) payload, got {len(payload)}"
        )
    return _OID_OFF_LEN.unpack(payload)


def pack_read(
    oid: int, offset: int, length: int, version: int | None = None
) -> bytes:
    """READ request payload; the versioned form appends a u64 version.

    Version-unaware clients send the plain 24-byte form, which every
    server reads as "latest" — the two forms are discriminated by
    payload length, so no flag bits are spent and old clients
    interoperate unchanged.
    """
    if not version:
        return _OID_OFF_LEN.pack(oid, offset, length)
    return _OID_OFF_LEN_VER.pack(oid, offset, length, version)


def unpack_read(payload: bytes) -> tuple[int, int, int, int | None]:
    """Decode a READ payload into (oid, offset, length, version-or-None)."""
    if len(payload) == _OID_OFF_LEN.size:
        oid, offset, length = _OID_OFF_LEN.unpack(payload)
        return oid, offset, length, None
    if len(payload) == _OID_OFF_LEN_VER.size:
        oid, offset, length, version = _OID_OFF_LEN_VER.unpack(payload)
        return oid, offset, length, (version or None)
    raise ProtocolError(
        f"expected a 24-byte (oid, offset, length) or 32-byte versioned "
        f"read payload, got {len(payload)}"
    )


def pack_stat_req(oid: int, version: int | None = None) -> bytes:
    """STAT request payload; the versioned form appends a u64 version.

    ``None`` keeps the legacy 8-byte form (and the 28-byte response);
    any integer — including ``0`` for "latest, but tell me its version
    number" — opts into the 16-byte form and the long response.
    """
    if version is None:
        return _U64.pack(oid)
    return _OID_VER.pack(oid, version)


def unpack_stat_req(payload: bytes) -> tuple[int, int | None, bool]:
    """Decode a STAT payload into (oid, version-or-None, long_form).

    ``long_form`` tells the server which response shape the requester
    understands: old 8-byte requesters get the 28-byte versionless stat
    response, 16-byte requesters get the version-carrying one.
    """
    if len(payload) == _U64.size:
        return _U64.unpack(payload)[0], None, False
    if len(payload) == _OID_VER.size:
        oid, version = _OID_VER.unpack(payload)
        return oid, (version or None), True
    raise ProtocolError(
        f"expected an 8-byte oid or 16-byte versioned stat payload, "
        f"got {len(payload)}"
    )


# ---------------------------------------------------------------------------
# Response payload codecs
# ---------------------------------------------------------------------------


def pack_u64(value: int) -> bytes:
    """A u64 response payload (oid, size)."""
    return _U64.pack(value)


def unpack_u64(payload: bytes) -> int:
    """Decode a u64 response payload."""
    if len(payload) != _U64.size:
        raise ProtocolError(f"expected an 8-byte integer payload, got {len(payload)}")
    return _U64.unpack(payload)[0]


#: The STAT response payload decodes to the canonical stat dataclass of
#: the :class:`~repro.ops.ObjectOps` interface; ``RemoteStat`` is the
#: historical wire-side name, kept as an alias.
RemoteStat = ObjectStat


def pack_stat(stat: RemoteStat, *, with_version: bool = False) -> bytes:
    """The STAT response payload for a :class:`RemoteStat`.

    The server packs the version-carrying long form only for requesters
    that sent the long request form; version-unaware clients keep
    receiving the exact 28-byte payload they always did.
    """
    if with_version:
        return _STAT_VER.pack(
            stat.size_bytes, stat.segments, stat.leaf_pages,
            stat.index_pages, stat.height, stat.root_page, stat.version,
        )
    return _STAT.pack(
        stat.size_bytes, stat.segments, stat.leaf_pages,
        stat.index_pages, stat.height, stat.root_page,
    )


def unpack_stat(payload: bytes) -> RemoteStat:
    """Decode a STAT response payload into a :class:`RemoteStat`.

    Accepts both response shapes; the short form decodes with
    ``version=0`` (its dataclass default).
    """
    if len(payload) == _STAT.size:
        return RemoteStat(*_STAT.unpack(payload))
    if len(payload) == _STAT_VER.size:
        return RemoteStat(*_STAT_VER.unpack(payload))
    raise ProtocolError(
        f"expected a {_STAT.size}- or {_STAT_VER.size}-byte stat payload, "
        f"got {len(payload)}"
    )


def pack_versions(versions: list[VersionInfo]) -> bytes:
    """The VERSIONS response payload: u16 count + per-record
    (u32 version, u64 size, f64 commit timestamp)."""
    out = bytearray(_VERSION_COUNT.pack(len(versions)))
    for v in versions:
        out += _VERSION_REC.pack(v.version, v.size_bytes, v.commit_ts)
    return bytes(out)


def unpack_versions(payload: bytes) -> list[VersionInfo]:
    """Decode a VERSIONS response payload into [VersionInfo, ...]."""
    (count,) = _unpack_prefix(_VERSION_COUNT, payload, "versions")
    need = _VERSION_COUNT.size + count * _VERSION_REC.size
    if len(payload) != need:
        raise ProtocolError(
            f"versions payload of {len(payload)} bytes does not hold "
            f"{count} records"
        )
    out = []
    offset = _VERSION_COUNT.size
    for _ in range(count):
        version, size, ts = _VERSION_REC.unpack_from(payload, offset)
        offset += _VERSION_REC.size
        out.append(VersionInfo(version, size, ts))
    return out


_COMPACT_REQ = struct.Struct("<dQ")


def pack_compact_req(
    target_frag: float | None = None, max_pages: int | None = None
) -> bytes:
    """The COMPACT request payload: f64 target_frag + u64 max_pages.

    Zero means "unset" for both fields (a target_frag of exactly 0.0 is
    indistinguishable from none — harmless, since compaction to a zero
    frag index stops only when the victim list is exhausted anyway).
    """
    return _COMPACT_REQ.pack(
        target_frag if target_frag is not None else 0.0,
        max_pages if max_pages is not None else 0,
    )


def unpack_compact_req(payload: bytes) -> tuple[float | None, int | None]:
    """Decode a COMPACT request into ``(target_frag, max_pages)``."""
    if len(payload) != _COMPACT_REQ.size:
        raise ProtocolError(
            f"expected a {_COMPACT_REQ.size}-byte compact payload, "
            f"got {len(payload)}"
        )
    target_frag, max_pages = _COMPACT_REQ.unpack(payload)
    return (
        target_frag if target_frag > 0.0 else None,
        max_pages if max_pages > 0 else None,
    )


def pack_listing(entries: list[tuple[int, int]]) -> bytes:
    """The LIST response payload: u32 count + (u64 oid, u64 size) each."""
    out = bytearray(struct.pack("<I", len(entries)))
    for oid, size in entries:
        out += _OID_OFF.pack(oid, size)
    return bytes(out)


def unpack_listing(payload: bytes) -> list[tuple[int, int]]:
    """Decode a LIST response payload into [(oid, size), ...]."""
    (count,) = _unpack_prefix(struct.Struct("<I"), payload, "list")
    need = 4 + count * _OID_OFF.size
    if len(payload) != need:
        raise ProtocolError(
            f"list payload of {len(payload)} bytes does not hold {count} entries"
        )
    out = []
    offset = 4
    for _ in range(count):
        oid, size = _OID_OFF.unpack_from(payload, offset)
        offset += _OID_OFF.size
        out.append((oid, size))
    return out


__all__ = [
    "MAGIC",
    "HEADER",
    "MAX_PAYLOAD",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_MASK",
    "FLAG_TRACE",
    "TRACE_CTX",
    "Opcode",
    "Status",
    "WRITE_OPCODES",
    "EXPOSITION_OPCODES",
    "Header",
    "RemoteStat",
    "ConnectionClosed",
    "encode_frame",
    "encode_request",
    "encode_response",
    "request_frames",
    "response_frames",
    "encode_error",
    "decode_header",
    "status_for_exception",
    "exception_from",
    "pack_read",
    "unpack_read",
    "pack_stat_req",
    "unpack_stat_req",
    "pack_versions",
    "unpack_versions",
    "pack_compact_req",
    "unpack_compact_req",
]
