"""The asyncio object server.

One :class:`EOSServer` serves one :class:`~repro.api.EOSDatabase` over
TCP.  Each connection is a session: a sequence of request frames (see
:mod:`repro.server.protocol`), answered in order.  Concurrency comes
from connections, not pipelining — a session has at most one request in
flight, which keeps per-connection state to a read loop.

Request scheduling
------------------
Every request passes three stages:

1. **Admission control** — decided synchronously, before any queueing.
   If ``max_inflight`` requests are already being served, or the request
   is a write and ``max_write_queue`` writes are already queued or
   running, the server answers :class:`~repro.errors.ServerOverloaded`
   immediately.  Nothing is buffered for a rejected request, so overload
   degrades into fast, explicit rejections rather than growing queues
   and eventual timeouts.

2. **Lock acquisition** — object ops route through a
   :class:`~repro.concurrency.LockManager`: reads take S byte-range
   locks, in-place writes take X byte-range locks, and size-changing ops
   (append/insert/delete) take X root locks, so concurrent readers
   proceed while writers to the same byte range serialize.  The lock
   table is try-acquire, so the scheduler retries on conflict, parking
   the request on an event that release pulses.

3. **Execution** — the op runs in a worker thread through the
   database's thread-safe ``op_*`` entry points, keeping the event loop
   free to accept, reject and answer other sessions.  The whole request
   runs under a ``request_timeout`` budget; when it expires the client
   gets :class:`~repro.errors.RequestTimeout` instead of silence.

Observability: every request is a ``server.request`` span (opcode and
oid attributes, error class on failure), with counters for requests,
bytes in/out and rejections, and a latency histogram — all through the
database's :class:`~repro.obs.tracer.Observability` bundle, so the
serving layer shows up in the same traces and metric snapshots as the
storage stack beneath it.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable

from repro.api import EOSDatabase
from repro.concurrency import LockManager, LockMode
from repro.errors import (
    LockConflict,
    ProtocolError,
    ReproError,
    RequestTimeout,
    ServerOverloaded,
)
from repro.server import protocol
from repro.server.protocol import Opcode, RemoteStat, Status


class EOSServer:
    """Serve one database over TCP with admission control and locking."""

    def __init__(
        self,
        db: EOSDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 64,
        max_write_queue: int = 16,
        request_timeout: float = 30.0,
        max_payload: int = protocol.MAX_PAYLOAD,
        locks: LockManager | None = None,
        op_hook: Callable[[Opcode], Awaitable[None]] | None = None,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self.max_inflight = max_inflight
        self.max_write_queue = max_write_queue
        self.request_timeout = request_timeout
        self.max_payload = max_payload
        self.locks = locks if locks is not None else LockManager()
        #: Test seam: awaited at the start of every request's execution
        #: stage, inside the in-flight window (used to pin requests in
        #: flight so admission control can be exercised deterministically).
        self.op_hook = op_hook
        self.inflight = 0
        self.write_queued = 0
        self._server: asyncio.AbstractServer | None = None
        self._released = asyncio.Event()
        self._next_txn = 1
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (servectl's serve loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drop every session, and wait for their tasks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        if self._conn_tasks:
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            # Removed only once the task is truly done, so stop() can
            # await the final wait_closed() step too.
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        try:
            await self._session(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass  # peer went away; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = self.db.obs.metrics
        while True:
            raw = await reader.readexactly(protocol.HEADER.size)
            try:
                header = protocol.decode_header(raw, max_payload=self.max_payload)
                if header.kind != protocol.KIND_REQUEST:
                    raise ProtocolError("expected a request frame")
                opcode = Opcode(header.code)
            except (ProtocolError, ValueError) as exc:
                # The stream is unframed from here on; answer and hang up.
                if not isinstance(exc, ProtocolError):
                    exc = ProtocolError(f"unknown opcode {header.code}")
                writer.write(protocol.encode_error(exc, 0))
                await writer.drain()
                return
            payload = await reader.readexactly(header.length)
            metrics.counter("server.bytes_in").inc(protocol.HEADER.size + header.length)

            # Stage 1: admission control, before anything is queued.
            rejection = self._admission_check(opcode)
            if rejection is not None:
                metrics.counter("server.rejections").inc()
                writer.write(protocol.encode_error(rejection, header.request_id))
                await writer.drain()
                continue

            response = await self._serve_request(opcode, header.request_id, payload)
            metrics.counter("server.bytes_out").inc(len(response))
            writer.write(response)
            await writer.drain()

    def _admission_check(self, opcode: Opcode) -> ServerOverloaded | None:
        if self.inflight >= self.max_inflight:
            return ServerOverloaded(
                f"server at capacity ({self.inflight} requests in flight, "
                f"cap {self.max_inflight}); retry later"
            )
        if opcode in protocol.WRITE_OPCODES and self.write_queued >= self.max_write_queue:
            return ServerOverloaded(
                f"write queue full ({self.write_queued} writes pending, "
                f"cap {self.max_write_queue}); retry later"
            )
        return None

    # ------------------------------------------------------------------
    # Request scheduling
    # ------------------------------------------------------------------

    async def _serve_request(
        self, opcode: Opcode, request_id: int, payload: bytes
    ) -> bytes:
        metrics = self.db.obs.metrics
        txn_id = self._next_txn
        self._next_txn += 1
        self.inflight += 1
        is_write = opcode in protocol.WRITE_OPCODES
        if is_write:
            self.write_queued += 1
        metrics.gauge("server.inflight").set(self.inflight)
        t0 = time.perf_counter()
        try:
            result = await asyncio.wait_for(
                self._execute(opcode, payload, txn_id), self.request_timeout
            )
            response = protocol.encode_response(Status.OK, request_id, result)
        except asyncio.TimeoutError:
            response = protocol.encode_error(
                RequestTimeout(
                    f"request exceeded the {self.request_timeout:g}s budget"
                ),
                request_id,
            )
        except ReproError as exc:
            response = protocol.encode_error(exc, request_id)
        except Exception as exc:  # never let one request kill the session
            response = protocol.encode_error(
                ReproError(f"{exc.__class__.__name__}: {exc}"), request_id
            )
        finally:
            self.locks.release_all(txn_id)
            self._pulse_released()
            self.inflight -= 1
            if is_write:
                self.write_queued -= 1
            metrics.gauge("server.inflight").set(self.inflight)
            metrics.counter("server.requests").inc()
            metrics.counter(f"server.requests.{opcode.name.lower()}").inc()
            metrics.histogram("server.latency_ms").observe(
                (time.perf_counter() - t0) * 1000.0
            )
        return response

    def _pulse_released(self) -> None:
        """Wake every request parked on a lock conflict."""
        event = self._released
        self._released = asyncio.Event()
        event.set()

    async def _acquire(self, txn_id: int, acquire: Callable[[], None]) -> None:
        """Retry a try-acquire until it succeeds, parking between tries.

        The overall request timeout (``wait_for`` in the caller) bounds
        the wait; cancellation releases the transaction's locks in the
        caller's ``finally``.
        """
        while True:
            try:
                acquire()
                return
            except LockConflict:
                await self._released.wait()

    async def _execute(self, opcode: Opcode, payload: bytes, txn_id: int) -> bytes:
        if self.op_hook is not None:
            await self.op_hook(opcode)
        db = self.db
        locks = self.locks
        loop = asyncio.get_running_loop()

        async def run(op: Callable[[], object]) -> object:
            # The span covers exactly the op, opened in the worker thread
            # under the database's op lock so span nesting stays sound.
            def locked() -> object:
                with db.op_lock:
                    with db.obs.tracer.span(
                        "server.request", opcode=opcode.name.lower()
                    ):
                        return op()

            return await loop.run_in_executor(None, locked)

        if opcode is Opcode.PING:
            return payload
        if opcode is Opcode.CREATE:
            data, size_hint = protocol.unpack_create(payload)
            oid = await run(lambda: db.op_create(data, size_hint=size_hint))
            return protocol.pack_u64(oid)
        if opcode is Opcode.APPEND:
            oid, data = protocol.unpack_oid_data(payload)
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.X)
            )
            size = await run(lambda: db.op_append(oid, data))
            return protocol.pack_u64(size)
        if opcode is Opcode.READ:
            oid, offset, length = protocol.unpack_oid_offset_length(payload)
            if length > self.max_payload:
                raise ProtocolError(
                    f"read of {length} bytes exceeds the "
                    f"{self.max_payload}-byte response cap"
                )
            await self._acquire(
                txn_id,
                lambda: locks.acquire_range(
                    txn_id, oid, offset, offset + length, LockMode.S
                ),
            )
            return await run(lambda: db.op_read(oid, offset, length))
        if opcode is Opcode.WRITE:
            oid, offset, data = protocol.unpack_oid_offset_data(payload)
            await self._acquire(
                txn_id,
                lambda: locks.acquire_range(
                    txn_id, oid, offset, offset + len(data), LockMode.X
                ),
            )
            size = await run(lambda: db.op_write(oid, offset, data))
            return protocol.pack_u64(size)
        if opcode is Opcode.INSERT:
            oid, offset, data = protocol.unpack_oid_offset_data(payload)
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.X)
            )
            size = await run(lambda: db.op_insert(oid, offset, data))
            return protocol.pack_u64(size)
        if opcode is Opcode.DELETE:
            oid, offset, length = protocol.unpack_oid_offset_length(payload)
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.X)
            )
            size = await run(lambda: db.op_delete(oid, offset, length))
            return protocol.pack_u64(size)
        if opcode is Opcode.SIZE:
            oid = protocol.unpack_oid(payload)
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.S)
            )
            return protocol.pack_u64(await run(lambda: db.op_size(oid)))
        if opcode is Opcode.STAT:
            oid = protocol.unpack_oid(payload)
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.S)
            )
            stat = await run(lambda: db.op_stat(oid))
            return protocol.pack_stat(RemoteStat(**stat))
        if opcode is Opcode.LIST:
            listing = await run(db.op_list)
            return protocol.pack_listing(listing)
        raise ProtocolError(f"opcode {opcode} not implemented")
