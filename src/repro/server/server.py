"""The asyncio object server.

One :class:`EOSServer` serves a :class:`~repro.server.sharding.ShardSet`
— one or more shared-nothing :class:`~repro.api.EOSDatabase` shards —
over TCP.  Each connection is a session: a sequence of request frames
(see :mod:`repro.server.protocol`), answered in order.  Concurrency
comes from connections, not pipelining — a session has at most one
request in flight, which keeps per-connection state to a read loop.

Sharding
--------
The event loop is a thin coordinator.  At admission each request is
routed by pure arithmetic on its oid (``oid % n_shards`` names the
owning shard; creates go to the least-loaded shard and the response
carries the shard-tagged oid home).  The op then runs on the owning
shard's dedicated worker thread against that shard's own database,
buffer pool and lock manager — no storage state is shared between
shards, so they scale like independent disk arms.  Multi-object ops
(LIST, the METRICS snapshot) fan out to every shard and merge; a dead
shard answers :class:`~repro.errors.ShardUnavailable` instead of
hanging.  A server constructed from a single database (``EOSServer(db)``)
adopts it as a one-shard set whose oid mapping is the identity, so the
unsharded wire surface and metrics registry are preserved exactly.

Request scheduling
------------------
Every request passes three stages:

1. **Admission control** — decided synchronously, before any queueing.
   If ``max_inflight`` requests are already being served, or the request
   is a write and ``max_write_queue`` writes are already queued or
   running, the server answers :class:`~repro.errors.ServerOverloaded`
   immediately.  Nothing is buffered for a rejected request, so overload
   degrades into fast, explicit rejections rather than growing queues
   and eventual timeouts.

2. **Lock acquisition** — object ops route through a
   :class:`~repro.concurrency.LockManager`: reads take S byte-range
   locks, in-place writes take X byte-range locks, and size-changing ops
   (append/insert/delete) take X root locks, so concurrent readers
   proceed while writers to the same byte range serialize.  The lock
   table is try-acquire, so the scheduler retries on conflict, parking
   the request on an event that release pulses.  On a shard whose
   database has versioning enabled (:mod:`repro.versions`), READ, SIZE,
   STAT and VERSIONS skip this stage entirely: they resolve against an
   immutable version root, so the lock matrix shrinks to writer–writer
   and snapshot reads never park behind an appender.

3. **Execution** — the op runs in a worker thread through the
   database's thread-safe ``op_*`` entry points, keeping the event loop
   free to accept, reject and answer other sessions.  The whole request
   runs under a ``request_timeout`` budget; when it expires the client
   gets :class:`~repro.errors.RequestTimeout` instead of silence.

Observability
-------------
Every request becomes a ``server.request`` root span with phase
children — ``server.admission``, ``server.lock``, ``server.execute``
(the worker-thread span that carries the storage stack's own child
spans) and ``server.encode`` — plus matching phase histograms
(``server.admission_wait_ms``, ``server.lock_wait_ms``,
``server.execute_ms``, ``server.encode_ms``) and the end-to-end
``server.latency_ms``.  When the client propagated a wire trace context
(:data:`~repro.server.protocol.FLAG_TRACE`), the root hangs under the
client's span id with ``remote_parent`` set, so ``tracefmt --merge``
renders one tree across both processes.

A :class:`~repro.obs.flight.FlightRecorder` retains the last N request
summaries (and recent spans, when tracing is on); any non-OK response or
admission rejection triggers a rate-limited dump to ``flight_dump_dir``.
The METRICS and FLIGHT opcodes are answered *before* admission control,
so an overloaded server can still be inspected remotely.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Awaitable, Callable

from repro.api import EOSDatabase
from repro.concurrency import LockManager, LockMode
from repro.errors import (
    LockConflict,
    ProtocolError,
    ReproError,
    RequestTimeout,
    ServerOverloaded,
)
from repro.obs.flight import FlightRecorder
from repro.server import protocol
from repro.server.expo import status_snapshot
from repro.server.protocol import Opcode, Status
from repro.server.sharding import Shard, ShardSet, make_oid


class _RequestTrace:
    """One request's trace context and phase accounting.

    Per-request span trees cannot come from the tracer's stack alone:
    the event loop interleaves requests, so the root stays open across
    awaits while other requests run.  The root and the phase children
    are therefore hand-emitted records
    (:meth:`~repro.obs.tracer.Tracer.record_span`); only the execution
    phase is a real stack span (it runs serialized under ``db.op_lock``
    in a worker thread, where nesting is sound).
    """

    __slots__ = (
        "tracer", "opcode", "trace_id", "root_id", "parent_id", "remote",
        "oid", "shard", "admission_ms", "lock_wait_ms", "lock_waits",
        "locked", "exec_ms", "encode_ms",
    )

    def __init__(self, tracer, opcode: Opcode,
                 wire_trace: tuple[int, int] | None, admission_ms: float) -> None:
        self.tracer = tracer
        self.opcode = opcode
        self.oid: int | None = None
        self.shard: int | None = None
        self.admission_ms = admission_ms
        self.lock_wait_ms = 0.0
        self.lock_waits = 0
        self.locked = False
        self.exec_ms = 0.0
        self.encode_ms = 0.0
        if wire_trace is not None:
            self.trace_id, self.parent_id = wire_trace
            self.remote = True
        else:
            self.trace_id = tracer.new_trace_id()
            self.parent_id = None
            self.remote = False
        self.root_id = tracer.new_span_id()

    def _phase(self, name: str, elapsed_ms: float, **attrs) -> None:
        self.tracer.record_span(
            f"server.{name}",
            trace_id=self.trace_id,
            span_id=self.tracer.new_span_id(),
            parent_id=self.root_id,
            elapsed_ms=elapsed_ms,
            attrs=attrs or None,
        )

    def emit(self, status: Status, error: str | None, total_ms: float) -> None:
        """Emit the phase children and the request root."""
        if not self.tracer.enabled:
            return
        self._phase("admission", self.admission_ms)
        if self.locked:
            self._phase("lock", self.lock_wait_ms, waits=self.lock_waits)
        self._phase("encode", self.encode_ms)
        attrs = {"opcode": self.opcode.name.lower(), "status": status.name.lower()}
        if self.oid is not None:
            attrs["oid"] = self.oid
        if self.shard is not None:
            attrs["shard"] = self.shard
        self.tracer.record_span(
            "server.request",
            trace_id=self.trace_id,
            span_id=self.root_id,
            parent_id=self.parent_id,
            remote_parent=self.remote,
            elapsed_ms=total_ms,
            attrs=attrs,
            error=error,
        )


class EOSServer:
    """Serve a shard set over TCP with admission control and locking.

    Construct with either one database (adopted as a single identity-
    mapped shard — the unsharded-compatible form) or an explicit
    :class:`~repro.server.sharding.ShardSet`.
    """

    def __init__(
        self,
        db: EOSDatabase | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shards: ShardSet | None = None,
        max_inflight: int = 64,
        max_write_queue: int = 16,
        request_timeout: float = 30.0,
        max_payload: int = protocol.MAX_PAYLOAD,
        locks: LockManager | None = None,
        op_hook: Callable[[Opcode], Awaitable[None]] | None = None,
        flight_capacity: int = 256,
        flight_dump_dir: str | os.PathLike | None = None,
        flight_min_dump_interval: float = 5.0,
    ) -> None:
        if shards is None:
            if db is None:
                raise ValueError("EOSServer needs a database or a ShardSet")
            shards = ShardSet.adopt(db, locks=locks)
        elif db is not None:
            raise ValueError("pass either db or shards, not both")
        self.shards = shards
        #: The coordinator's observability bundle (the adopted database's
        #: own bundle for a single-shard server, so its metrics surface
        #: is unchanged from the unsharded server).
        self.obs = shards.obs
        #: The single shard's database, or None for a multi-shard server
        #: (which has no one database to point at).
        self.db = shards.shards[0].db if shards.single else None
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self.max_inflight = max_inflight
        self.max_write_queue = max_write_queue
        self.request_timeout = request_timeout
        self.max_payload = max_payload
        #: Test seam: awaited at the start of every request's execution
        #: stage, inside the in-flight window (used to pin requests in
        #: flight so admission control can be exercised deterministically).
        self.op_hook = op_hook
        self.flight = FlightRecorder(
            flight_capacity, min_dump_interval=flight_min_dump_interval
        )
        self.flight_dump_dir = (
            os.fspath(flight_dump_dir) if flight_dump_dir is not None else None
        )
        #: Optional storage-health monitor (:mod:`repro.obs.health`).
        #: servectl attaches one; when present, request accounting feeds
        #: its per-object heat counters and status_snapshot/Prometheus
        #: expose its HEALTH section.
        self.health = None
        #: Optional background compactor (:mod:`repro.compact`).
        #: servectl attaches one under ``serve --compact``; COMPACT
        #: requests reuse it (sharing its tick lock) and status_snapshot
        #: exposes its COMPACTION section.  Without one, each COMPACT
        #: request builds a transient compactor over the live shards.
        self.compactor = None
        self.started_at = 0.0
        self.inflight = 0
        self.write_queued = 0
        self._server: asyncio.AbstractServer | None = None
        self._released = asyncio.Event()
        self._next_txn = 1
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._flight_tracers: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self._attach_flight_sink()

    async def serve_forever(self) -> None:
        """Run until cancelled (servectl's serve loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drop every session, and wait for their tasks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        if self._conn_tasks:
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)

    def _attach_flight_sink(self) -> None:
        """Capture spans into the flight ring while tracing is on.

        Any tracer can be enabled (or re-enabled, producing a new Tracer)
        at any point in the server's life, so this re-checks identity and
        appends to each *live* ``tracer.sinks`` list — the coordinator's
        (request roots and phases) and every shard's (execute spans).
        The FlightRecorder is thread-safe, so one ring can take spans
        from all of them.
        """
        tracers = [self.obs.tracer]
        tracers.extend(shard.db.obs.tracer for shard in self.shards.shards)
        for tracer in tracers:
            if not tracer.enabled or id(tracer) in self._flight_tracers:
                continue
            tracer.sinks.append(self.flight)
            # Hold the tracer so its id() cannot be recycled by a new one.
            self._flight_tracers[id(tracer)] = tracer

    def dump_flight(self, reason: str = "manual") -> str | None:
        """Force a flight dump (``flight_dump_dir`` must be configured)."""
        if self.flight_dump_dir is None:
            return None
        return self.flight.dump(self.flight_dump_dir, reason)

    def _incident(self, reason: str) -> None:
        """Rate-limited evidence dump on an error or rejection.

        Writes a JSONL file; never call it from the event loop — async
        paths go through :meth:`_dump_incident_async` (EOS009).
        """
        if self.flight_dump_dir is None:
            return
        try:
            self.flight.maybe_dump(self.flight_dump_dir, reason)
        except OSError:
            pass  # a full disk must not take the serving path down

    async def _dump_incident_async(self, reason: str) -> None:
        """The executor-hopped :meth:`_incident` for async serving paths."""
        if self.flight_dump_dir is None:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._incident, reason)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            # Removed only once the task is truly done, so stop() can
            # await the final wait_closed() step too.
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        try:
            await self._session(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass  # peer went away; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = self.obs.metrics
        while True:
            raw = await reader.readexactly(protocol.HEADER.size)
            try:
                header = protocol.decode_header(raw, max_payload=self.max_payload)
                if header.kind != protocol.KIND_REQUEST:
                    raise ProtocolError("expected a request frame")
                opcode = Opcode(header.code)
            except (ProtocolError, ValueError) as exc:
                # The stream is unframed from here on; answer and hang up.
                if not isinstance(exc, ProtocolError):
                    exc = ProtocolError(f"unknown opcode {header.code}")
                writer.write(protocol.encode_error(exc, 0))
                await writer.drain()
                return
            wire_trace: tuple[int, int] | None = None
            frame_bytes = protocol.HEADER.size + header.length
            if header.has_trace:
                ctx = await reader.readexactly(protocol.TRACE_CTX.size)
                wire_trace = protocol.TRACE_CTX.unpack(ctx)
                frame_bytes += protocol.TRACE_CTX.size
            payload = await reader.readexactly(header.length)
            metrics.counter("server.bytes_in").inc(frame_bytes)
            self._attach_flight_sink()

            # Exposition opcodes bypass admission control: an overloaded
            # server must stay observable.
            if opcode in protocol.EXPOSITION_OPCODES:
                await self._serve_exposition(opcode, header.request_id, writer)
                continue

            # Stage 1: admission control, before anything is queued.
            a0 = time.perf_counter()
            rejection = self._admission_check(opcode)
            admission_ms = (time.perf_counter() - a0) * 1000.0
            if rejection is not None:
                metrics.counter("server.rejections").inc()
                self.flight.record({
                    "ts": round(time.time(), 3),
                    "request_id": header.request_id,
                    "opcode": opcode.name.lower(),
                    "status": "overloaded",
                    "error": "ServerOverloaded",
                    "inflight": self.inflight,
                    "write_queued": self.write_queued,
                })
                response = protocol.encode_error(rejection, header.request_id)
                metrics.counter("server.bytes_out").inc(len(response))
                writer.write(response)
                await writer.drain()
                await self._dump_incident_async("overloaded")
                continue

            await self._serve_request(
                opcode, header.request_id, payload, writer,
                wire_trace=wire_trace, admission_ms=admission_ms,
            )

    def _admission_check(self, opcode: Opcode) -> ServerOverloaded | None:
        if self.inflight >= self.max_inflight:
            return ServerOverloaded(
                f"server at capacity ({self.inflight} requests in flight, "
                f"cap {self.max_inflight}); retry later"
            )
        if opcode in protocol.WRITE_OPCODES and self.write_queued >= self.max_write_queue:
            return ServerOverloaded(
                f"write queue full ({self.write_queued} writes pending, "
                f"cap {self.max_write_queue}); retry later"
            )
        return None

    async def _serve_exposition(
        self, opcode: Opcode, request_id: int, writer: asyncio.StreamWriter
    ) -> None:
        """Answer METRICS/FLIGHT; counted separately from server.requests."""
        metrics = self.obs.metrics
        metrics.counter("server.exposition").inc()
        try:
            if opcode is Opcode.METRICS:
                # free_pages() does page I/O under op_lock; keep it off
                # the event loop like any other op.
                loop = asyncio.get_running_loop()
                doc = await loop.run_in_executor(
                    None, lambda: status_snapshot(self.db, self)
                )
                body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
            else:
                body = self.flight.to_jsonl(reason="remote").encode("utf-8")
            response = protocol.encode_response(Status.OK, request_id, body)
        except Exception as exc:
            response = protocol.encode_error(
                ReproError(f"{exc.__class__.__name__}: {exc}"), request_id
            )
        metrics.counter("server.bytes_out").inc(len(response))
        writer.write(response)
        await writer.drain()

    # ------------------------------------------------------------------
    # Request scheduling
    # ------------------------------------------------------------------

    async def _serve_request(
        self,
        opcode: Opcode,
        request_id: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        *,
        wire_trace: tuple[int, int] | None = None,
        admission_ms: float = 0.0,
    ) -> None:
        metrics = self.obs.metrics
        txn_id = self._next_txn
        self._next_txn += 1
        self.inflight += 1
        is_write = opcode in protocol.WRITE_OPCODES
        if is_write:
            self.write_queued += 1
        metrics.gauge("server.inflight").set(self.inflight)
        req = _RequestTrace(self.obs.tracer, opcode, wire_trace, admission_ms)
        t0 = time.perf_counter()
        status = Status.OK
        error: str | None = None
        result = b""
        failure: BaseException | None = None
        try:
            result = await asyncio.wait_for(
                self._execute(opcode, payload, txn_id, req), self.request_timeout
            )
        except asyncio.TimeoutError:
            failure = RequestTimeout(
                f"request exceeded the {self.request_timeout:g}s budget"
            )
            status, error = Status.TIMEOUT, failure.__class__.__name__
        except ReproError as exc:
            failure = exc
            status = protocol.status_for_exception(exc)
            error = exc.__class__.__name__
        except Exception as exc:  # never let one request kill the session
            failure = ReproError(f"{exc.__class__.__name__}: {exc}")
            status, error = Status.SERVER_ERROR, exc.__class__.__name__
        finally:
            # A txn only ever locks on the one shard its oid routed to,
            # but release_all on an uninvolved shard is a cheap no-op, so
            # sweeping every shard is simpler than remembering which.
            for shard in self.shards.shards:
                shard.locks.release_all(txn_id)
            self._pulse_released()
            self.inflight -= 1
            if is_write:
                self.write_queued -= 1
            metrics.gauge("server.inflight").set(self.inflight)

        # Stage 4: serialize the response.  Accounting happens *before*
        # the frame is written, so a client that has seen the response is
        # guaranteed to see the request in the metrics too.  The frames
        # borrow the result buffer (a READ hands out the read path's
        # assembled bytes) and go to the transport one by one — the
        # writer batches them; nothing re-concatenates the payload.
        e0 = time.perf_counter()
        if failure is None:
            frames = protocol.response_frames(Status.OK, request_id, result)
        else:
            frames = [protocol.encode_error(failure, request_id)]
        req.encode_ms = (time.perf_counter() - e0) * 1000.0
        total_ms = admission_ms + (time.perf_counter() - t0) * 1000.0
        bytes_out = sum(len(frame) for frame in frames)
        self._account(req, request_id, status, error, total_ms, bytes_out)
        if status is not Status.OK:
            # The evidence dump is disk I/O: hop off the event loop.
            await self._dump_incident_async(f"status-{status.name.lower()}")
        metrics.counter("server.bytes_out").inc(bytes_out)
        for frame in frames:
            writer.write(frame)
        await writer.drain()

    def _account(
        self,
        req: _RequestTrace,
        request_id: int,
        status: Status,
        error: str | None,
        total_ms: float,
        bytes_out: int,
    ) -> None:
        """Metrics, spans and the flight entry for one finished request."""
        metrics = self.obs.metrics
        metrics.counter("server.requests").inc()
        metrics.counter(f"server.requests.{req.opcode.name.lower()}").inc()
        if req.shard is not None and not self.shards.single:
            metrics.counter(f"server.shard.{req.shard}.requests").inc()
        if error is not None:
            metrics.counter("server.errors").inc()
        metrics.histogram("server.latency_ms").observe(total_ms)
        metrics.histogram("server.admission_wait_ms").observe(req.admission_ms)
        metrics.histogram("server.lock_wait_ms").observe(req.lock_wait_ms)
        metrics.histogram("server.execute_ms").observe(req.exec_ms)
        metrics.histogram("server.encode_ms").observe(req.encode_ms)
        if self.health is not None and req.oid is not None:
            self.health.heat.touch(
                req.oid, write=req.opcode in protocol.WRITE_OPCODES
            )
        req.emit(status, error, total_ms)
        entry = {
            "ts": round(time.time(), 3),
            "request_id": request_id,
            "opcode": req.opcode.name.lower(),
            "status": status.name.lower(),
            "bytes_out": bytes_out,
            "ms": {
                "total": round(total_ms, 3),
                "admission": round(req.admission_ms, 3),
                "lock": round(req.lock_wait_ms, 3),
                "execute": round(req.exec_ms, 3),
                "encode": round(req.encode_ms, 3),
            },
        }
        if req.oid is not None:
            entry["oid"] = req.oid
        if req.shard is not None:
            entry["shard"] = req.shard
        if error is not None:
            entry["error"] = error
        if req.trace_id:
            entry["trace"] = req.trace_id
            entry["span"] = req.root_id
        self.flight.record(entry)

    def _pulse_released(self) -> None:
        """Wake every request parked on a lock conflict."""
        event = self._released
        self._released = asyncio.Event()
        event.set()

    async def _acquire(
        self, txn_id: int, acquire: Callable[[], None], req: _RequestTrace
    ) -> None:
        """Retry a try-acquire until it succeeds, parking between tries.

        The overall request timeout (``wait_for`` in the caller) bounds
        the wait; cancellation releases the transaction's locks in the
        caller's ``finally``.  The time spent here is the request's
        lock-wait phase.
        """
        req.locked = True
        t0 = time.perf_counter()
        try:
            while True:
                try:
                    acquire()
                    return
                except LockConflict:
                    req.lock_waits += 1
                    await self._released.wait()
        finally:
            req.lock_wait_ms += (time.perf_counter() - t0) * 1000.0

    async def _run_on(
        self, shard: Shard, opcode: Opcode, req: _RequestTrace,
        op: Callable[[], object],
    ) -> object:
        """Run ``op`` on the shard's worker under its op lock and span.

        The span covers exactly the op, opened in the shard's worker
        thread under that shard's database op lock so span nesting stays
        sound; ``.under()`` hangs it below this request's root span.  The
        worker is a :class:`~repro.server.sharding.Shard`'s single
        thread, so ops on one shard serialize while shards proceed
        independently; a killed shard raises
        :class:`~repro.errors.ShardUnavailable` here.
        """
        db = shard.db

        def locked() -> object:
            with db.op_lock:
                with db.obs.tracer.span(
                    "server.execute", opcode=opcode.name.lower(),
                    shard=shard.index,
                ).under(req.trace_id, req.root_id):
                    return op()

        t0 = time.perf_counter()
        try:
            return await asyncio.wrap_future(shard.submit(locked))
        finally:
            req.exec_ms += (time.perf_counter() - t0) * 1000.0

    async def _run_snapshot(
        self, shard: Shard, opcode: Opcode, req: _RequestTrace,
        op: Callable[[], object],
    ) -> object:
        """Run a lock-free snapshot read off the shard's worker thread.

        Versioned reads resolve an immutable root and never touch the
        buffer pool or lock table, so they go to the default executor
        instead of the shard's single worker — concurrent snapshot reads
        on one shard proceed in parallel with each other *and* with a
        writer occupying the worker.  The execute span is hand-emitted
        (no stack nesting off the worker thread) with ``snapshot`` set
        so traces distinguish the two paths.
        """
        db = shard.db
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        try:
            return await loop.run_in_executor(None, op)
        finally:
            elapsed = (time.perf_counter() - t0) * 1000.0
            req.exec_ms += elapsed
            tracer = db.obs.tracer
            if tracer.enabled:
                tracer.record_span(
                    "server.execute",
                    trace_id=req.trace_id,
                    span_id=tracer.new_span_id(),
                    parent_id=req.root_id,
                    elapsed_ms=elapsed,
                    attrs={
                        "opcode": opcode.name.lower(),
                        "shard": shard.index,
                        "snapshot": True,
                    },
                )

    async def _execute(
        self, opcode: Opcode, payload: bytes, txn_id: int, req: _RequestTrace
    ) -> bytes:
        if self.op_hook is not None:
            await self.op_hook(opcode)
        shards = self.shards
        n = shards.n_shards

        if opcode is Opcode.PING:
            return payload
        if opcode is Opcode.CREATE:
            data, size_hint = protocol.unpack_create(payload)
            shard = shards.pick_for_create()
            req.shard = shard.index
            local = await self._run_on(
                shard, opcode, req,
                lambda: shard.db.op_create(data, size_hint=size_hint),
            )
            shard.note_created()
            oid = make_oid(shard.index, local, n)
            req.oid = oid
            return protocol.pack_u64(oid)
        if opcode is Opcode.LIST:
            # Coordinator fan-out: every shard lists concurrently (each
            # under its own op lock and execute span), then the tagged
            # oids merge into one ascending listing.  gather() without
            # return_exceptions: one dead shard fails the whole listing
            # with ShardUnavailable rather than dropping its objects.
            async def list_shard(shard: Shard) -> list[tuple[int, int]]:
                local = await self._run_on(shard, opcode, req, shard.db.op_list)
                return [
                    (make_oid(shard.index, loid, n), size)
                    for loid, size in local
                ]

            parts = await asyncio.gather(*map(list_shard, shards.shards))
            merged = [entry for part in parts for entry in part]
            merged.sort()
            return protocol.pack_listing(merged)
        if opcode is Opcode.COMPACT:
            # Coordinator fan-out like LIST, but driven by the compactor:
            # run_once() itself submits every substrate-touching step to
            # the owning shard's worker (EOS008), so here it only needs
            # to get off the event loop.  An attached background
            # compactor is reused — its tick lock serializes the
            # operator's one-shot pass against background ticks.
            target_frag, max_pages = protocol.unpack_compact_req(payload)
            compactor = self.compactor
            if compactor is None:
                from repro.compact import Compactor

                # target_frag=None: a one-shot with no --target-frag
                # compacts until the victim list is exhausted, not to
                # the background daemon's default goal.  The compactor
                # is kept (not started) so status_snapshot and /metrics
                # expose the pass's progress afterwards.
                compactor = Compactor(
                    shards=shards.shards, monitor=self.health, server=self,
                    target_frag=None,
                )
                self.compactor = compactor
            loop = asyncio.get_running_loop()
            docs = await loop.run_in_executor(
                None,
                lambda: compactor.run_once(
                    target_frag=target_frag, max_pages=max_pages
                ),
            )
            return json.dumps(docs, separators=(",", ":")).encode("utf-8")

        # Everything below is a single-object op: route by the oid's
        # shard tag, lock on the owning shard's table (keyed by the wire
        # oid), and run against the shard-local oid.
        version: int | None = None
        long_stat = False
        if opcode is Opcode.APPEND:
            oid, data = protocol.unpack_oid_data(payload)
        elif opcode is Opcode.READ:
            oid, offset, length, version = protocol.unpack_read(payload)
        elif opcode is Opcode.DELETE:
            oid, offset, length = protocol.unpack_oid_offset_length(payload)
        elif opcode in (Opcode.WRITE, Opcode.INSERT):
            oid, offset, data = protocol.unpack_oid_offset_data(payload)
        elif opcode is Opcode.STAT:
            oid, version, long_stat = protocol.unpack_stat_req(payload)
        elif opcode in (Opcode.SIZE, Opcode.VERSIONS):
            oid = protocol.unpack_oid(payload)
        else:
            raise ProtocolError(f"opcode {opcode} not implemented")
        req.oid = oid
        shard = shards.shard_for(oid)
        req.shard = shard.index
        db, locks = shard.db, shard.locks
        local = shard.local_oid(oid)

        if opcode is Opcode.APPEND:
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.X), req
            )
            size = await self._run_on(
                shard, opcode, req, lambda: db.op_append(local, data)
            )
            return protocol.pack_u64(size)
        if opcode is Opcode.READ:
            if length > self.max_payload:
                raise ProtocolError(
                    f"read of {length} bytes exceeds the "
                    f"{self.max_payload}-byte response cap"
                )
            if db.versions is not None:
                return await self._run_snapshot(
                    shard, opcode, req,
                    lambda: db.op_read(
                        local, offset=offset, length=length, version=version
                    ),
                )
            await self._acquire(
                txn_id,
                lambda: locks.acquire_range(
                    txn_id, oid, offset, offset + length, LockMode.S
                ),
                req,
            )
            return await self._run_on(
                shard, opcode, req,
                lambda: db.op_read(
                    local, offset=offset, length=length, version=version
                ),
            )
        if opcode is Opcode.WRITE:
            await self._acquire(
                txn_id,
                lambda: locks.acquire_range(
                    txn_id, oid, offset, offset + len(data), LockMode.X
                ),
                req,
            )
            size = await self._run_on(
                shard, opcode, req,
                lambda: db.op_write(local, data, offset=offset),
            )
            return protocol.pack_u64(size)
        if opcode is Opcode.INSERT:
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.X), req
            )
            size = await self._run_on(
                shard, opcode, req,
                lambda: db.op_insert(local, data, offset=offset),
            )
            return protocol.pack_u64(size)
        if opcode is Opcode.DELETE:
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.X), req
            )
            size = await self._run_on(
                shard, opcode, req,
                lambda: db.op_delete(local, offset=offset, length=length),
            )
            return protocol.pack_u64(size)
        if opcode is Opcode.SIZE:
            if db.versions is not None:
                size = await self._run_snapshot(
                    shard, opcode, req, lambda: db.op_size(local)
                )
            else:
                await self._acquire(
                    txn_id,
                    lambda: locks.acquire_root(txn_id, oid, LockMode.S),
                    req,
                )
                size = await self._run_on(
                    shard, opcode, req, lambda: db.op_size(local)
                )
            return protocol.pack_u64(size)
        if opcode is Opcode.VERSIONS:
            if db.versions is not None:
                versions = await self._run_snapshot(
                    shard, opcode, req, lambda: db.op_versions(local)
                )
            else:
                await self._acquire(
                    txn_id,
                    lambda: locks.acquire_root(txn_id, oid, LockMode.S),
                    req,
                )
                versions = await self._run_on(
                    shard, opcode, req, lambda: db.op_versions(local)
                )
            return protocol.pack_versions(versions)
        # STAT is the only single-object opcode left.
        if db.versions is not None:
            stat = await self._run_snapshot(
                shard, opcode, req, lambda: db.op_stat(local, version=version)
            )
        else:
            await self._acquire(
                txn_id, lambda: locks.acquire_root(txn_id, oid, LockMode.S), req
            )
            stat = await self._run_on(
                shard, opcode, req, lambda: db.op_stat(local, version=version)
            )
        return protocol.pack_stat(stat, with_version=long_stat)
