"""Run an :class:`~repro.server.server.EOSServer` on a background thread.

The server is asyncio; tests, benchmarks and the CLI's self-contained
smoke mode are synchronous.  :class:`ServerThread` bridges the two: it
runs the server's event loop on a daemon thread, hands back the bound
port once accepting, and on :meth:`stop` shuts the server down cleanly
and reports any asyncio tasks still alive on the loop — a leak detector
for the serving layer itself::

    with ServerThread(db, max_inflight=8) as srv:
        with EOSClient(port=srv.port) as c:
            c.ping()
    # exiting stops the server; srv.leaked_tasks is [] on a clean run
"""

from __future__ import annotations

import asyncio
import threading

from repro.api import EOSDatabase
from repro.errors import ServerError
from repro.server.server import EOSServer


class ServerThread:
    """An EOSServer running on its own event loop in a daemon thread."""

    def __init__(self, db: EOSDatabase | None = None, **server_kwargs) -> None:
        self.server = EOSServer(db, **server_kwargs)
        self.leaked_tasks: list[str] = []
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (valid once :meth:`start` returns)."""
        return self.server.port

    # ------------------------------------------------------------------

    def start(self, timeout: float = 10.0) -> "ServerThread":
        """Start the loop thread and wait until the server is accepting."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="eos-server",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServerError("server failed to start within the timeout")
        if self._startup_error is not None:
            raise ServerError(f"server failed to start: {self._startup_error}")
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()
        # Anything still scheduled on the loop at this point outlived the
        # server's own shutdown — a leak.
        current = asyncio.current_task()
        self.leaked_tasks = [
            repr(task)
            for task in asyncio.all_tasks()
            if task is not current and not task.done()
        ]

    def stop(self, timeout: float = 10.0) -> list[str]:
        """Shut the server down; returns reprs of any leaked tasks."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise ServerError("server thread did not stop within the timeout")
            self._thread = None
        return self.leaked_tasks

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
