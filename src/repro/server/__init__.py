"""The serving layer: a TCP object server and its client.

* :mod:`repro.server.protocol` — the length-prefixed binary wire format
  (opcodes, error marshalling onto :mod:`repro.errors`);
* :mod:`repro.server.server` — the asyncio server: per-connection
  sessions, byte-range lock scheduling, admission control;
* :mod:`repro.server.client` — the blocking client library;
* :mod:`repro.server.sharding` — shared-nothing shards: oid tagging,
  per-shard workers, the coordinating :class:`ShardSet`;
* :mod:`repro.server.runner` — run a server on a background thread
  (tests, benchmarks, ``servectl bench-smoke --spawn``).

* :mod:`repro.server.expo` — exposition: the live status document,
  the Prometheus/health HTTP sidecar.

CLI: ``python -m repro.tools.servectl serve`` / ``ping`` / ``put`` /
``get`` / ``metrics`` / ``top`` / ``dump-flight`` / ``bench-smoke``.
"""

from repro.server.client import EOSClient
from repro.server.expo import MetricsHTTPServer, status_snapshot
from repro.server.protocol import Opcode, RemoteStat, Status
from repro.server.runner import ServerThread
from repro.server.server import EOSServer
from repro.server.sharding import Shard, ShardSet

__all__ = [
    "EOSClient",
    "EOSServer",
    "MetricsHTTPServer",
    "Opcode",
    "RemoteStat",
    "ServerThread",
    "Shard",
    "ShardSet",
    "Status",
    "status_snapshot",
]
