"""Shared-nothing shards: N databases, N worker threads, one address space.

The paper gives every storage structure its own buddy space, directory
and buffer pool precisely so that independent volumes never contend; a
:class:`ShardSet` applies the same ownership rule at process scale.
Each :class:`Shard` owns one complete :class:`~repro.api.EOSDatabase`
(disk volume + buffer pool + allocator), one
:class:`~repro.concurrency.LockManager`, and one dedicated worker
thread — no page, buffer frame, lock table or allocator state is ever
touched from outside that shard's worker, so shards scale like
independent disk arms (which is exactly what the SRV2 benchmark puts
under them).

Oid tagging
-----------
Wire oids carry their owning shard in the residue class modulo the
shard count::

    wire_oid  = local_oid * n_shards + shard_index
    shard     = wire_oid % n_shards
    local_oid = wire_oid // n_shards

Routing is pure arithmetic — no directory, no rebalancing, and a
client cannot tell a 1-shard server from an N-shard one (for
``n_shards == 1`` the mapping is the identity, which keeps every
pre-sharding oid valid).  Creates have no oid yet, so the coordinator
places them on the least-loaded shard and the response carries the
tagged oid home.

Coordinator fan-out
-------------------
Single-object ops touch exactly one shard.  Multi-object ops (LIST,
stats/space rollups, checkpoint) fan out to every shard and merge; a
dead shard fails the fan-out with
:class:`~repro.errors.ShardUnavailable` rather than silently returning
partial state.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable

from repro.analysis.confine import ThreadConfinement
from repro.analysis.sanitize import sanitizers_from_env
from repro.api import EOSDatabase
from repro.concurrency import LockManager
from repro.core.config import EOSConfig
from repro.errors import ObjectNotFound, ShardUnavailable
from repro.obs.tracer import Observability
from repro.ops import ObjectStat, VersionInfo

__all__ = ["Shard", "ShardSet", "make_oid", "split_oid", "shard_of"]

#: Disjoint span-id block size per shard tracer (see ShardSet.create).
_SPAN_ID_BLOCK = 1 << 40


def make_oid(shard_index: int, local_oid: int, n_shards: int) -> int:
    """The wire oid for a shard-local oid (identity when n_shards == 1)."""
    return local_oid * n_shards + shard_index


def split_oid(oid: int, n_shards: int) -> tuple[int, int]:
    """A wire oid as ``(shard_index, local_oid)``."""
    return oid % n_shards, oid // n_shards


def shard_of(oid: int, n_shards: int) -> int:
    """The index of the shard owning a wire oid."""
    return oid % n_shards


class Shard:
    """One shard: a database, a lock manager, and a dedicated worker.

    All database work submitted through :meth:`submit` runs on the
    shard's single worker thread, which keeps the database's tracer
    span stack sound and makes the shared-nothing claim structural:
    there is exactly one thread that ever executes this shard's ops.

    The shard also implements the :class:`~repro.ops.ObjectOps`
    interface directly (blocking on its own worker), translating wire
    oids to local ones — this is the in-process face of a shard, used
    by the conformance suite and by embedders that want sharding
    without the TCP server.
    """

    def __init__(
        self,
        index: int,
        db: EOSDatabase,
        n_shards: int,
        *,
        locks: LockManager | None = None,
        confine: bool = True,
    ) -> None:
        self.index = index
        self.db = db
        self.n_shards = n_shards
        self.locks = locks if locks is not None else LockManager()
        self.alive = True
        self.created = 0  # objects placed here (the create-balance signal)
        self.pending = 0  # ops submitted but not finished
        self._count_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"eos-shard-{index}"
        )
        # Thread-confinement sanitizer (EOS008's runtime twin): claim
        # the substrate from the worker itself, then arm the guards.
        # The .result() barrier orders the claim before any real op.
        # ``confine=False`` is for adopted databases, whose outside
        # owner legitimately keeps direct access.
        self.confinement: ThreadConfinement | None = None
        if confine and (
            sanitizers_from_env().confinement or db.config.sanitize_confinement
        ):
            self.confinement = ThreadConfinement(f"shard-{index}")
            self._pool.submit(self.confinement.claim).result()
            db.pool.attach_confinement(self.confinement)
            db.buddy.attach_confinement(self.confinement)

    # -- scheduling ----------------------------------------------------------

    @property
    def load(self) -> int:
        """The create-placement signal: objects held plus ops queued."""
        return self.created + self.pending

    def note_created(self) -> None:
        """Record that a create was placed on this shard."""
        with self._count_lock:
            self.created += 1

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Run ``fn`` on the shard's worker thread; a Future of its result.

        Raises :class:`~repro.errors.ShardUnavailable` once the shard
        has been killed or closed — fail fast, never queue onto a dead
        worker.
        """
        if not self.alive:
            raise ShardUnavailable(f"shard {self.index} is not serving")
        with self._count_lock:
            self.pending += 1

        def call():
            try:
                return fn(*args, **kwargs)
            finally:
                with self._count_lock:
                    self.pending -= 1

        try:
            return self._pool.submit(call)
        except RuntimeError:  # lost the race with kill()/close()
            with self._count_lock:
                self.pending -= 1
            raise ShardUnavailable(
                f"shard {self.index} is not serving"
            ) from None

    def local_oid(self, oid: int) -> int:
        """The shard-local oid for a wire oid this shard owns."""
        shard_index, local = split_oid(oid, self.n_shards)
        if shard_index != self.index:
            raise ObjectNotFound(
                f"oid {oid} belongs to shard {shard_index}, not {self.index}"
            )
        return local

    # -- lifecycle -----------------------------------------------------------

    def kill(self) -> None:
        """Take the shard down hard (fault injection / shard-death tests).

        Queued work is cancelled, the database is left as-is, and every
        subsequent :meth:`submit` raises
        :class:`~repro.errors.ShardUnavailable`.
        """
        self.alive = False
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self.confinement is not None:
            self.confinement.release()

    def close(self) -> None:
        """Drain the worker and close the shard's database."""
        self.alive = False
        self._pool.shutdown(wait=True)
        if self.confinement is not None:
            self.confinement.release()
        if not self.db.is_closed:
            self.db.close()

    # -- ObjectOps (blocking, oid-translating) -------------------------------

    def _run(self, fn: Callable, *args, **kwargs):
        return self.submit(fn, *args, **kwargs).result()

    def _run_snapshot(self, fn: Callable, *args, **kwargs):
        """Run a lock-free snapshot read, bypassing the worker thread.

        Versioned reads touch no shard-exclusive state (no buffer pool,
        no op lock, no lock table) — they resolve an immutable version
        root and read straight from the shard's disk — so serializing
        them through the single worker would only reintroduce the
        contention versioning removes.  Dead-shard semantics are kept:
        a killed shard refuses reads like any other op.
        """
        if not self.alive:
            raise ShardUnavailable(f"shard {self.index} is not serving")
        return fn(*args, **kwargs)

    def op_create(
        self, data: bytes = b"", *, size_hint: int | None = None
    ) -> int:
        """Create an object on this shard; returns its wire oid."""
        local = self._run(self.db.op_create, data, size_hint=size_hint)
        self.note_created()
        return make_oid(self.index, local, self.n_shards)

    def op_append(self, oid: int, data: bytes) -> int:
        """Append bytes; the object's new size."""
        return self._run(self.db.op_append, self.local_oid(oid), data)

    def op_read(
        self, oid: int, *, offset: int, length: int,
        version: int | None = None,
    ) -> bytes:
        """Read ``length`` bytes at ``offset`` (lock-free when versioned)."""
        if self.db.versions is not None:
            return self._run_snapshot(
                self.db.op_read, self.local_oid(oid),
                offset=offset, length=length, version=version,
            )
        return self._run(
            self.db.op_read, self.local_oid(oid),
            offset=offset, length=length, version=version,
        )

    def op_read_into(
        self, oid: int, dest, *, offset: int, length: int,
        version: int | None = None,
    ) -> int:
        """Read into a writable buffer; the byte count."""
        if self.db.versions is not None:
            return self._run_snapshot(
                self.db.op_read_into, self.local_oid(oid), dest,
                offset=offset, length=length, version=version,
            )
        return self._run(
            self.db.op_read_into, self.local_oid(oid), dest,
            offset=offset, length=length, version=version,
        )

    def op_write(self, oid: int, data: bytes, *, offset: int) -> int:
        """Overwrite in place; the (unchanged) size."""
        return self._run(
            self.db.op_write, self.local_oid(oid), data, offset=offset
        )

    def op_insert(self, oid: int, data: bytes, *, offset: int) -> int:
        """Insert bytes at ``offset``; the new size."""
        return self._run(
            self.db.op_insert, self.local_oid(oid), data, offset=offset
        )

    def op_delete(self, oid: int, *, offset: int, length: int) -> int:
        """Delete a byte range; the new size."""
        return self._run(
            self.db.op_delete, self.local_oid(oid),
            offset=offset, length=length,
        )

    def op_size(self, oid: int) -> int:
        """The object's size in bytes."""
        if self.db.versions is not None:
            return self._run_snapshot(self.db.op_size, self.local_oid(oid))
        return self._run(self.db.op_size, self.local_oid(oid))

    def op_stat(self, oid: int, *, version: int | None = None) -> ObjectStat:
        """Space accounting plus the root page."""
        if self.db.versions is not None:
            return self._run_snapshot(
                self.db.op_stat, self.local_oid(oid), version=version
            )
        return self._run(self.db.op_stat, self.local_oid(oid), version=version)

    def op_versions(self, oid: int) -> list[VersionInfo]:
        """The object's committed versions, ascending."""
        if self.db.versions is not None:
            return self._run_snapshot(self.db.op_versions, self.local_oid(oid))
        return self._run(self.db.op_versions, self.local_oid(oid))

    def op_list(self) -> list[tuple[int, int]]:
        """This shard's objects as ``(wire_oid, size)``, ascending."""
        local = self._run(self.db.op_list)
        return [
            (make_oid(self.index, loid, self.n_shards), size)
            for loid, size in local
        ]


class ShardSet:
    """The coordinator: routes by oid, balances creates, fans out the rest."""

    def __init__(self, shards: Iterable[Shard], *, obs: Observability | None = None):
        self.shards: list[Shard] = list(shards)
        if not self.shards:
            raise ValueError("a ShardSet needs at least one shard")
        self.n_shards = len(self.shards)
        #: The coordinator's observability bundle: request roots, server
        #: metrics and flight spans land here.  A single adopted shard
        #: shares its database's bundle, preserving the unsharded
        #: server's metrics surface exactly.
        self.obs = obs if obs is not None else self.shards[0].db.obs

    # -- construction --------------------------------------------------------

    @classmethod
    def adopt(
        cls, db: EOSDatabase, *, locks: LockManager | None = None
    ) -> "ShardSet":
        """Wrap one existing database as a single-shard set.

        The oid mapping is the identity and the database's own
        observability bundle is used, so a server over an adopted set
        is wire- and metrics-compatible with the pre-sharding server.
        The caller keeps direct access to the database it handed in, so
        the thread-confinement sanitizer is not armed for adopted sets.
        """
        return cls([Shard(0, db, 1, locks=locks, confine=False)])

    @classmethod
    def create(
        cls,
        n_shards: int,
        num_pages: int,
        page_size: int = 4096,
        *,
        config: EOSConfig | None = None,
        pool_capacity: int = 128,
        disk_factory: Callable[[int], object] | None = None,
        sinks: Iterable = (),
    ) -> "ShardSet":
        """Format ``n_shards`` fresh databases of ``num_pages`` pages each.

        Every shard gets its own volume (``disk_factory(index)`` may
        supply the device — e.g. a
        :class:`~repro.storage.timing.TimedDisk` per simulated arm),
        its own metrics registry, and a tracer whose span ids live in a
        disjoint block so per-shard spans merge cleanly under
        coordinator-allocated request roots.  ``sinks`` (span sinks,
        e.g. a JSON-lines file) are shared by the coordinator and every
        shard tracer; sinks used this way must tolerate concurrent
        ``on_span`` calls.
        """
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        sinks = list(sinks)
        shards = []
        for index in range(n_shards):
            disk = disk_factory(index) if disk_factory is not None else None
            db = EOSDatabase.create(
                num_pages,
                page_size,
                config=config,
                pool_capacity=pool_capacity,
                disk=disk,
            )
            db.obs.enable(
                sinks=sinks,
                first_span_id=(index + 1) * _SPAN_ID_BLOCK,
            )
            shards.append(Shard(index, db, n_shards))
        obs = Observability(page_size=page_size).enable(sinks=sinks)
        return cls(shards, obs=obs)

    # -- routing -------------------------------------------------------------

    @property
    def single(self) -> bool:
        """True for a one-shard set (the unsharded-compatible case)."""
        return self.n_shards == 1

    def shard_for(self, oid: int) -> Shard:
        """The shard owning a wire oid (pure arithmetic, no lookup)."""
        return self.shards[shard_of(oid, self.n_shards)]

    def pick_for_create(self) -> Shard:
        """The least-loaded live shard (ties break on the lowest index)."""
        live = [s for s in self.shards if s.alive]
        if not live:
            raise ShardUnavailable("no shard is serving")
        return min(live, key=lambda s: (s.load, s.index))

    def live_shards(self) -> list[Shard]:
        """Shards currently serving."""
        return [s for s in self.shards if s.alive]

    # -- coordinator fan-out (blocking; the server has an async twin) --------

    def op_list(self) -> list[tuple[int, int]]:
        """Every object on every shard as ``(wire_oid, size)``, ascending.

        Fans out to all shards concurrently and merges; raises
        :class:`~repro.errors.ShardUnavailable` if any shard is down —
        a partial listing would silently hide objects.
        """
        futures = [
            (shard, shard.submit(shard.db.op_list)) for shard in self.shards
        ]
        merged: list[tuple[int, int]] = []
        for shard, future in futures:
            merged.extend(
                (make_oid(shard.index, loid, self.n_shards), size)
                for loid, size in future.result()
            )
        merged.sort()
        return merged

    def checkpoint(self) -> None:
        """Flush every shard's dirty pages (fan-out, all must be live)."""
        futures = [shard.submit(shard.db.checkpoint) for shard in self.shards]
        for future in futures:
            future.result()

    def close(self) -> None:
        """Close every shard (drains workers) and the coordinator bundle."""
        for shard in self.shards:
            shard.close()
        if self.obs is not self.shards[0].db.obs:
            self.obs.close()
