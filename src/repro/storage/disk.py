"""The simulated disk volume.

:class:`DiskVolume` is an array of ``num_pages`` fixed-size pages backed
by a single in-memory ``bytearray``, with optional save/load to a file
for persistence across processes.  It supports exactly the operations a
raw device does:

* read/write one page;
* read/write a *contiguous* run of pages in one call;
* borrow a read-only :class:`memoryview` of a run (:meth:`view_pages`)
  and scatter-write an iovec list in one run (:meth:`write_pages_v`) —
  the zero-copy primitives the data path is built on.

All accesses flow through an :class:`~repro.storage.iostats.IOStats`
instance, which models the disk head: a run that does not start where
the head was left costs a seek.  The large object manager's claim that a
multi-page read within one segment is "1 disk seek plus N page
transfers" (Section 4.2) is therefore measured, not assumed.

The volume knows nothing about allocation — that is the buddy system's
job — and nothing about caching — that is the buffer pool's job.
"""

from __future__ import annotations

import os
import struct

from repro.errors import PageOutOfRange, PageSizeMismatch
from repro.storage.iostats import IOStats
from repro.storage.page import PageId, validate_page_size
from repro.util import copytrace

_FILE_MAGIC = b"EOSVOL01"
_FILE_HEADER = struct.Struct("<8sQQ")  # magic, page_size, num_pages


class DiskVolume:
    """A flat array of pages with seek-accurate I/O accounting."""

    def __init__(self, num_pages: int, page_size: int = 4096) -> None:
        if num_pages <= 0:
            raise ValueError(f"a volume needs at least one page, got {num_pages}")
        validate_page_size(page_size)
        self.num_pages = num_pages
        self.page_size = page_size
        self.stats = IOStats()
        self._data = bytearray(num_pages * page_size)

    # -- geometry -----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Total raw capacity of the volume."""
        return self.num_pages * self.page_size

    def _check_range(self, first_page: PageId, n_pages: int) -> None:
        if n_pages <= 0:
            raise ValueError(f"transfer length must be positive, got {n_pages}")
        if first_page < 0 or first_page + n_pages > self.num_pages:
            raise PageOutOfRange(first_page, self.num_pages)

    # -- transfers ----------------------------------------------------------

    def read_page(self, page: PageId) -> bytes:
        """Read one page; costs a seek unless the head is already there."""
        return self.read_pages(page, 1)

    def read_pages(self, first_page: PageId, n_pages: int) -> bytes:
        """Read ``n_pages`` physically contiguous pages in one run.

        Copying contract: the caller owns the returned ``bytes``.  The
        zero-copy path uses :meth:`view_pages` instead.
        """
        view = self.view_pages(first_page, n_pages)
        return copytrace.materialize(view, "disk.read_pages")

    def view_pages(self, first_page: PageId, n_pages: int) -> memoryview:
        """Borrow a read-only view of a contiguous run — no copy.

        The view aliases the live volume image: it is valid until the
        next write to those pages.  Callers must consume (or copy out
        of) the view before issuing further writes; the read path does —
        it plans all its transfers first and assembles into its own
        buffer before any update can run.
        """
        self._check_range(first_page, n_pages)
        self.stats.record_read(first_page, n_pages)
        lo = first_page * self.page_size
        hi = lo + n_pages * self.page_size
        return memoryview(self._data)[lo:hi].toreadonly()

    def write_page(self, page: PageId, image: bytes | bytearray) -> None:
        """Write one page image."""
        self.write_pages(page, image)

    def write_pages(self, first_page: PageId, data) -> None:
        """Write a contiguous run of whole pages in one run.

        ``data`` is any buffer (bytes, bytearray, memoryview) holding a
        whole number of pages; a partial final page must be padded by
        the caller (segments always own whole pages — the unused tail of
        a segment's last page is physically present but logically dead,
        per Section 4).
        """
        self.write_pages_v(first_page, (data,))

    def write_pages_v(self, first_page: PageId, iovecs) -> None:
        """Vectored write: gather ``iovecs`` into one contiguous run.

        The chunks land back to back starting at ``first_page``; their
        total length must be a whole number of pages.  One call is one
        transfer run (one seek at most), which is how the run-coalescer
        turns writes of physically adjacent segments into a single
        multi-page transfer without first concatenating the payload.
        """
        views = [memoryview(iov).cast("B") for iov in iovecs]
        total = sum(len(v) for v in views)
        if total % self.page_size:
            raise PageSizeMismatch(total, self.page_size)
        n_pages = total // self.page_size
        self._check_range(first_page, n_pages)
        self.stats.record_write(first_page, n_pages)
        position = first_page * self.page_size
        for view in views:
            self._data[position : position + len(view)] = view
            position += len(view)

    # -- maintenance --------------------------------------------------------

    def peek(self, first_page: PageId, n_pages: int = 1) -> bytes:
        """Read pages *without* I/O accounting (for tests and verifiers)."""
        self._check_range(first_page, n_pages)
        lo = first_page * self.page_size
        view = memoryview(self._data)[lo : lo + n_pages * self.page_size]
        return copytrace.materialize(view, "disk.peek")

    def poke(self, first_page: PageId, data: bytes | bytearray) -> None:
        """Write pages without I/O accounting (for tests and fault injection)."""
        if len(data) % self.page_size:
            raise PageSizeMismatch(len(data), self.page_size)
        self._check_range(first_page, len(data) // self.page_size)
        lo = first_page * self.page_size
        self._data[lo : lo + len(data)] = data

    # -- persistence --------------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Persist the volume image to a file."""
        header = _FILE_HEADER.pack(_FILE_MAGIC, self.page_size, self.num_pages)
        with open(path, "wb") as f:
            f.write(header)
            f.write(self._data)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "DiskVolume":
        """Restore a volume previously written by :meth:`save`."""
        with open(path, "rb") as f:
            header = f.read(_FILE_HEADER.size)
            magic, page_size, num_pages = _FILE_HEADER.unpack(header)
            if magic != _FILE_MAGIC:
                raise ValueError(f"{path!s} is not a saved DiskVolume image")
            volume = cls(num_pages=num_pages, page_size=page_size)
            data = f.read(num_pages * page_size)
            if len(data) != num_pages * page_size:
                raise ValueError(f"{path!s} is truncated")
            volume._data[:] = data
        return volume

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskVolume(num_pages={self.num_pages}, page_size={self.page_size}, "
            f"stats={self.stats!r})"
        )
