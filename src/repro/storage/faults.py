"""Fault injection for crash testing at the disk layer.

:class:`FaultyDisk` wraps a :class:`~repro.storage.disk.DiskVolume` and
fails (raising :class:`DiskFault`) after a configured number of page
writes — the classic "power loss mid-flush" model.  Writes up to the
fault point are durable, the failing write is *not* applied (whole-page
atomicity, the assumption Section 4.5's single-root-write commit relies
on), and everything after the fault raises until :meth:`heal` is called.

Tests use it to show that wherever the crash lands inside an update,
the committed state remains exactly the old version or exactly the new
one — never a torn mixture.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.disk import DiskVolume
from repro.storage.page import PageId


class DiskFault(StorageError):
    """The simulated device failed (power loss / controller fault)."""


class FaultyDisk:
    """A DiskVolume proxy that dies after ``fail_after_writes`` writes.

    Reads always succeed (the platters survive the crash).  The proxy
    exposes the same transfer interface as :class:`DiskVolume`, so it
    can be swapped in wherever a disk is expected.
    """

    def __init__(self, inner: DiskVolume) -> None:
        self.inner = inner
        self.fail_after_writes: int | None = None
        self.writes_seen = 0
        self.faulted = False

    # -- fault control -------------------------------------------------------

    def arm(self, fail_after_writes: int) -> None:
        """Fail the (N+1)-th page-write call from now on."""
        if fail_after_writes < 0:
            raise ValueError("fail_after_writes must be >= 0")
        self.fail_after_writes = fail_after_writes
        self.writes_seen = 0
        self.faulted = False

    def heal(self) -> None:
        """Clear the fault (the machine rebooted; the device is fine)."""
        self.fail_after_writes = None
        self.faulted = False

    def _check_write(self) -> None:
        if self.faulted:
            raise DiskFault("device offline after fault")
        if self.fail_after_writes is not None:
            if self.writes_seen >= self.fail_after_writes:
                self.faulted = True
                raise DiskFault(
                    f"simulated power loss at write #{self.writes_seen + 1}"
                )
            self.writes_seen += 1

    # -- DiskVolume interface --------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    @property
    def page_size(self) -> int:
        return self.inner.page_size

    @property
    def size_bytes(self) -> int:
        return self.inner.size_bytes

    @property
    def stats(self):
        return self.inner.stats

    def read_page(self, page: PageId) -> bytes:
        """Reads always succeed."""
        return self.inner.read_page(page)

    def read_pages(self, first_page: PageId, n_pages: int) -> bytes:
        """Reads always succeed."""
        return self.inner.read_pages(first_page, n_pages)

    def write_page(self, page: PageId, image) -> None:
        """Write one page, or die at the armed fault point."""
        self._check_write()
        self.inner.write_page(page, image)

    def write_pages(self, first_page: PageId, data) -> None:
        """Write a run, or die at the armed fault point."""
        self._check_write()
        self.inner.write_pages(first_page, data)

    def peek(self, first_page: PageId, n_pages: int = 1) -> bytes:
        """Unaccounted read-through (test helper)."""
        return self.inner.peek(first_page, n_pages)

    def poke(self, first_page: PageId, data) -> None:
        """Unaccounted write-through (test helper)."""
        self.inner.poke(first_page, data)

    def save(self, path) -> None:
        """Persist the underlying volume image."""
        self.inner.save(path)
