"""Fault injection for crash testing at the disk layer.

:class:`FaultyDisk` wraps a :class:`~repro.storage.disk.DiskVolume` and
fails (raising :class:`DiskFault`) after a configured number of page
writes — the classic "power loss mid-flush" model — or, separately,
after a configured number of page reads (a media error on the return
path: the data is intact, but the device stops answering).  Writes up to
the fault point are durable, the failing transfer is *not* applied or
returned (whole-page atomicity, the assumption Section 4.5's single-
root-write commit relies on), and everything after the fault raises
until :meth:`heal` is called.

Tests use it to show that wherever the crash lands inside an update,
the committed state remains exactly the old version or exactly the new
one — never a torn mixture.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.disk import DiskVolume
from repro.storage.page import PageId


class DiskFault(StorageError):
    """The simulated device failed (power loss / controller fault)."""


class FaultyDisk:
    """A DiskVolume proxy that dies after N writes and/or N reads.

    By default reads always succeed (the platters survive a write-path
    crash); arming ``fail_after_reads`` models the read path failing
    too.  The proxy exposes the same transfer interface as
    :class:`DiskVolume`, so it can be swapped in wherever a disk is
    expected.
    """

    def __init__(self, inner: DiskVolume) -> None:
        self.inner = inner
        self.fail_after_writes: int | None = None
        self.fail_after_reads: int | None = None
        self.writes_seen = 0
        self.reads_seen = 0
        self.faulted = False       # write path down (power loss)
        self.read_faulted = False  # read path down (media error)

    # -- fault control -------------------------------------------------------

    def arm(
        self,
        fail_after_writes: int | None = None,
        *,
        fail_after_reads: int | None = None,
    ) -> None:
        """Fail the (N+1)-th page-write and/or page-read call from now on.

        Either budget may be armed alone; arming replaces any previous
        arming and clears standing faults.  The two paths fail
        independently: a write fault (power loss) leaves reads working —
        the platters survive — and a read fault (media error) leaves
        writes working.
        """
        if fail_after_writes is None and fail_after_reads is None:
            raise ValueError("arm at least one of writes/reads")
        if fail_after_writes is not None and fail_after_writes < 0:
            raise ValueError("fail_after_writes must be >= 0")
        if fail_after_reads is not None and fail_after_reads < 0:
            raise ValueError("fail_after_reads must be >= 0")
        self.fail_after_writes = fail_after_writes
        self.fail_after_reads = fail_after_reads
        self.writes_seen = 0
        self.reads_seen = 0
        self.faulted = False
        self.read_faulted = False

    def heal(self) -> None:
        """Clear the faults (the machine rebooted; the device is fine)."""
        self.fail_after_writes = None
        self.fail_after_reads = None
        self.faulted = False
        self.read_faulted = False

    def _check_write(self) -> None:
        if self.faulted:
            raise DiskFault("device offline after fault")
        if self.fail_after_writes is not None:
            if self.writes_seen >= self.fail_after_writes:
                self.faulted = True
                raise DiskFault(
                    f"simulated power loss at write #{self.writes_seen + 1}"
                )
            self.writes_seen += 1

    def _check_read(self) -> None:
        if self.read_faulted:
            raise DiskFault("read path offline after media error")
        if self.fail_after_reads is not None:
            if self.reads_seen >= self.fail_after_reads:
                self.read_faulted = True
                raise DiskFault(
                    f"simulated media error at read #{self.reads_seen + 1}"
                )
            self.reads_seen += 1

    # -- DiskVolume interface --------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    @property
    def page_size(self) -> int:
        return self.inner.page_size

    @property
    def size_bytes(self) -> int:
        return self.inner.size_bytes

    @property
    def stats(self):
        return self.inner.stats

    def read_page(self, page: PageId) -> bytes:
        """Read one page, or die at an armed read-fault point."""
        self._check_read()
        return self.inner.read_page(page)

    def read_pages(self, first_page: PageId, n_pages: int) -> bytes:
        """Read a run, or die at an armed read-fault point."""
        self._check_read()
        return self.inner.read_pages(first_page, n_pages)

    def view_pages(self, first_page: PageId, n_pages: int) -> memoryview:
        """Borrow a read-only view, or die at an armed read-fault point."""
        self._check_read()
        return self.inner.view_pages(first_page, n_pages)

    def write_page(self, page: PageId, image) -> None:
        """Write one page, or die at the armed fault point."""
        self._check_write()
        self.inner.write_page(page, image)

    def write_pages(self, first_page: PageId, data) -> None:
        """Write a run, or die at the armed fault point."""
        self._check_write()
        self.inner.write_pages(first_page, data)

    def write_pages_v(self, first_page: PageId, iovecs) -> None:
        """Vectored write, or die at the armed fault point."""
        self._check_write()
        self.inner.write_pages_v(first_page, iovecs)

    def peek(self, first_page: PageId, n_pages: int = 1) -> bytes:
        """Unaccounted read-through (test helper)."""
        return self.inner.peek(first_page, n_pages)

    def poke(self, first_page: PageId, data) -> None:
        """Unaccounted write-through (test helper)."""
        self.inner.poke(first_page, data)

    def save(self, path) -> None:
        """Persist the underlying volume image."""
        self.inner.save(path)
