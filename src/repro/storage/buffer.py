"""An LRU buffer pool for single-page structures.

Index pages of the positional tree and buddy-space directory pages are
hot, single-page structures; the paper assumes they are cached ("at most
one disk access is needed to serve block allocation requests" presumes
the directory is fetched once).  Leaf segments, by contrast, are read
with large contiguous transfers and deliberately bypass the pool — a
multi-megabyte object must not wipe out the cache of its own index.

The pool implements the classic protocol:

* :meth:`fetch` pins a page frame and returns a mutable ``bytearray``;
* :meth:`unpin` releases it, optionally marking it dirty;
* dirty frames are written back on eviction or :meth:`flush_all`;
* eviction is LRU over unpinned frames; if every frame is pinned,
  :class:`~repro.errors.AllPagesPinned` is raised.

A ``with pool.page(pid) as frame:`` form handles pin/unpin pairing.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.confine import ThreadConfinement
from repro.analysis.pinleak import PinLeakSanitizer
from repro.analysis.sanitize import sanitizers_from_env
from repro.errors import AllPagesPinned, PageNotPinned
from repro.storage.disk import DiskVolume
from repro.storage.page import PageId


@dataclass
class _Frame:
    image: bytearray
    pin_count: int = 0
    dirty: bool = False


@dataclass
class BufferPoolStats:
    """Hit/miss counters, exposed for the superdirectory experiment (E9)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class BufferPool:
    """LRU cache of single pages over a :class:`DiskVolume`."""

    def __init__(self, disk: DiskVolume, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer pool needs at least one frame, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferPoolStats()
        # Ordered oldest-first for LRU; move_to_end on every touch.
        self._frames: "OrderedDict[PageId, _Frame]" = OrderedDict()
        self.pin_sanitizer: PinLeakSanitizer | None = None
        if sanitizers_from_env().pins:
            self.attach_pin_sanitizer()
        # Thread-confinement guard; attached by the owning shard (see
        # repro.analysis.confine), None means unconfined.
        self.confinement: ThreadConfinement | None = None

    def attach_pin_sanitizer(self) -> PinLeakSanitizer:
        """Enable pin-origin tracking (see :mod:`repro.analysis.pinleak`)."""
        if self.pin_sanitizer is None:
            self.pin_sanitizer = PinLeakSanitizer()
        return self.pin_sanitizer

    def attach_confinement(self, confinement: ThreadConfinement) -> None:
        """Confine every entry point to the claiming worker thread."""
        self.confinement = confinement

    def _confine(self, entry: str) -> None:
        if self.confinement is not None:
            self.confinement.check(entry)

    # -- core protocol ------------------------------------------------------

    def fetch(self, page: PageId) -> bytearray:
        """Pin ``page`` and return its (shared, mutable) in-memory image."""
        self._confine("BufferPool.fetch")
        frame = self._frames.get(page)
        if frame is None:
            self.stats.misses += 1
            self._make_room()
            frame = _Frame(image=bytearray(self.disk.read_page(page)))
            self._frames[page] = frame
        else:
            self.stats.hits += 1
            self._frames.move_to_end(page)
        frame.pin_count += 1
        if self.pin_sanitizer is not None:
            self.pin_sanitizer.record_pin(page)
        return frame.image

    def fetch_new(self, page: PageId, image: bytes | bytearray) -> bytearray:
        """Install a freshly built page image without reading the disk.

        Used when a page has just been allocated: its on-disk content is
        garbage, so reading it would charge I/O for bytes nobody needs.
        The frame starts dirty and pinned.
        """
        self._confine("BufferPool.fetch_new")
        existing = self._frames.get(page)
        if existing is not None and existing.pin_count:
            raise AllPagesPinned(f"page {page} is pinned and cannot be replaced")
        if existing is not None:
            del self._frames[page]
        self._make_room()
        frame = _Frame(image=bytearray(image), pin_count=1, dirty=True)
        self._frames[page] = frame
        if self.pin_sanitizer is not None:
            self.pin_sanitizer.record_pin(page)
        return frame.image

    def put_new(self, page: PageId, image: bytes | bytearray) -> None:
        """Install a freshly built page image and release it at once.

        The paired form of :meth:`fetch_new` for callers that do not
        need to keep the page pinned: the frame lands dirty and
        immediately unpinned, so no pin can leak.
        """
        self.fetch_new(page, image)
        self.unpin(page, dirty=True)

    def unpin(self, page: PageId, *, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` schedules write-back."""
        self._confine("BufferPool.unpin")
        frame = self._frames.get(page)
        if frame is None or frame.pin_count == 0:
            raise PageNotPinned(f"page {page} is not pinned")
        frame.pin_count -= 1
        frame.dirty = frame.dirty or dirty
        if self.pin_sanitizer is not None:
            self.pin_sanitizer.record_unpin(page)

    @contextlib.contextmanager
    def page(self, page: PageId, *, dirty: bool = False) -> Iterator[bytearray]:
        """``with`` form of fetch/unpin.

        ``dirty=True`` marks the page dirty on release (for mutating
        callers); otherwise mark it mid-block via :meth:`mark_dirty`.
        """
        image = self.fetch(page)
        try:
            yield image
        finally:
            self.unpin(page, dirty=dirty)

    def mark_dirty(self, page: PageId) -> None:
        """Mark a currently resident page dirty without changing pins."""
        self._confine("BufferPool.mark_dirty")
        frame = self._frames.get(page)
        if frame is None:
            raise PageNotPinned(f"page {page} is not resident")
        frame.dirty = True

    # -- write-back ---------------------------------------------------------

    def flush_page(self, page: PageId) -> None:
        """Write one dirty frame back to disk (no-op if clean or absent)."""
        self._confine("BufferPool.flush_page")
        frame = self._frames.get(page)
        if frame is not None and frame.dirty:
            self.disk.write_page(page, frame.image)
            self.stats.writebacks += 1
            frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        self._confine("BufferPool.flush_all")
        for page in list(self._frames):
            self.flush_page(page)

    def drop(self, page: PageId) -> None:
        """Discard a frame without write-back (page was freed)."""
        self._confine("BufferPool.drop")
        frame = self._frames.get(page)
        if frame is not None:
            if frame.pin_count:
                raise AllPagesPinned(f"page {page} is pinned and cannot be dropped")
            del self._frames[page]

    def clear(self) -> None:
        """Flush everything and empty the pool (simulates a cold cache)."""
        self._confine("BufferPool.clear")
        self.flush_all()
        for page, frame in self._frames.items():
            if frame.pin_count:
                raise AllPagesPinned(f"page {page} is pinned; cannot clear pool")
        self._frames.clear()

    # -- eviction -----------------------------------------------------------

    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        # Scan oldest-first.  A pinned frame at the LRU end is rotated to
        # the MRU end rather than skipped in place: it is in active use,
        # and rotating keeps the next scan O(unpinned-prefix) instead of
        # re-walking the same pinned run on every eviction.
        for _ in range(len(self._frames)):
            page, frame = next(iter(self._frames.items()))
            if frame.pin_count:
                self._frames.move_to_end(page)
                continue
            if frame.dirty:
                self.disk.write_page(page, frame.image)
                self.stats.writebacks += 1
            del self._frames[page]
            self.stats.evictions += 1
            return
        raise AllPagesPinned(
            f"all {self.capacity} buffer frames are pinned; cannot evict"
        )

    # -- introspection ------------------------------------------------------

    def resident(self, page: PageId) -> bool:
        """True if the page is currently cached (used by tests)."""
        return page in self._frames

    def __len__(self) -> int:
        return len(self._frames)
