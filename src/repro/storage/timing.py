"""A disk proxy that charges real wall-clock service time per transfer.

The in-memory :class:`~repro.storage.disk.DiskVolume` completes
transfers instantly, which makes "one database per disk arm" sharding
(the deployment the paper's independent buddy spaces and per-volume
ownership anticipate) unmeasurable: with zero service time, a single
worker thread is never the bottleneck.  :class:`TimedDisk` wraps a
volume and sleeps for a modelled seek + per-page transfer time on every
accounted run, using the same head-position rule as
:class:`~repro.storage.iostats.IOStats`: a run that does not start
where the head was left pays the seek.

``time.sleep`` releases the GIL, so N shards over N TimedDisks overlap
their service time exactly as N real disk arms would — that is what the
SRV2 scaling benchmark measures.  The proxy exposes the full DiskVolume
transfer interface (like :class:`~repro.storage.faults.FaultyDisk`)
and can be swapped in anywhere a disk is expected;
``EOSDatabase.create(..., disk=TimedDisk(...))`` is the usual seam.
``peek``/``poke`` stay free — they are unaccounted test helpers on the
real volume too.
"""

from __future__ import annotations

import threading
import time

from repro.storage.disk import DiskVolume
from repro.storage.page import PageId


class TimedDisk:
    """A DiskVolume proxy with modelled seek/transfer service time.

    ``seek_ms`` is charged when a run does not start at the current
    head position; ``transfer_ms_per_page`` is charged per page moved.
    The head lands one past the last page of each run.  Timing state is
    protected by a lock so concurrent callers serialize on the device —
    one arm, one transfer at a time — exactly like a real spindle.
    """

    def __init__(
        self,
        inner: DiskVolume,
        *,
        seek_ms: float = 0.0,
        transfer_ms_per_page: float = 0.0,
    ) -> None:
        if seek_ms < 0 or transfer_ms_per_page < 0:
            raise ValueError("service times must be >= 0")
        self.inner = inner
        self.seek_ms = seek_ms
        self.transfer_ms_per_page = transfer_ms_per_page
        self.busy_ms = 0.0  # cumulative modelled service time
        self._head: int | None = None
        self._lock = threading.Lock()

    def _charge(self, first_page: int, n_pages: int) -> None:
        with self._lock:
            delay_ms = self.transfer_ms_per_page * n_pages
            if self._head != first_page:
                delay_ms += self.seek_ms
            self._head = first_page + n_pages
            self.busy_ms += delay_ms
            if delay_ms:
                time.sleep(delay_ms / 1000.0)

    # -- DiskVolume interface ------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    @property
    def page_size(self) -> int:
        return self.inner.page_size

    @property
    def size_bytes(self) -> int:
        return self.inner.size_bytes

    @property
    def stats(self):
        return self.inner.stats

    def read_page(self, page: PageId) -> bytes:
        """Read one page after its modelled service time."""
        self._charge(page, 1)
        return self.inner.read_page(page)

    def read_pages(self, first_page: PageId, n_pages: int) -> bytes:
        """Read a run after its modelled service time."""
        self._charge(first_page, n_pages)
        return self.inner.read_pages(first_page, n_pages)

    def view_pages(self, first_page: PageId, n_pages: int):
        """Borrow a read-only view after the run's modelled service time."""
        self._charge(first_page, n_pages)
        return self.inner.view_pages(first_page, n_pages)

    def write_page(self, page: PageId, image) -> None:
        """Write one page after its modelled service time."""
        self._charge(page, 1)
        self.inner.write_page(page, image)

    def write_pages(self, first_page: PageId, data) -> None:
        """Write a run after its modelled service time."""
        self._charge(first_page, memoryview(data).nbytes // self.page_size)
        self.inner.write_pages(first_page, data)

    def write_pages_v(self, first_page: PageId, iovecs) -> None:
        """Vectored write after the gathered run's modelled service time."""
        total = sum(memoryview(iov).nbytes for iov in iovecs)
        self._charge(first_page, total // self.page_size)
        self.inner.write_pages_v(first_page, iovecs)

    def peek(self, first_page: PageId, n_pages: int = 1) -> bytes:
        """Unaccounted (and untimed) read-through."""
        return self.inner.peek(first_page, n_pages)

    def poke(self, first_page: PageId, data) -> None:
        """Unaccounted (and untimed) write-through."""
        self.inner.poke(first_page, data)

    def save(self, path) -> None:
        """Persist the underlying volume image."""
        self.inner.save(path)
