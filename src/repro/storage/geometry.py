"""Disk geometry: converting seek/transfer counts into estimated time.

The paper's thesis is that I/O rates should be "close to transfer rates",
which is only meaningful relative to how expensive a seek is compared to
a page transfer.  :class:`DiskGeometry` captures that ratio.  Rotational
latency is folded into the average seek cost, as is conventional for
back-of-envelope storage arithmetic.

Three presets are provided:

* :data:`DISK_1992` — a drive contemporary with the paper (think Seagate
  Wren-class): ~16 ms average seek+rotation, ~1.3 ms to transfer a 4 KB
  page (≈3 MB/s media rate).  A seek costs about 12 page transfers.
* :data:`MODERN_HDD` — ~8 ms average seek, ~0.02 ms per 4 KB page
  (≈200 MB/s).  A seek costs about 400 page transfers, so preserving
  physical contiguity matters *more* on modern spinning disks.
* :data:`MODERN_SSD` — no mechanical seek; a small per-command overhead
  stands in for one.  Included so experiments can show which conclusions
  are geometry-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.iostats import IOSnapshot


@dataclass(frozen=True)
class DiskGeometry:
    """Cost constants for one disk model.

    ``transfer_ms_per_page`` is normalised to ``reference_page_size``
    bytes; :meth:`cost_ms` scales it linearly for other page sizes.
    """

    name: str
    seek_ms: float
    transfer_ms_per_page: float
    reference_page_size: int = 4096

    def transfer_ms(self, page_size: int) -> float:
        """Per-page transfer time for pages of ``page_size`` bytes."""
        return self.transfer_ms_per_page * (page_size / self.reference_page_size)

    def cost_ms(self, seeks: int, pages: int, page_size: int = 4096) -> float:
        """Estimated milliseconds for ``seeks`` seeks plus ``pages`` transfers."""
        return seeks * self.seek_ms + pages * self.transfer_ms(page_size)

    def cost_of(self, snap: IOSnapshot, page_size: int = 4096) -> float:
        """Estimated milliseconds for a recorded I/O snapshot or delta."""
        return self.cost_ms(snap.seeks, snap.page_transfers, page_size)

    def seek_equivalent_pages(self, page_size: int = 4096) -> float:
        """How many page transfers one seek costs — the contiguity premium."""
        return self.seek_ms / self.transfer_ms(page_size)


DISK_1992 = DiskGeometry(name="disk-1992", seek_ms=16.0, transfer_ms_per_page=1.33)
MODERN_HDD = DiskGeometry(name="modern-hdd", seek_ms=8.0, transfer_ms_per_page=0.02)
MODERN_SSD = DiskGeometry(name="modern-ssd", seek_ms=0.02, transfer_ms_per_page=0.01)
