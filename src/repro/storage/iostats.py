"""I/O accounting with a disk-head position model.

The paper reasons about operation cost as *seeks* plus *page transfers*:
reading a 6-page range spread over 3 segments costs "3 disk seeks plus
the cost to transfer 6 pages" (Section 4.2).  :class:`IOStats` produces
those numbers mechanically:

* every page transferred (read or written) increments a transfer counter;
* a transfer *run* that does not begin where the head was left after the
  previous run costs one seek.

A contiguous multi-page read issued as a single call is one run: one seek
(at most) plus N transfers.  Reading the same N pages with N single-page
calls is still seek-free *if* they are physically consecutive — the head
model, not the call structure, decides — which matches how a real drive
behaves and keeps comparisons between EOS and the page-at-a-time
baselines honest.

Use :meth:`IOStats.delta` to measure a region of code::

    with stats.delta() as d:
        obj.read(0, 1 << 20)
    print(d.seeks, d.page_reads)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator


def seeks_per_mb(seeks: int, page_transfers: int, page_size: int) -> float:
    """Seeks per MiB transferred — the layout-quality number the paper's
    cost model cares about (0.0 when nothing moved)."""
    transferred = page_transfers * page_size
    if transferred <= 0:
        return 0.0
    return seeks / (transferred / (1 << 20))


@dataclass
class IOSnapshot:
    """Immutable copy of the counters at one instant."""

    seeks: int = 0
    page_reads: int = 0
    page_writes: int = 0
    read_calls: int = 0
    write_calls: int = 0

    @property
    def page_transfers(self) -> int:
        """Total pages moved in either direction."""
        return self.page_reads + self.page_writes

    def seeks_per_mb(self, page_size: int) -> float:
        """Seeks per MiB transferred since the counters were zeroed."""
        return seeks_per_mb(self.seeks, self.page_transfers, page_size)

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            seeks=self.seeks - other.seeks,
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
            read_calls=self.read_calls - other.read_calls,
            write_calls=self.write_calls - other.write_calls,
        )


@dataclass
class IODelta:
    """Mutable view populated when a :meth:`IOStats.delta` block exits."""

    seeks: int = 0
    page_reads: int = 0
    page_writes: int = 0
    read_calls: int = 0
    write_calls: int = 0

    @property
    def page_transfers(self) -> int:
        return self.page_reads + self.page_writes

    def seeks_per_mb(self, page_size: int) -> float:
        """Seeks per MiB transferred inside the measured block."""
        return seeks_per_mb(self.seeks, self.page_transfers, page_size)

    def _fill(self, snap: IOSnapshot) -> None:
        self.seeks = snap.seeks
        self.page_reads = snap.page_reads
        self.page_writes = snap.page_writes
        self.read_calls = snap.read_calls
        self.write_calls = snap.write_calls


@dataclass
class IOStats:
    """Running seek/transfer counters shared by one disk volume."""

    seeks: int = 0
    page_reads: int = 0
    page_writes: int = 0
    read_calls: int = 0
    write_calls: int = 0
    # Physical page the head would be positioned after the last transfer,
    # or None before any I/O (the first access always seeks).
    head: int | None = field(default=None, repr=False)
    # Optional per-transfer hook (an object with ``on_transfer``),
    # installed by repro.obs when observability is enabled.
    observer: object | None = field(default=None, repr=False, compare=False)

    @property
    def page_transfers(self) -> int:
        return self.page_reads + self.page_writes

    def record_read(self, first_page: int, n_pages: int) -> None:
        """Account for a contiguous read of ``n_pages`` starting at ``first_page``."""
        self._record(first_page, n_pages, is_write=False)

    def record_write(self, first_page: int, n_pages: int) -> None:
        """Account for a contiguous write of ``n_pages`` starting at ``first_page``."""
        self._record(first_page, n_pages, is_write=True)

    def _record(self, first_page: int, n_pages: int, *, is_write: bool) -> None:
        if n_pages <= 0:
            return
        seeked = self.head != first_page
        if seeked:
            self.seeks += 1
        self.head = first_page + n_pages
        if is_write:
            self.page_writes += n_pages
            self.write_calls += 1
        else:
            self.page_reads += n_pages
            self.read_calls += 1
        if self.observer is not None:
            self.observer.on_transfer(
                first_page, n_pages, is_write=is_write, seeked=seeked
            )

    def snapshot(self) -> IOSnapshot:
        """An immutable copy of the current counters."""
        return IOSnapshot(
            seeks=self.seeks,
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            read_calls=self.read_calls,
            write_calls=self.write_calls,
        )

    def reset(self) -> None:
        """Zero all counters and forget the head position."""
        self.seeks = 0
        self.page_reads = 0
        self.page_writes = 0
        self.read_calls = 0
        self.write_calls = 0
        self.head = None

    @contextlib.contextmanager
    def delta(self) -> Iterator[IODelta]:
        """Context manager yielding the I/O performed inside the block."""
        before = self.snapshot()
        d = IODelta()
        try:
            yield d
        finally:
            d._fill(self.snapshot() - before)
