"""Volume layout: a header page plus a sequence of buddy segment spaces.

The buddy system of Section 3 "manages a number of large fixed-size disk
sections of physically adjacent pages, called buddy segment spaces".
:class:`Volume` is the layer that carves a raw :class:`DiskVolume` into:

* page 0 — a header recording the layout (so a volume image can be
  re-opened), and
* one or more *space extents*, each consisting of a 1-page directory
  followed by ``capacity`` physically adjacent allocatable pages.

Segment addresses used by the buddy system are *space-local* (0-based
within the allocatable area); :class:`SpaceExtent` converts them to
physical page numbers.  Keeping the two address spaces distinct mirrors
the paper, where the allocation map numbers pages within its own space.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import VolumeLayoutError
from repro.storage.disk import DiskVolume
from repro.storage.page import PageId

_HEADER_MAGIC = b"EOSHDR01"
_HEADER = struct.Struct("<8sIII")  # magic, page_size, n_spaces, space_capacity


@dataclass(frozen=True)
class SpaceExtent:
    """Physical placement of one buddy space on the volume."""

    index: int
    directory_page: PageId
    first_data_page: PageId
    capacity: int  # allocatable pages (space-local addresses 0..capacity-1)

    def to_physical(self, local_page: int) -> PageId:
        """Translate a space-local page address to a physical page number."""
        if local_page < 0 or local_page >= self.capacity:
            raise VolumeLayoutError(
                f"local page {local_page} outside space {self.index} "
                f"(capacity {self.capacity})"
            )
        return self.first_data_page + local_page

    def to_local(self, physical_page: PageId) -> int:
        """Translate a physical page number back to a space-local address."""
        local = physical_page - self.first_data_page
        if local < 0 or local >= self.capacity:
            raise VolumeLayoutError(
                f"physical page {physical_page} is not inside space {self.index}"
            )
        return local


class Volume:
    """A formatted disk: header page + equal-capacity buddy spaces.

    All spaces share one capacity because the paper sizes buddy spaces to
    disk characteristics ("the buddy space size must be carefully matched
    to the physical properties of the disk storage"), which is uniform
    across a volume.
    """

    def __init__(self, disk: DiskVolume, n_spaces: int, space_capacity: int) -> None:
        if n_spaces <= 0:
            raise VolumeLayoutError(f"need at least one buddy space, got {n_spaces}")
        if space_capacity <= 0:
            raise VolumeLayoutError(
                f"space capacity must be positive, got {space_capacity}"
            )
        needed = 1 + n_spaces * (1 + space_capacity)
        if needed > disk.num_pages:
            raise VolumeLayoutError(
                f"layout needs {needed} pages, disk has {disk.num_pages}"
            )
        self.disk = disk
        self.n_spaces = n_spaces
        self.space_capacity = space_capacity
        self.spaces = [
            SpaceExtent(
                index=i,
                directory_page=1 + i * (1 + space_capacity),
                first_data_page=1 + i * (1 + space_capacity) + 1,
                capacity=space_capacity,
            )
            for i in range(n_spaces)
        ]

    # -- formatting ---------------------------------------------------------

    @classmethod
    def format(
        cls, disk: DiskVolume, n_spaces: int, space_capacity: int
    ) -> "Volume":
        """Lay out a fresh volume and write its header page."""
        volume = cls(disk, n_spaces, space_capacity)
        header = bytearray(disk.page_size)
        header[: _HEADER.size] = _HEADER.pack(
            _HEADER_MAGIC, disk.page_size, n_spaces, space_capacity
        )
        disk.write_page(0, header)
        return volume

    @classmethod
    def open(cls, disk: DiskVolume) -> "Volume":
        """Re-open a previously formatted volume from its header page."""
        header = disk.read_page(0)
        magic, page_size, n_spaces, space_capacity = _HEADER.unpack(
            header[: _HEADER.size]
        )
        if magic != _HEADER_MAGIC:
            raise VolumeLayoutError("page 0 does not contain a volume header")
        if page_size != disk.page_size:
            raise VolumeLayoutError(
                f"header page size {page_size} != disk page size {disk.page_size}"
            )
        return cls(disk, n_spaces, space_capacity)

    # -- convenience --------------------------------------------------------

    @property
    def total_data_pages(self) -> int:
        """Allocatable pages across all spaces."""
        return self.n_spaces * self.space_capacity

    def space_of_physical(self, page: PageId) -> SpaceExtent:
        """Find the space extent containing a physical data page."""
        for extent in self.spaces:
            if extent.first_data_page <= page < extent.first_data_page + extent.capacity:
                return extent
        raise VolumeLayoutError(f"physical page {page} is not in any buddy space")
