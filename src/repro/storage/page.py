"""Page primitives.

A *page* is the unit of disk transfer: ``page_size`` bytes.  The paper
also calls pages "blocks"; we use *page* throughout and keep the size
configurable.  Worked examples from the paper use 100-byte pages (to
match Figure 5's arithmetic); the benchmarks use 4096-byte pages.

Pages are addressed by a plain integer :data:`PageId`.  We deliberately
avoid a heavyweight Page class: a page image is just ``bytes`` (read) or
``bytearray`` (being assembled), and the type alias documents intent.
"""

from __future__ import annotations

# A physical page number on a disk volume.  Page 0 is the first page.
PageId = int

# Minimum page size that can hold a buddy-space directory with at least a
# one-byte allocation map (see repro.buddy.directory for the layout).
MIN_PAGE_SIZE = 32


def zero_page(page_size: int) -> bytearray:
    """Return a fresh all-zero page image of ``page_size`` bytes."""
    return bytearray(page_size)


def validate_page_size(page_size: int) -> None:
    """Reject page sizes the directory layout cannot work with."""
    if page_size < MIN_PAGE_SIZE:
        raise ValueError(
            f"page size must be at least {MIN_PAGE_SIZE} bytes, got {page_size}"
        )
