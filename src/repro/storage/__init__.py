"""Simulated disk substrate: pages, volumes, I/O accounting, buffering.

The paper's performance claims are stated in terms of disk-head seeks and
page transfers ("the cost of the operation would be 1 disk seek plus 5
page transfers", Section 4.2).  This package provides a disk simulator
that produces exactly those counts:

* :class:`~repro.storage.disk.DiskVolume` — an array of fixed-size pages
  supporting single-page and contiguous multi-page transfers;
* :class:`~repro.storage.iostats.IOStats` — seek/transfer counters with a
  head-position model (an access that does not continue from the previous
  physical position costs a seek);
* :class:`~repro.storage.geometry.DiskGeometry` — converts counts into
  estimated milliseconds with early-1990s or modern disk constants;
* :class:`~repro.storage.buffer.BufferPool` — an LRU page cache with
  pin/unpin and dirty write-back, used for index and directory pages;
* :class:`~repro.storage.volume.Volume` — carves a disk into a header
  page plus a sequence of buddy segment spaces.
"""

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskVolume
from repro.storage.geometry import (
    DISK_1992,
    MODERN_HDD,
    MODERN_SSD,
    DiskGeometry,
)
from repro.storage.iostats import IOStats
from repro.storage.page import PageId, zero_page
from repro.storage.volume import SpaceExtent, Volume

__all__ = [
    "BufferPool",
    "DiskVolume",
    "DiskGeometry",
    "DISK_1992",
    "MODERN_HDD",
    "MODERN_SSD",
    "IOStats",
    "PageId",
    "zero_page",
    "SpaceExtent",
    "Volume",
]
