"""Multi-day churn that ages a volume (the fragmentation stressor).

EOS's experiments run on fresh volumes; Sears & van Ingen show object
stores degrade as weeks of create/append/delete churn fragment free
space.  :class:`AgingWorkload` simulates that history against one live
database: each :meth:`run_epoch` is a "day" of churn — creates drawn
from a size mix, appends extending survivors, deletes freeing others —
while a utilization band keeps the volume realistically full (deletes
dominate above the band, creates below it).  Everything is driven by a
seeded :class:`random.Random`, so a trajectory is reproducible run to
run and the AGE1 benchmark can gate on deterministic head-model I/O.

The workload goes through the database's thread-safe ``op_*`` entry
points plus :meth:`~repro.api.EOSDatabase.delete_object`, so it runs
unchanged on versioned databases (every mutation publishes a version).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import OutOfSpace


@dataclass(frozen=True)
class SizeMix:
    """A named distribution of object sizes: ``(lo, hi, weight)`` ranges."""

    name: str
    ranges: tuple[tuple[int, int, float], ...]

    def sample(self, rng: random.Random) -> int:
        """Draw one object size (bytes) from the weighted ranges."""
        total = sum(weight for _, _, weight in self.ranges)
        point = rng.random() * total
        for lo, hi, weight in self.ranges:
            point -= weight
            if point <= 0:
                return rng.randint(lo, hi)
        lo, hi, _ = self.ranges[-1]
        return rng.randint(lo, hi)


#: The size mixes the aging experiments run at (bytes).
SIZE_MIXES: dict[str, SizeMix] = {
    "small": SizeMix("small", ((2_000, 30_000, 1.0),)),
    "large": SizeMix("large", ((100_000, 600_000, 1.0),)),
    # The Sears & van Ingen shape: mostly small objects, a heavy tail
    # of large ones holding most of the bytes.
    "mixed": SizeMix(
        "mixed", ((2_000, 30_000, 0.7), (30_000, 200_000, 0.25),
                  (200_000, 600_000, 0.05))
    ),
}


class AgingWorkload:
    """Seeded create/append/delete churn against one database.

    ``target_utilization`` is the center of the band the workload holds
    the volume in (±``band``): :meth:`build` fills a fresh volume up to
    the target, and :meth:`run_epoch` steers each day's action mix so
    the volume stays there while objects turn over.
    """

    def __init__(
        self,
        db,
        *,
        mix: str | SizeMix = "mixed",
        seed: int = 0,
        target_utilization: float = 0.6,
        band: float = 0.08,
        append_fraction: float = 0.3,
        append_chunk: int = 8_192,
    ) -> None:
        self.db = db
        self.mix = SIZE_MIXES[mix] if isinstance(mix, str) else mix
        self.rng = random.Random(seed)
        self.target_utilization = target_utilization
        self.band = band
        self.append_fraction = append_fraction
        self.append_chunk = append_chunk
        self._live: list[int] = []
        self.created = 0
        self.deleted = 0
        self.appended = 0
        self.out_of_space = 0

    # -- state ---------------------------------------------------------------

    def utilization(self) -> float:
        """Allocated fraction of the volume's data pages, right now."""
        total = self.db.volume.total_data_pages
        if not total:
            return 0.0
        return 1.0 - self.db.free_pages() / total

    def live_oids(self) -> list[int]:
        """Objects currently alive, oldest first."""
        return list(self._live)

    # -- actions -------------------------------------------------------------

    def _payload(self, n: int) -> bytes:
        # One repeated byte per object: the storage layer is content-
        # oblivious and O(n) pseudo-random generation would dominate the
        # churn loop at the multi-hundred-KB sizes the mixes draw.
        return bytes([self.rng.randrange(256)]) * n

    def _create(self) -> bool:
        size = self.mix.sample(self.rng)
        try:
            oid = self.db.op_create(self._payload(size), size_hint=size)
        except OutOfSpace:
            self.out_of_space += 1
            return self._delete()
        self._live.append(oid)
        self.created += 1
        return True

    def _delete(self) -> bool:
        if not self._live:
            return False
        oid = self._live.pop(self.rng.randrange(len(self._live)))
        self.db.delete_object(oid)
        self.deleted += 1
        return True

    def _append(self) -> bool:
        if not self._live:
            return False
        oid = self._live[self.rng.randrange(len(self._live))]
        n = self.rng.randint(1, self.append_chunk)
        try:
            self.db.op_append(oid, self._payload(n))
        except OutOfSpace:
            self.out_of_space += 1
            return self._delete()
        self.appended += 1
        return True

    # -- driving -------------------------------------------------------------

    def build(self, *, max_objects: int = 10_000) -> int:
        """Fill a fresh volume with creates up to the utilization target.

        Returns the number of objects created.  This is the "fresh"
        state the aging benchmark scans before any churn.
        """
        before = self.created
        while (
            self.utilization() < self.target_utilization
            and self.created - before < max_objects
        ):
            size = self.mix.sample(self.rng)
            try:
                oid = self.db.op_create(self._payload(size), size_hint=size)
            except OutOfSpace:
                self.out_of_space += 1
                break
            self._live.append(oid)
            self.created += 1
        return self.created - before

    def run_epoch(self, ops: int = 200) -> dict:
        """One simulated day of churn; returns that day's action counts.

        Outside the utilization band the action is forced (delete when
        too full, create when too empty); inside it, creates and deletes
        balance and ``append_fraction`` of operations extend survivors.
        """
        counts = {"create": 0, "append": 0, "delete": 0}
        for _ in range(ops):
            utilization = self.utilization()
            if utilization > self.target_utilization + self.band:
                action = "delete"
            elif utilization < self.target_utilization - self.band:
                action = "create"
            else:
                point = self.rng.random()
                if point < self.append_fraction:
                    action = "append"
                elif point < self.append_fraction + 0.5 * (1 - self.append_fraction):
                    action = "create"
                else:
                    action = "delete"
            did = getattr(self, f"_{action}")()
            if did:
                counts[action] += 1
        return counts
