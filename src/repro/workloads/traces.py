"""Domain-flavoured traces matching the paper's motivating applications."""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.generator import Operation, _payload


def multimedia_playback(
    object_bytes: int,
    frame_bytes: int,
    *,
    rewinds: int = 0,
    seed: int = 0,
) -> Iterator[Operation]:
    """Frame-by-frame playback: sequential frame reads, optionally with a
    few rewinds (the "frame-to-frame accessing of a movie" scenario).

    Sequential throughput is the whole game here: with contiguous
    segments the per-frame cost approaches pure transfer time.
    """
    rng = random.Random(seed)
    n_frames = max(1, object_bytes // frame_bytes)
    frame = 0
    rewound = 0
    while frame < n_frames:
        offset = frame * frame_bytes
        n = min(frame_bytes, object_bytes - offset)
        if n > 0:
            yield Operation("read", offset, n)
        if rewound < rewinds and rng.random() < rewinds / n_frames:
            frame = rng.randrange(frame + 1)
            rewound += 1
        else:
            frame += 1


def document_edit_session(
    object_bytes: int,
    edits: int,
    *,
    locality_bytes: int = 4096,
    edit_bytes: int = 120,
    seed: int = 0,
) -> Iterator[Operation]:
    """An editing session: a cursor wanders, inserting and cutting text
    nearby ("pictures may be annotated and movie spots may be edited").

    Edits cluster around the cursor rather than hitting uniform offsets —
    which is what makes the threshold mechanism shine: damage stays
    localised and page reshuffling repairs it as it happens.
    """
    rng = random.Random(seed)
    size = object_bytes
    cursor = size // 2
    for _ in range(edits):
        cursor += rng.randint(-locality_bytes, locality_bytes)
        cursor = max(0, min(size, cursor))
        if rng.random() < 0.55 or size < edit_bytes * 2:
            n = rng.randint(1, edit_bytes)
            yield Operation("insert", cursor, n, _payload(rng, n))
            size += n
        else:
            n = min(rng.randint(1, edit_bytes), size - cursor)
            if n <= 0:
                continue
            yield Operation("delete", cursor, n)
            size -= n


def list_operations(
    record_bytes: int,
    initial_records: int,
    operations: int,
    *,
    seed: int = 0,
) -> Iterator[Operation]:
    """A long list stored as a large object: fixed-size records inserted
    into and removed from arbitrary positions ("long lists or
    'insertable' arrays")."""
    rng = random.Random(seed)
    records = initial_records
    for _ in range(operations):
        if rng.random() < 0.5 or records < 2:
            index = rng.randrange(records + 1)
            yield Operation(
                "insert", index * record_bytes, record_bytes,
                _payload(rng, record_bytes),
            )
            records += 1
        else:
            index = rng.randrange(records)
            yield Operation("delete", index * record_bytes, record_bytes)
            records -= 1
