"""Workload generators for the experiments.

The paper motivates large objects with three application families
(Section 1): multimedia ("playing digital sound recordings, frame-to-
frame accessing of a movie"), document processing ("pictures may be
annotated and movie spots may be edited"), and long lists / insertable
arrays ("elements may be removed from or new ones inserted at any place
within the list").  Each has a generator here, all seeded and
deterministic.  :mod:`repro.workloads.aging` adds the multi-day churn
harness that fragments a volume for the storage-health experiments.
"""

from repro.workloads.aging import SIZE_MIXES, AgingWorkload, SizeMix
from repro.workloads.generator import (
    Operation,
    append_build,
    random_edits,
    random_reads,
    sequential_scan,
)
from repro.workloads.traces import (
    document_edit_session,
    list_operations,
    multimedia_playback,
)

__all__ = [
    "AgingWorkload",
    "Operation",
    "SIZE_MIXES",
    "SizeMix",
    "append_build",
    "random_edits",
    "random_reads",
    "sequential_scan",
    "document_edit_session",
    "list_operations",
    "multimedia_playback",
]
