"""Primitive operation-trace generators.

Every generator yields :class:`Operation` tuples and is driven by a
seeded :class:`random.Random`, so experiments are reproducible run to
run.  Payload bytes are derived from the seed as well (cheap pseudo-
random patterns — the storage layer is content-oblivious, but tests that
cross-check contents need determinism).
"""

from __future__ import annotations

import random
from typing import Iterator, NamedTuple


class Operation(NamedTuple):
    """One step of a workload trace."""

    kind: str  # append | insert | delete | replace | read
    offset: int
    length: int
    data: bytes = b""


def _payload(rng: random.Random, n: int) -> bytes:
    seed = rng.randrange(256)
    return bytes((i * 31 + seed) % 251 for i in range(n))


def append_build(
    total_bytes: int, chunk_bytes: int, *, seed: int = 0
) -> Iterator[Operation]:
    """Build an object by successive appends (Section 4.1's scenario:
    "smaller (but sizable) chunks of bytes will be successively appended
    at the end of the object")."""
    rng = random.Random(seed)
    position = 0
    while position < total_bytes:
        n = min(chunk_bytes, total_bytes - position)
        yield Operation("append", position, n, _payload(rng, n))
        position += n


def sequential_scan(
    total_bytes: int, chunk_bytes: int, *, seed: int = 0
) -> Iterator[Operation]:
    """Scan the object front to back in chunks ("one would rather
    sequentially scan through the object in smaller portions")."""
    position = 0
    while position < total_bytes:
        n = min(chunk_bytes, total_bytes - position)
        yield Operation("read", position, n)
        position += n


def random_reads(
    object_bytes: int, read_bytes: int, count: int, *, seed: int = 0
) -> Iterator[Operation]:
    """Uniformly random byte-range reads."""
    rng = random.Random(seed)
    for _ in range(count):
        n = min(read_bytes, object_bytes)
        offset = rng.randrange(max(1, object_bytes - n + 1))
        yield Operation("read", offset, n)


def random_edits(
    object_bytes: int,
    count: int,
    *,
    edit_bytes: int = 64,
    insert_fraction: float = 0.5,
    seed: int = 0,
) -> Iterator[Operation]:
    """Uniformly distributed small inserts and deletes.

    This is the Section 4.4 stressor: "a reasonable number of such
    operations evenly distributed over the object will deteriorate the
    physical continuity" — unless the threshold mechanism intervenes.
    The generator tracks the running size so offsets stay valid.
    """
    rng = random.Random(seed)
    size = object_bytes
    for _ in range(count):
        do_insert = rng.random() < insert_fraction or size <= edit_bytes
        if do_insert:
            n = rng.randint(1, edit_bytes)
            offset = rng.randrange(size + 1)
            yield Operation("insert", offset, n, _payload(rng, n))
            size += n
        else:
            n = min(rng.randint(1, edit_bytes), size)
            offset = rng.randrange(size - n + 1)
            yield Operation("delete", offset, n)
            size -= n
