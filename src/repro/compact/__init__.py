"""Heat-guided online compaction (the ROADMAP's anti-aging half).

The measurement layer (:mod:`repro.obs.health`) sees fragmentation;
this package puts the performance back: a cost model picks the objects
whose relocation saves the most foreground I/O
(:mod:`repro.compact.policy`), a relocation engine rewrites them into
contiguous, T-threshold-legal segments with crash-safe swap-then-free
ordering (:mod:`repro.compact.engine`), and a per-shard background
daemon paces the work under foreground load
(:mod:`repro.compact.daemon`).
"""

from repro.compact.daemon import Compactor
from repro.compact.engine import (
    CompactionReport,
    MoveResult,
    compact_pass,
    relocate_object,
)
from repro.compact.policy import (
    BackpressureGuard,
    RateLimiter,
    Victim,
    plan_victims,
)

__all__ = [
    "BackpressureGuard",
    "CompactionReport",
    "Compactor",
    "MoveResult",
    "RateLimiter",
    "Victim",
    "compact_pass",
    "plan_victims",
    "relocate_object",
]
