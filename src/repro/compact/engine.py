"""The relocation engine: rewrite fragmented objects contiguously.

One relocation is a wholesale rewrite of one object into freshly
allocated segments, planned by
:func:`repro.core.reshuffle.plan_segmentation` so every new segment
obeys the T-threshold legality rule (no segment of 0 < pages < T).
The write-first / swap / free-old discipline of the edit paths is kept:
the replacement segments are fully on disk before the tree's leaf range
swaps over, and only then are the old extents freed.

Versioning changes nothing structurally — the relocation body runs
inside :meth:`~repro.versions.manager.VersionManager.mutate`, so the
tree pages it touches are copied (never overwritten), the "frees" of
the old extents are deferred to chain reclamation (snapshot roots stay
byte-identical; CoW-shared pages are copied into the new version, never
moved in place), and the new root commits through the shadow/new-root
path: a crash mid-compaction leaves the previous version intact.

Thread confinement (EOS008): everything here touches the buddy
allocator, the pager, and segment I/O, so on a served database these
functions run on the owning shard's worker — :func:`compact_pass`
receives a ``submit`` callable and routes every substrate-touching step
through it, doing only planning, pacing, and bookkeeping on the calling
thread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.compact.policy import (
    BackpressureGuard,
    RateLimiter,
    plan_evacuation,
    plan_victims,
)
from repro.core.node import Entry
from repro.core.reshuffle import pages_of, plan_segmentation
from repro.core.segio import allocate_and_write
from repro.errors import ObjectNotFound, OutOfSpace
from repro.obs.health import collect_volume_health
from repro.obs.tracer import NULL_OBS

#: Re-check the volume-wide frag index every this many relocations when
#: a ``target_frag`` goal is set (a spaces-only health walk — cheap).
FRAG_CHECK_EVERY = 8

#: Give the foreground this long to drain before an overloaded one-shot
#: pass stops early instead of waiting forever.
MAX_PAUSE_S = 10.0


@dataclass(frozen=True)
class MoveResult:
    """Accounting for one relocated object."""

    oid: int
    pages_read: int
    pages_written: int
    runs_before: int
    runs_after: int
    #: True when exact contiguous allocation failed and the rewrite fell
    #: back to best-effort (``allocate_up_to``) placement.
    fallback: bool

    def to_doc(self) -> dict:
        """JSON-ready document for status sections and span payloads."""
        return {
            "oid": self.oid,
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "runs_before": self.runs_before,
            "runs_after": self.runs_after,
            "fallback": self.fallback,
        }


@dataclass
class CompactionReport:
    """One compaction pass's outcome (the wire/status progress doc)."""

    objects_moved: int = 0
    objects_skipped: int = 0
    pages_moved: int = 0
    pages_read: int = 0
    frag_before: float = 0.0
    frag_after: float = 0.0
    seeks_saved_per_mb: float = 0.0
    throttle_s: float = 0.0
    duration_ms: float = 0.0
    stopped: str = "done"
    #: Buddy space the coalescing phase chose to empty (None = no
    #: evacuation ran, or no space would beat the current largest free
    #: extent).
    evacuated_space: int | None = None
    moves: list = field(default_factory=list)

    @property
    def frag_delta(self) -> float:
        return self.frag_before - self.frag_after

    def to_doc(self, *, top_moves: int = 16) -> dict:
        """JSON-ready pass summary; keeps the ``top_moves`` largest moves."""
        return {
            "objects_moved": self.objects_moved,
            "objects_skipped": self.objects_skipped,
            "pages_moved": self.pages_moved,
            "pages_read": self.pages_read,
            "frag_before": round(self.frag_before, 4),
            "frag_after": round(self.frag_after, 4),
            "frag_delta": round(self.frag_delta, 4),
            "seeks_saved_per_mb": round(self.seeks_saved_per_mb, 3),
            "throttle_s": round(self.throttle_s, 3),
            "duration_ms": round(self.duration_ms, 3),
            "stopped": self.stopped,
            "evacuated_space": self.evacuated_space,
            "moves": [m.to_doc() for m in self.moves[:top_moves]],
        }


def _rewrite_contiguous(obj, *, avoid_space: int | None = None) -> MoveResult:
    """Rewrite ``obj`` into planned contiguous segments; the move body.

    Runs either directly on the handle (unversioned) or inside a
    version unit with the pager/buddy swapped (versioned) — the caller
    owns the handle and the locking.  Exact allocation per planned
    segment keeps non-tail segments spare-free; if the volume cannot
    supply a planned segment contiguously the rewrite falls back to the
    generic best-effort writer, which still coalesces what it can.
    ``avoid_space`` steers every allocation away from the space the
    evacuation pass is emptying.
    """
    size = obj.size()
    runs_before = len(obj.extent_runs())
    if size == 0:
        return MoveResult(getattr(obj, "oid", -1), 0, 0, 0, 0, False)
    data = obj.read_all()
    ps = obj.config.page_size
    fallback = False
    new_entries: list[Entry] = []
    try:
        plan = plan_segmentation(
            size,
            page_size=ps,
            threshold=obj.policy.base,
            max_segment_pages=obj.buddy.max_segment_pages,
        )
        offset = 0
        for seg_bytes in plan:
            pages = pages_of(seg_bytes, ps)
            ref = obj.buddy.allocate(pages, avoid_space=avoid_space)
            obj.segio.write_segment(
                ref.first_page, memoryview(data)[offset : offset + seg_bytes]
            )
            new_entries.append(Entry(seg_bytes, ref.first_page, pages))
            offset += seg_bytes
    except OutOfSpace:
        # No contiguous run of the planned size: release the partial
        # rewrite and take best-effort placement instead.
        for entry in new_entries:
            obj.buddy.free(entry.child, entry.pages)
        fallback = True
        new_entries = [
            Entry(count, ref.first_page, ref.n_pages)
            for ref, count in allocate_and_write(
                obj.segio, obj.buddy, data,
                avoid_space=avoid_space, cleanup_on_fail=True,
            )
        ]
    dropped = obj.tree.replace_leaf_range(0, size, new_entries)
    pages_read = 0
    for entry in dropped:
        pages_read += entry.pages
        obj.buddy.free(entry.child, entry.pages)
    return MoveResult(
        oid=getattr(obj, "oid", -1),
        pages_read=pages_read,
        pages_written=sum(e.pages for e in new_entries),
        runs_before=runs_before,
        runs_after=len(obj.extent_runs()),
        fallback=fallback,
    )


def relocate_object(
    db, oid: int, *, avoid_space: int | None = None
) -> MoveResult:
    """Relocate one object's extents into contiguous segments.

    Takes the database op lock; on a versioned database the rewrite is
    one version unit (EOS010), so snapshots of older versions keep
    reading their original, untouched pages.  Runs on the owning
    shard's worker when the database is served.
    """
    with db.op_lock:
        if db.versions is not None:
            return db.versions.mutate(
                oid, lambda o: _rewrite_contiguous(o, avoid_space=avoid_space)
            )
        obj = db.get_object(oid)
        return _rewrite_contiguous(obj, avoid_space=avoid_space)


def _max_segment_pages(db) -> int:
    """The volume's maximum segment size (probed on the worker)."""
    return db.buddy.max_segment_pages


def _inline_submit(fn, *args, **kwargs):
    return fn(*args, **kwargs)


class _PassDriver:
    """Shared pacing/accounting for the two phases of one pass."""

    def __init__(self, db, submit, report, *, target_frag, max_pages,
                 limiter, guard, metrics):
        self.db = db
        self.submit = submit
        self.report = report
        self.target_frag = target_frag
        self.max_pages = max_pages
        self.limiter = limiter
        self.guard = guard
        self.metrics = metrics
        self._since_check = 0

    def _stop_reason(self) -> str | None:
        report = self.report
        if self.target_frag is not None and report.frag_after <= self.target_frag:
            return "target_frag"
        if self.max_pages is not None and report.pages_moved >= self.max_pages:
            return "max_pages"
        if self.guard is not None:
            waited = 0.0
            reason = self.guard.overloaded()
            while reason is not None and waited < MAX_PAUSE_S:
                time.sleep(0.05)
                waited += 0.05
                reason = self.guard.overloaded()
            report.throttle_s += waited
            if reason is not None:
                return f"backpressure: {reason}"
        return None

    def refresh_frag(self) -> float:
        self.report.frag_after = self.submit(
            collect_volume_health, self.db, max_objects=0
        ).frag_index
        return self.report.frag_after

    def run(self, victims, *, avoid_space: int | None = None) -> str | None:
        """Relocate ``victims`` in order; a stop reason, or None if done."""
        report = self.report
        for victim in victims:
            reason = self._stop_reason()
            if reason is not None:
                return reason
            try:
                move = self.submit(
                    relocate_object, self.db, victim.oid,
                    avoid_space=avoid_space,
                )
            except (ObjectNotFound, OutOfSpace):
                # Deleted underneath us, or no room even best-effort:
                # skip and let a later pass retry what remains.
                report.objects_skipped += 1
                self.metrics.counter("compaction.objects_skipped").inc()
                continue
            report.objects_moved += 1
            report.pages_moved += move.pages_written
            report.pages_read += move.pages_read
            report.seeks_saved_per_mb += victim.seeks_saved_per_mb
            report.moves.append(move)
            self.metrics.counter("compaction.objects_moved").inc()
            self.metrics.counter("compaction.pages_moved").inc(
                move.pages_written
            )
            if self.limiter is not None:
                report.throttle_s += self.limiter.charge(
                    move.pages_read + move.pages_written
                )
            self._since_check += 1
            if self.target_frag is not None and self._since_check >= FRAG_CHECK_EVERY:
                self._since_check = 0
                self.refresh_frag()
        return None


def compact_pass(
    db,
    *,
    submit=None,
    heat=None,
    target_frag: float | None = None,
    max_pages: int | None = None,
    limiter: RateLimiter | None = None,
    guard: BackpressureGuard | None = None,
    max_objects: int | None = None,
    coalesce: bool = True,
    obs=None,
) -> CompactionReport:
    """One cost-model-driven compaction pass over one database.

    ``submit(fn, *args, **kwargs)`` runs substrate-touching steps —
    health walks and relocations — and defaults to calling inline for
    an unserved database; a served database passes the shard's
    ``submit(...).result()`` so every step rides the worker (EOS008).
    Between steps this thread enforces the page budget (``limiter``)
    and yields to foreground pressure (``guard``), pausing up to
    ``MAX_PAUSE_S`` before giving up the pass.

    Two phases: first the scored victims (hot fragmented objects, the
    read-path payback), then — with ``coalesce`` on — one space
    evacuation (:func:`~repro.compact.policy.plan_evacuation`), which
    is what actually rebuilds a large free extent.  Stops when both
    phases finish, the volume-wide frag index reaches ``target_frag``,
    or ``max_pages`` of writes are spent.
    """
    submit = submit or _inline_submit
    obs = obs if obs is not None else NULL_OBS
    report = CompactionReport()
    t0 = time.perf_counter()
    with obs.tracer.span("compaction.run") as span:
        health = submit(collect_volume_health, db, max_objects=max_objects,
                        cow_sharing=False)
        report.frag_before = report.frag_after = health.frag_index
        victims = plan_victims(
            health,
            max_segment_pages=submit(_max_segment_pages, db),
            heat=heat,
        )
        metrics = obs.metrics
        metrics.counter("compaction.runs").inc()
        driver = _PassDriver(
            db, submit, report, target_frag=target_frag, max_pages=max_pages,
            limiter=limiter, guard=guard, metrics=metrics,
        )
        stop = driver.run(victims)
        if stop is None and coalesce:
            # Re-snapshot: the scored phase just moved extents around.
            health = submit(collect_volume_health, db,
                            max_objects=max_objects, cow_sharing=False)
            report.frag_after = health.frag_index
            evac_space, evac_victims = plan_evacuation(health, heat=heat)
            if evac_space is not None:
                report.evacuated_space = evac_space
                stop = driver.run(evac_victims, avoid_space=evac_space)
        report.stopped = stop if stop is not None else "done"
        driver.refresh_frag()
        report.duration_ms = (time.perf_counter() - t0) * 1000.0
        metrics.gauge("compaction.frag_delta").set(round(report.frag_delta, 4))
        span.set(
            objects=report.objects_moved,
            pages=report.pages_moved,
            frag_delta=round(report.frag_delta, 4),
            stopped=report.stopped,
        )
    return report
