"""Victim selection, pacing, and backpressure for online compaction.

The cost model ranks objects by the I/O a relocation would *save*,
weighted by how often the object is actually read:

    score = est_seeks_saved_per_mb x (1 + read_heat)

``est_seeks_saved_per_mb`` is the health collector's measured
``est_seeks_per_mb`` minus the post-compaction ideal (one seek per
maximum-size segment), so an object already laid out contiguously
scores zero and is never touched.  Read heat comes from the
:class:`~repro.obs.health.HeatTracker` the server's request accounting
feeds; a cold object still gets compacted (score floor of its seeks
saved) but a hot fragmented object always goes first.

Ties — and the question of *where* to start — are broken by space
coldness: victims whose home buddy space carries the least heat are
relocated first, so the free extents their old segments leave behind
coalesce in spaces no foreground read depends on.

Pacing is a token bucket over pages (read + written), and the
backpressure guard pauses the compactor outright when the server's
inflight depth or p99 latency says foreground traffic needs the disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.util.bitops import ceil_div

#: Ignore victims saving less than this many seeks/MB — relocating them
#: costs a full rewrite for no measurable scan improvement.
MIN_SEEKS_SAVED_PER_MB = 0.5


@dataclass(frozen=True)
class Victim:
    """One object the cost model wants relocated, with its accounting."""

    oid: int
    score: float
    seeks_saved_per_mb: float
    read_heat: float
    home_space: int
    leaf_pages: int
    runs: int

    def to_doc(self) -> dict:
        """A JSON-ready row (the inspect tool's candidates view)."""
        return {
            "oid": self.oid,
            "score": round(self.score, 3),
            "seeks_saved_per_mb": round(self.seeks_saved_per_mb, 3),
            "read_heat": round(self.read_heat, 3),
            "home_space": self.home_space,
            "leaf_pages": self.leaf_pages,
            "runs": self.runs,
        }


def ideal_runs(leaf_pages: int, max_segment_pages: int) -> int:
    """Disk runs a freshly compacted object of this size needs, at best."""
    if leaf_pages <= 0:
        return 0
    return ceil_div(leaf_pages, max_segment_pages)


def plan_victims(
    health,
    *,
    max_segment_pages: int,
    heat=None,
    min_seeks_saved: float = MIN_SEEKS_SAVED_PER_MB,
) -> list[Victim]:
    """Rank a health snapshot's sampled objects for relocation.

    ``health`` is a :class:`~repro.obs.health.VolumeHealth`; ``heat`` an
    optional :class:`~repro.obs.health.HeatTracker`.  Returns victims
    best-first: descending score, then coldest home space, then oid
    (so a plan over the same snapshot is deterministic).
    """
    temps = heat.snapshot() if heat is not None else {}
    space_heat: dict[int, float] = {}
    scored: list[Victim] = []
    for layout in health.objects:
        read_temp = temps.get(layout.oid, (0.0, 0.0))[0]
        space_heat[layout.home_space] = (
            space_heat.get(layout.home_space, 0.0) + read_temp
        )
        if layout.size_bytes == 0:
            continue
        mib = layout.size_bytes / (1 << 20)
        ideal = ideal_runs(layout.leaf_pages, max_segment_pages)
        saved = layout.est_seeks_per_mb - (ideal / mib if mib else 0.0)
        if saved < min_seeks_saved:
            continue
        scored.append(
            Victim(
                oid=layout.oid,
                score=saved * (1.0 + read_temp),
                seeks_saved_per_mb=saved,
                read_heat=read_temp,
                home_space=layout.home_space,
                leaf_pages=layout.leaf_pages,
                runs=layout.runs,
            )
        )
    scored.sort(
        key=lambda v: (-v.score, space_heat.get(v.home_space, 0.0), v.oid)
    )
    return scored


def plan_evacuation(health, *, heat=None) -> tuple[int | None, list[Victim]]:
    """Pick one buddy space to empty and the objects to move out of it.

    Relocating fragmented objects improves *their* layout but leaves
    free space shattered across spaces; emptying one whole space turns
    its entire capacity into a single free extent.  The pass picks the
    space that is cheapest to evacuate per page of coalesced gain:
    fewest live pages first, weighted by the read heat resting on it
    (coldest spaces first — evacuating them never contends with a
    foreground read burst).

    Returns ``(space_index, victims)``; ``(None, [])`` when no space
    would improve on the volume's current largest free extent, or when
    the snapshot sampled no objects.  Relocations for these victims
    must allocate with ``avoid_space=space_index``.
    """
    if not health.objects or len(health.spaces) <= 1:
        # Nothing sampled, or nowhere for the evacuees to go: a
        # single-space volume cannot evacuate its only space.
        return None, []
    temps = heat.snapshot() if heat is not None else {}
    by_space: dict[int, list] = {}
    space_heat: dict[int, float] = {}
    for layout in health.objects:
        read_temp = temps.get(layout.oid, (0.0, 0.0))[0]
        for index in layout.spaces:
            by_space.setdefault(index, []).append(layout)
            space_heat[index] = space_heat.get(index, 0.0) + read_temp
    current_largest = health.largest_free_extent
    best: tuple[float, int] | None = None
    for space in health.spaces:
        # Emptying this space yields one free extent of its full
        # capacity; skip spaces that cannot beat what we already have.
        if space.capacity <= current_largest:
            continue
        live = space.capacity - space.free_pages
        occupants = by_space.get(space.index, [])
        if live and not occupants:
            # Live pages belong to unsampled objects (or the catalog's
            # metadata); evacuation cannot reach them.
            continue
        cost = live * (1.0 + space_heat.get(space.index, 0.0))
        if best is None or (cost, space.index) < best:
            best = (cost, space.index)
    if best is None:
        return None, []
    index = best[1]
    victims = [
        Victim(
            oid=layout.oid,
            score=0.0,
            seeks_saved_per_mb=0.0,
            read_heat=temps.get(layout.oid, (0.0, 0.0))[0],
            home_space=layout.home_space,
            leaf_pages=layout.leaf_pages,
            runs=layout.runs,
        )
        for layout in sorted(by_space.get(index, []), key=lambda o: o.oid)
    ]
    return index, victims


class RateLimiter:
    """A token bucket over pages: ``charge`` blocks once the budget is spent.

    ``pages_per_s <= 0`` disables pacing entirely (the one-shot CLI
    path).  The bucket holds at most one second of budget, so a long
    idle period cannot bank an arbitrarily large burst.
    """

    def __init__(
        self,
        pages_per_s: float,
        *,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.pages_per_s = pages_per_s
        self._clock = clock
        self._sleep = sleep
        self._tokens = max(pages_per_s, 0.0)
        self._last = clock()
        self.slept_s = 0.0

    def charge(self, pages: int) -> float:
        """Account ``pages`` of compaction I/O; sleep off any overdraft.

        Returns the seconds slept (0.0 when within budget).  A single
        charge larger than one second's budget is allowed — it simply
        sleeps proportionally afterwards, so object size never
        deadlocks the limiter.
        """
        if self.pages_per_s <= 0 or pages <= 0:
            return 0.0
        now = self._clock()
        self._tokens = min(
            self.pages_per_s,
            self._tokens + (now - self._last) * self.pages_per_s,
        )
        self._last = now
        self._tokens -= pages
        if self._tokens >= 0:
            return 0.0
        wait = -self._tokens / self.pages_per_s
        self._sleep(wait)
        self.slept_s += wait
        self._last = self._clock()
        self._tokens = 0.0
        return wait


class BackpressureGuard:
    """Pause compaction when the server's foreground load spikes.

    Two signals, either of which pauses the compactor:

    * **inflight depth** — foreground requests occupying more than
      ``inflight_ratio`` of the server's admission limit means the disk
      already has a queue; background I/O would lengthen it.
    * **p99 latency** — the server's ``server.latency_ms`` p99 rising
      past ``p99_factor`` x the quietest p99 the guard has seen (its
      running baseline, floored at ``min_p99_ms`` so microsecond-fast
      test servers don't trip on noise).

    A guard with no server never pauses (unserved one-shot compaction).
    """

    def __init__(
        self,
        server=None,
        *,
        inflight_ratio: float = 0.5,
        p99_factor: float = 3.0,
        min_p99_ms: float = 5.0,
    ) -> None:
        self.server = server
        self.inflight_ratio = inflight_ratio
        self.p99_factor = p99_factor
        self.min_p99_ms = min_p99_ms
        self._baseline_p99: float | None = None
        self.pauses = 0

    def _p99(self) -> float | None:
        try:
            histogram = self.server.obs.metrics.histogram("server.latency_ms")
            return histogram.percentile(99)
        except (AttributeError, KeyError, TypeError):
            # Stub observability (tests, embedded servers) may lack the
            # metrics registry or the latency histogram entirely.
            return None

    def overloaded(self) -> str | None:
        """The reason compaction should pause right now, or ``None``."""
        server = self.server
        if server is None:
            return None
        inflight = getattr(server, "inflight", 0)
        limit = getattr(server, "max_inflight", 0)
        if limit and inflight > limit * self.inflight_ratio:
            self.pauses += 1
            return f"inflight {inflight}/{limit}"
        p99 = self._p99()
        if p99 is not None and p99 > 0:
            if self._baseline_p99 is None or p99 < self._baseline_p99:
                self._baseline_p99 = p99
            ceiling = max(
                self.min_p99_ms, self._baseline_p99 * self.p99_factor
            )
            if p99 > ceiling:
                self.pauses += 1
                return f"p99 {p99:.1f}ms > {ceiling:.1f}ms"
        return None
