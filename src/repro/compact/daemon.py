"""The background compactor: per-shard, paced, backpressure-aware.

:class:`Compactor` mirrors the :class:`~repro.obs.health.HealthMonitor`
shape — it targets either one unserved database (``db=``, steps run
inline) or a list of shards (``shards=``; every substrate-touching step
is submitted to the shard's own worker, EOS008), ticks on an interval
from a daemon thread, and caches per-shard progress for the COMPACTION
section of :func:`repro.server.expo.status_snapshot`.

Each tick runs one :func:`~repro.compact.engine.compact_pass` per
target, bounded by the pages/sec budget (enforced *between* worker
submissions, so foreground operations interleave freely) and skipped
entirely while the attached :class:`~repro.compact.policy
.BackpressureGuard` reports the server overloaded.  One-shot callers
(``servectl compact`` via the COMPACT opcode) use :meth:`run_once`,
which shares the tick lock so a background tick and an operator command
never compact the same shard concurrently.
"""

from __future__ import annotations

import threading
import time

from repro.compact.engine import compact_pass
from repro.compact.policy import BackpressureGuard, RateLimiter

#: Default seconds between background compaction ticks.
DEFAULT_INTERVAL_S = 30.0

#: Default pages/sec budget (read + written) for background passes.
DEFAULT_BUDGET_PAGES_PER_S = 256.0

#: Default volume frag-index goal: ticks stop early once reached.
DEFAULT_TARGET_FRAG = 0.25


class Compactor:
    """Rate-limited background compaction over one database or shards."""

    def __init__(
        self,
        db=None,
        *,
        shards=None,
        monitor=None,
        server=None,
        interval_s: float = DEFAULT_INTERVAL_S,
        budget_pages_per_s: float = DEFAULT_BUDGET_PAGES_PER_S,
        target_frag: float | None = DEFAULT_TARGET_FRAG,
        max_objects: int | None = None,
        guard: BackpressureGuard | None = None,
        registry=None,
    ) -> None:
        if (db is None) == (shards is None):
            raise ValueError("pass exactly one of db= or shards=")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.db = db
        self.shards = list(shards) if shards is not None else None
        #: Optional HealthMonitor supplying the heat the cost model reads.
        self.monitor = monitor
        self.interval_s = interval_s
        self.budget_pages_per_s = budget_pages_per_s
        self.target_frag = target_frag
        self.max_objects = max_objects
        self.guard = guard if guard is not None else BackpressureGuard(server)
        self.registry = registry
        self.runs = 0
        self.paused_ticks = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._tick_lock = threading.Lock()
        self._state_lock = threading.Lock()
        #: shard index (or -1 for an unserved db) -> cumulative totals.
        self._totals: dict[int, dict] = {}
        self._last_docs: list[dict] = []
        self._last_ts = 0.0

    # -- targets -------------------------------------------------------------

    def _targets(self):
        if self.db is not None:
            return [(None, self.db)]
        return [(shard, shard.db) for shard in self.shards]

    @property
    def heat(self):
        return self.monitor.heat if self.monitor is not None else None

    # -- one tick ------------------------------------------------------------

    def run_once(
        self,
        *,
        target_frag: float | None = None,
        max_pages: int | None = None,
        paced: bool = False,
    ) -> list[dict]:
        """Compact every live target once; returns per-shard progress docs.

        ``paced=False`` (the one-shot operator path) runs unthrottled;
        the background loop passes ``paced=True`` to spend at most one
        interval's worth of the page budget per tick.  Serialized
        against concurrent ticks by the tick lock.
        """
        target = self.target_frag if target_frag is None else target_frag
        with self._tick_lock:
            docs: list[dict] = []
            for shard, db in self._targets():
                doc: dict = {"ts": round(time.time(), 3)}
                key = -1
                if shard is not None:
                    key = shard.index
                    doc["shard"] = shard.index
                    if not shard.alive:
                        doc["error"] = "shard dead"
                        docs.append(doc)
                        continue
                limiter = None
                tick_pages = max_pages
                if paced and self.budget_pages_per_s > 0:
                    limiter = RateLimiter(self.budget_pages_per_s)
                    tick_budget = int(self.budget_pages_per_s * self.interval_s)
                    if tick_pages is None or tick_pages > tick_budget:
                        tick_pages = tick_budget
                submit = None
                if shard is not None:
                    submit = _shard_submit(shard)
                try:
                    report = compact_pass(
                        db,
                        submit=submit,
                        heat=self.heat,
                        target_frag=target,
                        max_pages=tick_pages,
                        limiter=limiter,
                        guard=self.guard,
                        max_objects=self.max_objects,
                        obs=db.obs,
                    )
                    doc.update(report.to_doc())
                    self._account(key, report)
                except Exception as exc:  # one sick target must not stop the tick
                    doc["error"] = f"{exc.__class__.__name__}: {exc}"
                docs.append(doc)
            self.runs += 1
            self._publish()
            with self._state_lock:
                self._last_docs = docs
                self._last_ts = time.time()
            return list(docs)

    def _account(self, key: int, report) -> None:
        with self._state_lock:
            totals = self._totals.setdefault(
                key,
                {
                    "runs": 0,
                    "pages_moved": 0,
                    "objects_moved": 0,
                    "objects_skipped": 0,
                    "frag_index": 0.0,
                    "frag_delta": 0.0,
                },
            )
            totals["runs"] += 1
            totals["pages_moved"] += report.pages_moved
            totals["objects_moved"] += report.objects_moved
            totals["objects_skipped"] += report.objects_skipped
            totals["frag_index"] = round(report.frag_after, 4)
            totals["frag_delta"] = round(
                totals["frag_delta"] + report.frag_delta, 4
            )

    def _publish(self) -> None:
        registry = self.registry
        if registry is None:
            return
        with self._state_lock:
            totals = {k: dict(v) for k, v in self._totals.items()}
        registry.counter("compaction.ticks").inc()
        registry.gauge("compaction.pages_moved_total").set(
            sum(t["pages_moved"] for t in totals.values())
        )
        registry.gauge("compaction.objects_moved_total").set(
            sum(t["objects_moved"] for t in totals.values())
        )

    # -- exposition ----------------------------------------------------------

    def status_doc(self) -> dict:
        """The COMPACTION section for ``status_snapshot``."""
        with self._state_lock:
            per_shard = [
                {"shard": key, **totals}
                for key, totals in sorted(self._totals.items())
                if key >= 0
            ]
            single = self._totals.get(-1)
            doc = {
                "running": self._thread is not None,
                "interval_s": self.interval_s,
                "budget_pages_per_s": self.budget_pages_per_s,
                "target_frag": self.target_frag,
                "runs": self.runs,
                "paused_ticks": self.paused_ticks,
                "backpressure_pauses": self.guard.pauses,
                "ts": round(self._last_ts, 3),
                "last": list(self._last_docs),
            }
            if per_shard:
                doc["per_shard"] = per_shard
            if single is not None:
                doc["totals"] = dict(single)
            return doc

    # -- lifecycle -----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            if self.guard.overloaded() is not None:
                self.paused_ticks += 1
                continue
            self.run_once(paced=True)

    def start(self) -> "Compactor":
        """Start the background tick thread (idempotent); returns self."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="eos-compact", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the tick thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(30.0)
            self._thread = None

    def __enter__(self) -> "Compactor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def _shard_submit(shard):
    """A ``submit(fn, *args)`` that rides the shard's worker (EOS008)."""

    def submit(fn, *args, **kwargs):
        return shard.submit(fn, *args, **kwargs).result()

    return submit
