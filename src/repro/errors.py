"""Exception hierarchy for the EOS reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle anything the storage stack raises.
The sub-hierarchy mirrors the layering of the system: disk-level errors,
buddy-allocator errors, large-object-manager errors, and errors raised by
the baseline stores when an operation exceeds what the original system
supported (e.g. WiSS's ~1.6 MB object cap, System R's lack of partial
updates).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Storage substrate
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for errors raised by the simulated disk substrate."""


class PageOutOfRange(StorageError):
    """A page id fell outside the volume being accessed."""

    def __init__(self, page: int, num_pages: int) -> None:
        super().__init__(f"page {page} out of range (volume has {num_pages} pages)")
        self.page = page
        self.num_pages = num_pages


class PageSizeMismatch(StorageError):
    """A page image did not match the volume's page size."""

    def __init__(self, got: int, expected: int) -> None:
        super().__init__(f"page image is {got} bytes, volume page size is {expected}")
        self.got = got
        self.expected = expected


class BufferPoolError(StorageError):
    """Base class for buffer-pool failures."""


class AllPagesPinned(BufferPoolError):
    """The buffer pool could not evict because every frame is pinned."""


class PageNotPinned(BufferPoolError):
    """An unpin was attempted on a page that is not pinned."""


class VolumeLayoutError(StorageError):
    """A volume could not be laid out with the requested parameters."""


class DatabaseClosed(StorageError):
    """An :class:`~repro.api.EOSDatabase` was used after ``close()``.

    Closing flushes the buffer pool and releases its frames; handles
    manufactured by the database (objects, files) are invalid afterwards.
    """

    def __init__(self, operation: str = "use") -> None:
        super().__init__(
            f"cannot {operation}: this database has been closed "
            "(it was flushed and its buffer pool released)"
        )
        self.operation = operation


# ---------------------------------------------------------------------------
# Buddy system
# ---------------------------------------------------------------------------


class BuddyError(ReproError):
    """Base class for buddy-system errors."""


class OutOfSpace(BuddyError):
    """No buddy space could satisfy an allocation request."""

    def __init__(self, pages: int) -> None:
        super().__init__(f"no free segment of {pages} pages available")
        self.pages = pages


class BadSegment(BuddyError):
    """A segment handed to the allocator is not consistent with the map.

    Raised for double frees, frees of ranges that are not currently
    allocated, or out-of-range segment addresses.
    """


class DirectoryCorrupt(BuddyError):
    """A buddy-space directory page failed to decode."""


class SegmentTooLarge(BuddyError):
    """An allocation request exceeded the maximum segment size."""

    def __init__(self, pages: int, max_pages: int) -> None:
        super().__init__(
            f"requested {pages} pages exceeds the maximum segment size of "
            f"{max_pages} pages"
        )
        self.pages = pages
        self.max_pages = max_pages


# ---------------------------------------------------------------------------
# Large object manager
# ---------------------------------------------------------------------------


class LargeObjectError(ReproError):
    """Base class for large-object-manager errors."""


class ByteRangeError(LargeObjectError):
    """A byte offset or length fell outside the object."""

    def __init__(self, offset: int, length: int, size: int) -> None:
        super().__init__(
            f"byte range [{offset}, {offset + length}) is invalid for an "
            f"object of {size} bytes"
        )
        self.offset = offset
        self.length = length
        self.size = size


class ObjectNotFound(LargeObjectError):
    """An object id did not resolve to a live large object."""


class RootOverflow(LargeObjectError):
    """The root grew past the client-imposed byte limit.

    The paper (Section 4, footnote 3) lets clients restrict the maximum
    size of the root when an object is opened for updates, e.g. when the
    root is embedded in a field of a small object.
    """


class TreeCorrupt(LargeObjectError):
    """A structural invariant of the positional tree was violated."""


class VersionNotFound(LargeObjectError):
    """A requested object version is not (or no longer) in the chain.

    Raised for version numbers that were never committed and for
    versions the reclaimer has already expired out of the retention
    window.
    """

    def __init__(self, oid: int, version: int) -> None:
        super().__init__(f"object {oid} has no live version {version}")
        self.oid = oid
        self.version = version


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


class BaselineError(ReproError):
    """Base class for baseline-store errors."""


class UnsupportedOperation(BaselineError):
    """The original system did not support the requested operation.

    Examples: System R long fields did not support partial reads or
    updates; WiSS objects are capped by the one-page slice directory.
    """


class ObjectTooLarge(BaselineError):
    """The object exceeded the baseline system's maximum size."""

    def __init__(self, size: int, max_size: int, system: str) -> None:
        super().__init__(
            f"{system} supports objects up to {max_size} bytes; got {size}"
        )
        self.size = size
        self.max_size = max_size
        self.system = system


# ---------------------------------------------------------------------------
# Concurrency and recovery
# ---------------------------------------------------------------------------


class ConcurrencyError(ReproError):
    """Base class for locking/latching errors."""


class LockConflict(ConcurrencyError):
    """A lock request conflicted with a lock held by another transaction."""

    def __init__(self, resource: object, holder: object) -> None:
        super().__init__(f"lock on {resource!r} is held by transaction {holder!r}")
        self.resource = resource
        self.holder = holder


class LatchError(ConcurrencyError):
    """A latch was used outside its short-duration protocol."""


class RecoveryError(ReproError):
    """Base class for logging/recovery errors."""


class LogCorrupt(RecoveryError):
    """The write-ahead log failed to decode during recovery."""


class TransactionError(RecoveryError):
    """A transaction was used after commit/abort, or nested improperly."""


# ---------------------------------------------------------------------------
# Analysis: runtime sanitizers
# ---------------------------------------------------------------------------


class SanitizerError(ReproError):
    """Base class for violations reported by the runtime sanitizers.

    Sanitizers (:mod:`repro.analysis`) are opt-in debug checks; these
    errors mean an *invariant* was broken, not that an operation failed.
    """


class PinLeak(SanitizerError):
    """A buffer-pool pin was never released.

    Raised by the pin-leak sanitizer at ``close()`` (or on demand) with
    the origin stack of every pin still outstanding.
    """


class LockOrderViolation(SanitizerError):
    """Two transactions acquired the same locks in opposite orders.

    The lock-order sanitizer builds the acquired-before graph across
    transactions; a cycle means the locking protocol admits a deadlock
    (or, with the try-acquire table, a retry livelock).
    """


class InvariantViolation(SanitizerError):
    """A structural invariant failed a sanitizer's revalidation.

    Raised by the buddy-invariant checker when a directory is internally
    inconsistent right after an alloc/free — the earliest possible
    detection point for allocator corruption.
    """


class ConfinementViolation(SanitizerError):
    """Shard-confined substrate was entered from a foreign thread.

    Raised by the thread-confinement sanitizer
    (``EOS_SANITIZE=confinement``) when a buffer-pool or buddy-manager
    entry point of a shard-owned database runs on any thread other than
    the shard's worker — the runtime twin of lint rule EOS008.
    """


# ---------------------------------------------------------------------------
# Object server
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for errors raised by the object server and its client."""


class ProtocolError(ServerError):
    """A wire frame failed to decode (bad magic, truncated, oversized)."""


class ServerOverloaded(ServerError):
    """The server refused a request under admission control.

    Sent instead of queueing without bound: either the in-flight request
    cap or the write-queue depth was reached.  Clients should back off
    and retry; the connection itself stays usable.
    """


class RequestTimeout(ServerError):
    """A request exceeded the server's per-request time budget."""


class ConnectionClosed(ServerError):
    """The peer went away mid-conversation (half a frame, or EOF)."""


class ShardUnavailable(ServerError):
    """The shard owning the addressed object is not serving.

    A sharded server routes each oid to exactly one shard; when that
    shard's worker is down the request fails fast with this error (and
    a coordinator fan-out such as LIST fails if *any* owning shard is
    down) rather than hanging or silently returning partial state.
    Requests for objects on the surviving shards are unaffected.
    """
