"""Reproduction of Biliris, "An Efficient Database Storage Structure for
Large Dynamic Objects" (ICDE 1992) — the EOS large object manager.

The package is layered exactly as the paper's system is:

* :mod:`repro.storage` — a simulated disk with seek-accurate I/O
  accounting, a buffer pool and volume layout;
* :mod:`repro.buddy` — the binary buddy system (Section 3): byte-encoded
  allocation maps, one-page directories, the superdirectory;
* :mod:`repro.core` — the large object manager (Section 4): variable-size
  segments indexed by a positional B-tree, with append, read, replace,
  insert and delete plus byte/page reshuffling under a segment-size
  threshold;
* :mod:`repro.baselines` — the related systems of Section 2 (Exodus,
  Starburst, WiSS, System R) behind a common interface;
* :mod:`repro.concurrency` / :mod:`repro.recovery` — Section 4.5;
* :mod:`repro.workloads` / :mod:`repro.bench` — experiment support;
* :mod:`repro.obs` — spans, metrics and the ``db.stats`` facade.

Quickstart::

    from repro import EOSDatabase

    with EOSDatabase.create(num_pages=20_000, page_size=4096) as db:
        obj = db.create_object(size_hint=1_000_000)
        obj.append(b"x" * 1_000_000)
        obj.insert(500_000, b"hello")
        data = obj.read(499_995, 15)
"""

from repro.api import EOSDatabase
from repro.core import EOSConfig, LargeObject, ObjectStream
from repro.errors import ReproError
from repro.obs import JsonLinesSink, Observability, RingSink, SummarySink

__version__ = "1.0.0"

__all__ = [
    "EOSDatabase",
    "EOSConfig",
    "JsonLinesSink",
    "LargeObject",
    "ObjectStream",
    "Observability",
    "ReproError",
    "RingSink",
    "SummarySink",
    "__version__",
]
