"""Copy-on-write object versioning with lock-free snapshot reads.

Every committed mutation of a versioned object publishes a brand-new
persistent root page, chained per object as ``(version_no, root_pid,
commit_ts, byte_size)`` records in the page-0 catalog.  Because the
update algorithms never overwrite existing leaf pages (paper
Section 4.5) and :class:`VersionPager` never overwrites existing index
pages either, every published root freezes a complete, immutable tree:
readers traverse it straight from disk without the buffer pool, the
``op_lock``, or the :class:`~repro.concurrency.locks.LockManager` —
byte-range locks shrink to writer-writer conflicts only.

Retention is bounded (:attr:`~repro.core.config.EOSConfig.version_retain`);
a reclaimer frees exactly the pages reachable from an expired version
but from no surviving one.
"""

from repro.versions.manager import (
    VersionManager,
    VersionRecord,
    pack_version_section,
    unpack_version_section,
)
from repro.versions.ops import cow_append, cow_replace
from repro.versions.pager import DeferredFreeBuddy, DiskNodePager, VersionPager

__all__ = [
    "VersionManager",
    "VersionRecord",
    "VersionPager",
    "DeferredFreeBuddy",
    "DiskNodePager",
    "cow_append",
    "cow_replace",
    "pack_version_section",
    "unpack_version_section",
]
