"""Paging machinery for copy-on-write versioning.

Three small adapters make one update operation publish a frozen tree:

* :class:`VersionPager` — a :class:`~repro.recovery.shadow.ShadowPager`
  variant whose commit does **not** overwrite the old root in place.
  It allocates a brand-new page for the edited root, flushes every
  index page the unit wrote, and returns the new root's page id; the
  old tree — root included — stays byte-identical on disk.  Deferred
  frees are *dropped*, not performed: superseded pages stay allocated
  because older versions still reach them (the reclaimer frees them
  when their last version expires).
* :class:`DeferredFreeBuddy` — the data-page counterpart.  Frees of
  pages allocated inside the current unit are real (covers the spare
  trims of :func:`~repro.core.segio.allocate_and_write`); frees of
  pre-existing pages are dropped for the reclaimer, because an older
  version's leaves still live there.
* :class:`DiskNodePager` — a read-only pager that decodes index nodes
  straight from the disk volume, bypassing the buffer pool.  Snapshot
  readers use it from arbitrary threads: published version pages are
  flushed and never rewritten, so no coordination with the (single-
  threaded) pool is needed.
"""

from __future__ import annotations

from repro.core.node import Node
from repro.core.pager import InPlacePager, NodePager
from repro.errors import RecoveryError
from repro.obs.tracer import NULL_OBS, Observability
from repro.storage.page import PageId


class VersionPager(NodePager):
    """Copy-on-write index paging that commits to a *new* root page."""

    def __init__(
        self, base: InPlacePager, *, obs: Observability | None = None
    ) -> None:
        self.base = base
        self.obs = obs if obs is not None else NULL_OBS
        self._active = False
        self._new_pages: set[PageId] = set()
        self._dropped_frees: set[PageId] = set()
        self._pending_root: tuple[PageId, Node] | None = None

    # ------------------------------------------------------------------
    # Unit protocol
    # ------------------------------------------------------------------

    def begin_unit(self) -> None:
        """Start a version unit (one update operation)."""
        if self._active:
            raise RecoveryError("version unit already active")
        self._active = True
        self._new_pages = set()
        self._dropped_frees = set()
        self._pending_root = None

    def commit_unit(self, lsn: int) -> PageId | None:
        """Publish the new tree under a freshly allocated root page.

        Returns the new root's page id, or None when the operation was
        a no-op (nothing was written — e.g. an empty append), in which
        case no new version exists.  Every index page the unit wrote,
        the new root included, is flushed through the buffer pool so
        lock-free disk-direct readers see the full tree.
        """
        if not self._active:
            raise RecoveryError("no version unit to commit")
        if self._pending_root is None:
            if self._new_pages:
                raise RecoveryError(
                    "version unit wrote index pages but never the root"
                )
            self._reset()
            return None
        with self.obs.tracer.span(
            "versions.commit",
            lsn=lsn,
            relocated=len(self._new_pages),
            superseded=len(self._dropped_frees),
        ):
            _, node = self._pending_root
            node.lsn = lsn
            new_root = self.base.allocate()
            self.base.write_new(new_root, node)
            self._new_pages.add(new_root)
            # Disk-direct snapshot readers bypass the pool: make every
            # page of the new version durable before it is published.
            for page in self._new_pages:
                self.base.pool.flush_page(page)
        self._reset()
        return new_root

    def abort_unit(self) -> set[PageId]:
        """Discard the new version; the old tree was never modified."""
        if not self._active:
            raise RecoveryError("no version unit to abort")
        new_pages = set(self._new_pages)
        for page in new_pages:
            self.base.free(page)
        self._reset()
        return new_pages

    def _reset(self) -> None:
        self._active = False
        self._new_pages = set()
        self._dropped_frees = set()
        self._pending_root = None

    @property
    def in_unit(self) -> bool:
        return self._active

    @property
    def superseded_pages(self) -> int:
        """Index pages the unit would have freed (now reclaimer-owned)."""
        return len(self._dropped_frees)

    # ------------------------------------------------------------------
    # NodePager interface
    # ------------------------------------------------------------------

    def read(self, page: PageId) -> Node:
        """Read a node; the pending root is served from memory."""
        if self._pending_root is not None and page == self._pending_root[0]:
            return self._pending_root[1]
        return self.base.read(page)

    def write(self, page: PageId, node: Node) -> PageId:
        if not self._active:
            raise RecoveryError("VersionPager.write outside a unit")
        if page in self._new_pages:
            return self.base.write(page, node)
        relocated = self.base.allocate()
        self.base.write_new(relocated, node)
        self._new_pages.add(relocated)
        self._dropped_frees.add(page)
        self.obs.metrics.counter("versions.relocations").inc()
        return relocated

    def write_new(self, page: PageId, node: Node) -> PageId:
        if self._active:
            self._new_pages.add(page)
        return self.base.write_new(page, node)

    def allocate(self) -> PageId:
        page = self.base.allocate()
        if self._active:
            self._new_pages.add(page)
        return page

    def free(self, page: PageId) -> None:
        """Free immediately if unit-local, else leave to the reclaimer."""
        if not self._active:
            raise RecoveryError("VersionPager.free outside a unit")
        if page in self._new_pages:
            self._new_pages.remove(page)
            self.base.free(page)
        else:
            # An old version still reaches this page; the reclaimer
            # frees it when that version expires.
            self._dropped_frees.add(page)

    def write_root(self, page: PageId, node: Node) -> None:
        if not self._active:
            raise RecoveryError("VersionPager.write_root outside a unit")
        self._pending_root = (page, node)


class DeferredFreeBuddy:
    """Buddy-manager proxy that drops frees of pre-unit data pages.

    Used only inside one version unit, swapped in as the object's
    ``buddy``.  Allocations pass straight through (and are remembered
    as unit-local); a free is honoured only for the unit-local part of
    its range — mixed ranges are split per maximal sub-run — while
    frees of old pages are counted and dropped, since an older
    version's leaves still occupy them.
    """

    def __init__(self, base) -> None:
        self.base = base
        self._unit_pages: set[PageId] = set()
        self.dropped_pages = 0

    @property
    def max_segment_pages(self) -> int:
        return self.base.max_segment_pages

    def allocate(self, n_pages: int, **kwargs):
        """Allocate a segment and remember its pages as unit-local."""
        ref = self.base.allocate(n_pages, **kwargs)
        self._unit_pages.update(range(ref.first_page, ref.end))
        return ref

    def allocate_up_to(self, n_pages: int, **kwargs):
        """Best-effort allocate; pages are remembered as unit-local."""
        ref = self.base.allocate_up_to(n_pages, **kwargs)
        self._unit_pages.update(range(ref.first_page, ref.end))
        return ref

    def free(self, first_page: PageId, n_pages: int) -> None:
        """Free the unit-local sub-runs of the range; drop the rest."""
        run_start: PageId | None = None
        for page in range(first_page, first_page + n_pages):
            if page in self._unit_pages:
                if run_start is None:
                    run_start = page
            else:
                if run_start is not None:
                    self._free_local(run_start, page - run_start)
                    run_start = None
                self.dropped_pages += 1
        if run_start is not None:
            self._free_local(run_start, first_page + n_pages - run_start)

    def free_segment(self, ref) -> None:
        """Free a segment reference through :meth:`free`."""
        self.free(ref.first_page, ref.n_pages)

    def _free_local(self, first_page: PageId, n_pages: int) -> None:
        self._unit_pages.difference_update(
            range(first_page, first_page + n_pages)
        )
        self.base.free(first_page, n_pages)

    def abort(self) -> None:
        """Free every still-live unit-local allocation (failed unit)."""
        for first, count in _runs(self._unit_pages):
            self.base.free(first, count)
        self._unit_pages = set()

    def __getattr__(self, name: str):
        return getattr(self.base, name)


class DiskNodePager(NodePager):
    """Read-only node access straight from the disk volume.

    Snapshot readers use this pager concurrently from many threads; the
    pages of a published version are flushed at commit and never
    rewritten while the version lives, so plain reads need no latching.
    Any write is a bug in the snapshot read path and raises.
    """

    def __init__(self, disk, page_size: int) -> None:
        self.disk = disk
        self.page_size = page_size

    def read(self, page: PageId) -> Node:
        return Node.from_page(self.disk.read_page(page))

    def write(self, page: PageId, node: Node) -> PageId:
        raise RecoveryError("snapshot trees are immutable (write)")

    def write_new(self, page: PageId, node: Node) -> PageId:
        raise RecoveryError("snapshot trees are immutable (write_new)")

    def allocate(self) -> PageId:
        raise RecoveryError("snapshot trees are immutable (allocate)")

    def free(self, page: PageId) -> None:
        raise RecoveryError("snapshot trees are immutable (free)")

    def write_root(self, page: PageId, node: Node) -> None:
        raise RecoveryError("snapshot trees are immutable (write_root)")


def _runs(pages: set[PageId]) -> list[tuple[PageId, int]]:
    """Maximal runs ``(first_page, n_pages)`` of a set of page ids."""
    out: list[tuple[PageId, int]] = []
    start = prev = None
    for page in sorted(pages):
        if prev is not None and page == prev + 1:
            prev = page
            continue
        if start is not None:
            out.append((start, prev - start + 1))
        start = prev = page
    if start is not None:
        out.append((start, prev - start + 1))
    return out
