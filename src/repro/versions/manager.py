"""Version chains, snapshot reads, and the page reclaimer.

:class:`VersionManager` owns one database's per-object version chains:
ascending lists of :class:`VersionRecord` ``(version, root_page,
commit_ts, byte_size)``.  Writers (already serialized under the
database ``op_lock``) publish a record per committed mutation through
:meth:`mutate`; readers resolve any live record and traverse its frozen
tree straight from disk — the only shared state they touch is the
chain table, guarded by one short-hold lock that protects record
resolution and per-version pin counts.

Reclamation is strictly oldest-first.  When a chain exceeds the
retention window and its oldest version is unpinned, that record is
*removed from the chain first* (so no new reader can resolve or pin
it) and only then are its pages freed — exactly the pages reachable
from the expired root but not from the next surviving one.  Pages
never re-enter a newer tree while still allocated, so the difference
sets of successive expiries are disjoint: every page is freed exactly
once (the fsck version-chain check re-proves this offline).

The chains are persisted as a tolerantly-parsed, magic-tagged section
appended to the page-0 catalog; pre-versioning images simply have no
section and load as empty.
"""

from __future__ import annotations

import struct
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.core.search import read_range, read_range_into
from repro.core.segio import SegmentIO
from repro.core.tree import LargeObjectTree
from repro.errors import LargeObjectError, ObjectNotFound, VersionNotFound
from repro.ops import ObjectStat, VersionInfo
from repro.storage.page import PageId
from repro.versions.ops import cow_append
from repro.versions.pager import (
    DeferredFreeBuddy,
    DiskNodePager,
    VersionPager,
    _runs,
)

# Version-chain catalog section: magic, u16 retention bound, u16 chain
# count; per chain a u64 oid + u16 record count; per record u32 version,
# u32 root page, f64 commit timestamp, u64 byte size.
_SECTION_MAGIC = 0x45565231  # "EVR1"
_MAGIC = struct.Struct("<I")
_COUNT = struct.Struct("<H")
_CHAIN_HEAD = struct.Struct("<QH")
_RECORD = struct.Struct("<IIdQ")


@dataclass(frozen=True)
class VersionRecord:
    """One committed version: an immutable root and its metadata."""

    version: int
    root_page: PageId
    commit_ts: float
    byte_size: int

    def info(self) -> VersionInfo:
        """The record as the public :class:`~repro.ops.VersionInfo`."""
        return VersionInfo(self.version, self.byte_size, self.commit_ts)


class VersionManager:
    """Per-object version chains for one :class:`~repro.api.EOSDatabase`."""

    def __init__(self, db) -> None:
        self.db = db
        self.retain = db.config.version_retain
        self._lock = threading.Lock()
        self._chains: dict[int, list[VersionRecord]] = {}
        self._pins: dict[tuple[int, int], int] = {}
        self._snap_pager = DiskNodePager(db.disk, db.config.page_size)
        self._snap_segio = SegmentIO(db.disk, db.config.page_size)

    # ------------------------------------------------------------------
    # Writer side (caller holds the database op_lock)
    # ------------------------------------------------------------------

    def publish_initial(self, oid: int, tree: LargeObjectTree) -> None:
        """Record version 1 of a just-created (or adopted) object."""
        self.db.pool.flush_page(tree.root_page)
        record = VersionRecord(1, tree.root_page, time.time(), tree.size())
        with self._lock:
            self._chains[oid] = [record]
        metrics = self.db.obs.metrics
        metrics.counter("versions.published").inc()
        metrics.gauge("versions.live").set(self._live_count())

    def mutate(self, oid: int, fn):
        """Run one mutation as a version unit and publish its root.

        ``fn(obj)`` executes with the object's tree pager swapped to a
        :class:`VersionPager` and its buddy to a
        :class:`DeferredFreeBuddy`, so index and data pages of older
        versions are never overwritten nor freed.  On success the new
        root is published as the next version and the retention window
        is enforced; on failure every unit-local page is freed and the
        old tree is untouched.
        """
        db = self.db
        obj = db.get_object(oid)
        tree = obj.tree
        unit_pager = VersionPager(db.pager, obs=db.obs)
        unit_buddy = DeferredFreeBuddy(db.buddy)
        saved_pager, saved_buddy = tree.pager, obj.buddy
        tree.pager, obj.buddy = unit_pager, unit_buddy
        unit_pager.begin_unit()
        try:
            result = fn(obj)
        except BaseException:
            unit_pager.abort_unit()
            unit_buddy.abort()
            tree.pager, obj.buddy = saved_pager, saved_buddy
            raise
        with self._lock:
            next_version = self._chains[oid][-1].version + 1
        superseded = unit_pager.superseded_pages
        new_root = unit_pager.commit_unit(lsn=next_version)
        tree.pager, obj.buddy = saved_pager, saved_buddy
        if new_root is None:
            return result
        tree.root_page = new_root
        record = VersionRecord(
            next_version, new_root, time.time(), tree.size()
        )
        with self._lock:
            self._chains[oid].append(record)
        metrics = db.obs.metrics
        metrics.counter("versions.published").inc()
        metrics.counter("versions.deferred_frees").inc(
            superseded + unit_buddy.dropped_pages
        )
        self._reclaim(oid)
        metrics.gauge("versions.live").set(self._live_count())
        return result

    def drop_object(self, oid: int) -> None:
        """Delete the object: free the union of all versions' pages."""
        with self._lock:
            chain = self._chains.get(oid)
            if chain is None:
                raise ObjectNotFound(f"no version chain for oid {oid}")
            if any(self._pins.get((oid, r.version)) for r in chain):
                raise LargeObjectError(
                    f"object {oid} has pinned versions and cannot be deleted"
                )
            del self._chains[oid]
        pages: set[PageId] = set()
        for record in chain:
            pages |= self._page_set(record.root_page)
        self._free_pages(pages)
        self.db.obs.metrics.gauge("versions.live").set(self._live_count())

    # ------------------------------------------------------------------
    # Lock-free reader side (any thread; never takes the op_lock)
    # ------------------------------------------------------------------

    @contextmanager
    def pinned(self, oid: int, version: int | None = None):
        """Resolve a record (None/0 = latest) and pin it for the scope."""
        with self._lock:
            record = self._resolve(oid, version)
            key = (oid, record.version)
            self._pins[key] = self._pins.get(key, 0) + 1
        try:
            yield record
        finally:
            with self._lock:
                remaining = self._pins[key] - 1
                if remaining:
                    self._pins[key] = remaining
                else:
                    del self._pins[key]

    def read(
        self, oid: int, *, offset: int, length: int, version: int | None = None
    ) -> bytes:
        """Read a byte range of one version's immutable tree, lock-free."""
        with self.pinned(oid, version) as record:
            self.db.obs.metrics.counter("versions.snapshot_reads").inc()
            return read_range(
                self._snap_tree(record), self._snap_segio, offset, length
            )

    def read_into(
        self,
        oid: int,
        dest,
        *,
        offset: int,
        length: int,
        version: int | None = None,
    ) -> int:
        """Read a version's byte range straight into ``dest``."""
        with self.pinned(oid, version) as record:
            self.db.obs.metrics.counter("versions.snapshot_reads").inc()
            return read_range_into(
                self._snap_tree(record), self._snap_segio, offset, length, dest
            )

    def stat(self, oid: int, *, version: int | None = None) -> ObjectStat:
        """Space accounting for one version, walked from its frozen tree."""
        with self.pinned(oid, version) as record:
            tree = self._snap_tree(record)
            segments = leaf_pages = 0
            index_pages = 1
            height = tree.height()

            def walk(node) -> None:
                nonlocal segments, leaf_pages, index_pages
                for entry in node.entries:
                    if node.level == 0:
                        segments += 1
                        leaf_pages += entry.pages
                    else:
                        index_pages += 1
                        walk(tree.pager.read(entry.child))

            walk(tree.read_root())
            return ObjectStat(
                size_bytes=record.byte_size,
                segments=segments,
                leaf_pages=leaf_pages,
                index_pages=index_pages,
                height=height,
                root_page=record.root_page,
                version=record.version,
            )

    def size(self, oid: int, *, version: int | None = None) -> int:
        """A version's byte size (its commit-time record; no tree walk)."""
        with self._lock:
            return self._resolve(oid, version).byte_size

    def versions(self, oid: int) -> list[VersionInfo]:
        """The object's live versions, ascending by version number."""
        with self._lock:
            chain = self._chains.get(oid)
            if chain is None:
                raise ObjectNotFound(f"no version chain for oid {oid}")
            return [record.info() for record in chain]

    def latest(self, oid: int) -> VersionRecord:
        """The newest committed record for ``oid``."""
        with self._lock:
            return self._resolve(oid, None)

    def _resolve(self, oid: int, version: int | None) -> VersionRecord:
        chain = self._chains.get(oid)
        if chain is None:
            raise ObjectNotFound(f"no version chain for oid {oid}")
        if not version:  # None or 0: the latest committed version
            return chain[-1]
        for record in chain:
            if record.version == version:
                return record
        raise VersionNotFound(oid, version)

    def sharing_stats(self, oid: int) -> tuple[int, int]:
        """CoW page sharing for one chain: ``(total_refs, distinct_pages)``.

        ``total_refs`` sums every retained version's reachable page set;
        ``distinct_pages`` is the size of their union.  A chain that
        shares nothing has equal numbers; the health collector turns the
        pair into a sharing ratio.  Unknown oids yield ``(0, 0)``.  The
        frozen trees are walked disk-direct through the snapshot pager,
        so no buffer-pool or buddy state is touched.
        """
        with self._lock:
            chain = list(self._chains.get(oid, ()))
        total_refs = 0
        union: set[PageId] = set()
        for record in chain:
            pages = self._page_set(record.root_page)
            total_refs += len(pages)
            union |= pages
        return total_refs, len(union)

    def _snap_tree(self, record: VersionRecord) -> LargeObjectTree:
        return LargeObjectTree(
            self._snap_pager, self.db.config, record.root_page
        )

    # ------------------------------------------------------------------
    # Reclamation
    # ------------------------------------------------------------------

    def _reclaim(self, oid: int) -> None:
        """Expire beyond-retention versions, strictly oldest-first.

        Records are removed from the chain *before* their pages are
        freed: resolution and pinning go through the same lock, so once
        a record is out of the chain no reader can reach its pages.
        """
        victims: list[VersionRecord] = []
        with self._lock:
            chain = self._chains[oid]
            while len(chain) > self.retain:
                oldest = chain[0]
                if self._pins.get((oid, oldest.version)):
                    break  # a reader holds it; retry after the next commit
                victims.append(oldest)
                chain.pop(0)
            if not victims:
                return
            survivor_root = chain[0].root_page
        page_sets = [self._page_set(v.root_page) for v in victims]
        page_sets.append(self._page_set(survivor_root))
        freed = 0
        for current, newer in zip(page_sets, page_sets[1:]):
            dead = current - newer
            freed += len(dead)
            self._free_pages(dead)
        metrics = self.db.obs.metrics
        metrics.counter("versions.reclaimed").inc(len(victims))
        metrics.counter("versions.pages_reclaimed").inc(freed)

    def _page_set(self, root_page: PageId) -> set[PageId]:
        """Every page reachable from a version root (index + full runs).

        Leaf runs count all ``entry.pages`` — spare pages a later trim
        deferred are thereby reclaimed with the version that last
        reached them.
        """
        pages: set[PageId] = set()

        def walk(page: PageId) -> None:
            pages.add(page)
            node = self._snap_pager.read(page)
            for entry in node.entries:
                if node.level == 0:
                    pages.update(range(entry.child, entry.child + entry.pages))
                else:
                    walk(entry.child)

        walk(root_page)
        return pages

    def _free_pages(self, pages: set[PageId]) -> None:
        pool = self.db.pool
        for first, count in _runs(pages):
            for page in range(first, first + count):
                pool.drop(page)
            self.db.buddy.free(first, count)

    def _live_count(self) -> int:
        with self._lock:
            return sum(len(chain) for chain in self._chains.values())

    # ------------------------------------------------------------------
    # Persistence (page-0 catalog section)
    # ------------------------------------------------------------------

    def snapshot_chains(self) -> dict[int, list[VersionRecord]]:
        """A consistent copy of every chain (for the catalog and fsck)."""
        with self._lock:
            return {oid: list(chain) for oid, chain in self._chains.items()}

    def restore(self, chains: dict[int, list[VersionRecord]]) -> None:
        """Replace the chain table (catalog attach path)."""
        with self._lock:
            self._chains = {oid: list(chain) for oid, chain in chains.items()}
        self.db.obs.metrics.gauge("versions.live").set(self._live_count())


def pack_version_section(
    chains: dict[int, list[VersionRecord]], retain: int
) -> bytes:
    """Serialize version chains (and the retention bound) for page 0."""
    out = bytearray(_MAGIC.pack(_SECTION_MAGIC))
    out += _COUNT.pack(retain)
    out += _COUNT.pack(len(chains))
    for oid in sorted(chains):
        chain = chains[oid]
        out += _CHAIN_HEAD.pack(oid, len(chain))
        for r in chain:
            out += _RECORD.pack(r.version, r.root_page, r.commit_ts, r.byte_size)
    return bytes(out)


def unpack_version_section(
    buf: bytes, offset: int
) -> tuple[dict[int, list[VersionRecord]], int | None]:
    """Parse the catalog's version section; tolerant of its absence.

    Returns ``(chains, retain)``.  Pre-versioning images have zeros (or
    nothing) where the section would start; any malformed read yields
    ``({}, None)`` rather than an error, so old volumes attach cleanly.
    A ``retain`` that is not ``None`` marks the image as written by a
    versioning-enabled database — the attach path uses it to turn
    versioning back on with the saved retention bound.
    """
    try:
        (magic,) = _MAGIC.unpack_from(buf, offset)
        if magic != _SECTION_MAGIC:
            return {}, None
        offset += _MAGIC.size
        (retain,) = _COUNT.unpack_from(buf, offset)
        offset += _COUNT.size
        if retain < 1:
            return {}, None
        (n_chains,) = _COUNT.unpack_from(buf, offset)
        offset += _COUNT.size
        chains: dict[int, list[VersionRecord]] = {}
        for _ in range(n_chains):
            oid, n_records = _CHAIN_HEAD.unpack_from(buf, offset)
            offset += _CHAIN_HEAD.size
            chain: list[VersionRecord] = []
            for _ in range(n_records):
                version, root, ts, size = _RECORD.unpack_from(buf, offset)
                offset += _RECORD.size
                chain.append(VersionRecord(version, root, ts, size))
            if chain:
                chains[oid] = chain
        return chains, retain
    except struct.error:
        return {}, None


def initial_append(manager: VersionManager, oid: int, data) -> None:
    """Publish the initial content of a just-created object as v2."""
    manager.mutate(
        oid, lambda obj: cow_append(obj.tree, obj.segio, obj.buddy, data)
    )
