"""Copy-on-write variants of the in-place update executors.

Append and replace are the two paths in :mod:`repro.core` that write
into *existing* leaf pages; under versioning those bytes may still be
live in an older snapshot, so both get CoW variants here:

* :func:`cow_append` never patches the partial tail page and never
  fills tail spare pages — appended bytes land only on freshly
  allocated segments.  A non-tail segment whose last page is partial is
  perfectly legal tree shape (insert and delete produce them all the
  time); the cost is some extra segment fragmentation on small appends.
* :func:`cow_replace` rewrites every segment the replaced range
  overlaps — read the covering span, patch it in memory, write fresh
  exact-size segments, splice them into the leaf level — mirroring
  ``LargeObject.compact()``.  The dropped segments are freed through
  the (deferred-free) buddy, i.e. handed to the reclaimer.

Insert and delete need no variants: they already write new data to
fresh segments only and free (never overwrite) superseded ones, which
the unit's :class:`~repro.versions.pager.DeferredFreeBuddy` defers.
"""

from __future__ import annotations

from repro.core.node import Entry
from repro.core.search import read_range
from repro.core.segio import SegmentIO, allocate_and_write
from repro.core.tree import LargeObjectTree
from repro.errors import ByteRangeError


def cow_append(
    tree: LargeObjectTree,
    segio: SegmentIO,
    buddy,
    data,
) -> None:
    """Append ``data`` without touching any existing page.

    All new bytes go to freshly allocated exact-size segments (no tail
    patch, no spare fill: after a delete the dead bytes of the partial
    tail page can belong to an older version's snapshot).
    """
    if not len(data):
        return
    segments = allocate_and_write(segio, buddy, data)
    tree.append_leaf_entries(
        [Entry(count, ref.first_page, ref.n_pages) for ref, count in segments]
    )


def cow_replace(
    tree: LargeObjectTree,
    segio: SegmentIO,
    buddy,
    offset: int,
    data,
) -> None:
    """Overwrite ``[offset, offset+len)`` by rewriting covering segments.

    The in-place executor (:func:`repro.core.search.replace_range`)
    writes straight into the leaf pages an older version still reads;
    this variant copies the whole covering span to fresh segments with
    the range patched, and splices the leaf level — index relocation
    and old-segment disposal fall out of the unit's pagers.
    """
    view = memoryview(data).cast("B")
    size = tree.size()
    if offset < 0 or len(view) < 0 or offset + len(view) > size:
        raise ByteRangeError(offset, len(view), size)
    if not len(view):
        return
    lo, hi = offset, offset + len(view)
    _, local_lo = tree.descend(lo)
    span_lo = lo - local_lo
    path_hi, local_hi = tree.descend(hi - 1)
    tail_entry = path_hi[-1].node.entries[path_hi[-1].index]
    span_hi = (hi - 1) - local_hi + tail_entry.count

    patched = bytearray(read_range(tree, segio, span_lo, span_hi - span_lo))
    patched[lo - span_lo : hi - span_lo] = view
    segments = allocate_and_write(segio, buddy, patched)
    new_entries = [
        Entry(count, ref.first_page, ref.n_pages) for ref, count in segments
    ]
    for entry in tree.replace_leaf_range(span_lo, span_hi, new_entries):
        buddy.free(entry.child, entry.pages)
