"""The typed object-operation surface: one interface, three backends.

:class:`ObjectOps` is the canonical oid-addressed operation set — the
contract the serving layer dispatches against and the conformance suite
tests once.  Three implementations conform:

* :class:`~repro.api.EOSDatabase` — the in-process database (ops run
  under its ``op_lock``);
* :class:`~repro.server.sharding.Shard` — one shard of a shared-nothing
  server, executing every op on the shard's dedicated worker thread and
  translating between shard-tagged wire oids and the shard database's
  local oids;
* :class:`~repro.server.client.EOSClient` — the remote client, where
  each op is one wire exchange.

Canonical signatures put the payload (``data``/``dest``) positionally
and all geometry — ``offset``, ``length``, ``size_hint`` — keyword-only,
so call sites read unambiguously (``op_write(oid, data, offset=0)``)
and the historical positional orders (which disagreed between methods:
``op_write(oid, offset, data)`` but ``op_read(oid, offset, length)``)
can never be silently transposed again.  The old positional forms keep
working for one release through shims that emit
:class:`DeprecationWarning` (see :func:`legacy_positional`).

:class:`ObjectStat` replaces the loose dict ``op_stat`` used to return:
a frozen dataclass whose field order matches the STAT wire encoding
(:data:`repro.server.protocol._STAT`), with a deprecated ``[...]`` shim
so old dict-style readers keep working during the transition.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import Any, Protocol, cast, runtime_checkable

__all__ = ["ObjectOps", "ObjectStat", "VersionInfo", "legacy_positional"]


@dataclass(frozen=True)
class ObjectStat:
    """One object's space accounting plus its root page.

    Field order matches the STAT response wire struct (u64 size, then
    five u32 counters), so ``pack_stat(stat)`` serializes positionally.
    ``version`` is appended last (with a default) so positional packing
    of the pre-versioning prefix is unchanged; it is 0 on backends that
    do not version objects.
    """

    size_bytes: int
    segments: int
    leaf_pages: int
    index_pages: int
    height: int
    root_page: int
    version: int = 0

    def as_dict(self) -> dict[str, int]:
        """The stat as a plain dict (for JSON documents)."""
        return asdict(self)

    def __getitem__(self, key: str) -> int:
        """Deprecated dict-style access (``stat["size_bytes"]``).

        ``op_stat`` returned a plain dict before the interface was
        extracted; this shim keeps old readers working for one release.
        """
        warnings.warn(
            "dict-style access to op_stat results is deprecated; "
            f"use the ObjectStat attribute (stat.{key})",
            DeprecationWarning,
            stacklevel=2,
        )
        try:
            return cast(int, getattr(self, key))
        except AttributeError:
            raise KeyError(key) from None


@dataclass(frozen=True)
class VersionInfo:
    """One committed version of an object, as listed by ``op_versions``.

    Field order matches the VERSIONS response wire record (u32 version,
    u64 size, f64 timestamp).
    """

    version: int
    size_bytes: int
    commit_ts: float

    def as_dict(self) -> dict[str, int | float]:
        """The version record as a plain dict (for JSON documents)."""
        return asdict(self)


def legacy_positional(
    method: str,
    names: tuple[str, ...],
    args: tuple[object, ...],
    values: tuple[object | None, ...],
) -> list[object | None]:
    """Map pre-interface positional arguments onto keyword-only params.

    ``names`` are the keyword-only parameter names in the *old
    positional order*; ``values`` are their currently-bound values
    (None = not given).  Returns the completed value list, warning that
    the positional form is deprecated.
    """
    if len(args) > len(names):
        raise TypeError(
            f"{method}() takes at most {len(names)} positional "
            f"argument(s) after oid, got {len(args)}"
        )
    warnings.warn(
        f"{method}() positional ({', '.join(names[:len(args)])}) is "
        f"deprecated; pass keyword arguments "
        f"({', '.join(f'{n}=...' for n in names[:len(args)])})",
        DeprecationWarning,
        stacklevel=3,
    )
    out: list[object | None] = list(values)
    for i, value in enumerate(args):
        if out[i] is not None:
            raise TypeError(
                f"{method}() got multiple values for argument {names[i]!r}"
            )
        out[i] = value
    return out


def require(method: str, **kwargs: object) -> None:
    """Raise TypeError for any still-missing required keyword argument."""
    for name, value in kwargs.items():
        if value is None:
            raise TypeError(
                f"{method}() missing required keyword argument: {name!r}"
            )


@runtime_checkable
class ObjectOps(Protocol):
    """The canonical oid-addressed operation set.

    Every method is one whole, atomic operation on one backend;
    ``op_list`` is the only multi-object op (a sharded backend fans it
    out and merges).  Implementations raise from :mod:`repro.errors` —
    notably :class:`~repro.errors.ObjectNotFound` for a dangling oid —
    identically in-process and across the wire.
    """

    def op_create(
        self, data: bytes = b"", *, size_hint: int | None = None
    ) -> int:
        """Create an object (optionally with initial content); its oid."""
        ...

    def op_append(self, oid: int, data: bytes) -> int:
        """Append bytes; the object's new size."""
        ...

    def op_read(
        self,
        oid: int,
        *,
        offset: int,
        length: int,
        version: int | None = None,
    ) -> bytes:
        """Read ``length`` bytes at ``offset``.

        ``version`` selects a committed snapshot on versioned backends
        (None or 0 = latest); versioned backends serve all reads
        lock-free against the immutable version root.
        """
        ...

    def op_read_into(
        self,
        oid: int,
        dest: Any,
        *,
        offset: int,
        length: int,
        version: int | None = None,
    ) -> int:
        """Read ``length`` bytes at ``offset`` into a writable buffer
        (anything exposing a writable buffer protocol); the byte count."""
        ...

    def op_write(self, oid: int, data: bytes, *, offset: int) -> int:
        """Overwrite bytes in place; the (unchanged) size."""
        ...

    def op_insert(self, oid: int, data: bytes, *, offset: int) -> int:
        """Insert bytes at ``offset``; the new size."""
        ...

    def op_delete(self, oid: int, *, offset: int, length: int) -> int:
        """Delete a byte range; the new size."""
        ...

    def op_size(self, oid: int) -> int:
        """The object's size in bytes."""
        ...

    def op_stat(self, oid: int, *, version: int | None = None) -> ObjectStat:
        """Space accounting plus the root page (of the selected version
        on versioned backends; None or 0 = latest)."""
        ...

    def op_versions(self, oid: int) -> list["VersionInfo"]:
        """The object's committed versions, ascending by version number
        (empty on backends that do not version objects)."""
        ...

    def op_list(self) -> list[tuple[int, int]]:
        """Every object as ``(oid, size)``, ascending by oid."""
        ...
