"""Concurrency control: latches and hierarchical segment locks (Section 4.5)."""

from repro.concurrency.latch import Latch
from repro.concurrency.locks import LockManager, LockMode, RangeLock, SegmentLock

__all__ = ["Latch", "LockManager", "LockMode", "RangeLock", "SegmentLock"]
