"""Transaction locks (paper Section 4.5).

Two lock families, exactly the two the paper names:

* **Object locks** — "concurrency can be handled either by locking the
  root of the large object or, for finer granularity, the byte range
  affected by each operation [Care86]."  :meth:`LockManager.acquire_root`
  and :meth:`LockManager.acquire_range` implement both granularities
  with the classic S/X compatibility matrix; two byte-range locks
  conflict only if the ranges overlap.

* **Segment release locks** — freeing buddy segments inside a
  transaction is special because "an update on the allocation status of
  a segment may propagate to its buddies"; the paper adopts [Lehm89]'s
  solution: "when a segment is freed, a (release) lock is placed on the
  segment and an intention (release) lock is placed on all of the
  segment's ancestors.  As in hierarchical locking, segments that are
  descendants of a locked segment are also locked, and thus they remain
  unallocated until the holding transaction releases the locks."
  :meth:`acquire_release_lock` walks the buddy tree (address halving)
  placing IR locks on ancestors; :meth:`segment_blocked` answers whether
  an allocation candidate is still pinned down by an uncommitted free.

Conflicts raise :class:`~repro.errors.LockConflict` immediately (no
blocking) — callers that want to wait retry, as the server's request
scheduler does.  The table itself is thread-safe: every check-then-
record runs under one internal mutex, so concurrent acquirers (server
worker threads, threaded tests) cannot both slip past a conflict check.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.analysis.lockorder import LockOrderSanitizer
from repro.analysis.sanitize import sanitizers_from_env
from repro.errors import LockConflict
from repro.util.bitops import is_power_of_two


class LockMode(enum.Enum):
    S = "shared"
    X = "exclusive"
    RELEASE = "release"            # the freed segment itself
    INTENTION_RELEASE = "i-release"  # its ancestors


def _compatible(held: LockMode, wanted: LockMode) -> bool:
    if held is LockMode.S and wanted is LockMode.S:
        return True
    if LockMode.INTENTION_RELEASE in (held, wanted):
        # IR locks exist to make the path visible; they do not conflict
        # with each other or with other IRs/RELEASEs on the same node —
        # conflicts are decided at the RELEASE-locked segment itself.
        return held is not LockMode.X and wanted is not LockMode.X
    return False


@dataclass(frozen=True)
class RangeLock:
    root_page: int
    lo: int
    hi: int
    mode: LockMode

    def overlaps(self, other: "RangeLock") -> bool:
        """True when both locks cover some common byte of one object."""
        return self.root_page == other.root_page and (
            self.lo < other.hi and other.lo < self.hi
        )


@dataclass(frozen=True)
class SegmentLock:
    start: int
    size: int
    mode: LockMode


def _order_sanitizer_from_env() -> LockOrderSanitizer | None:
    return LockOrderSanitizer() if sanitizers_from_env().locks else None


@dataclass
class LockManager:
    """A lock table keyed by transaction id."""

    range_locks: dict[int, list[RangeLock]] = field(default_factory=dict)
    segment_locks: dict[int, list[SegmentLock]] = field(default_factory=dict)
    acquisitions: int = 0
    _mutex: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    # Acquired-before recorder (see repro.analysis.lockorder); None when
    # the sanitizer is off.
    order_sanitizer: LockOrderSanitizer | None = field(
        default_factory=_order_sanitizer_from_env, repr=False, compare=False
    )

    def attach_order_sanitizer(
        self, mode: str = "raise"
    ) -> LockOrderSanitizer:
        """Enable lock-order recording on this manager."""
        if self.order_sanitizer is None:
            self.order_sanitizer = LockOrderSanitizer(mode)
        return self.order_sanitizer

    # ------------------------------------------------------------------
    # Object locks (root-granularity = whole-range)
    # ------------------------------------------------------------------

    def acquire_root(self, txn_id: int, root_page: int, mode: LockMode) -> None:
        """Lock the whole object (the coarse option the paper mentions)."""
        self.acquire_range(txn_id, root_page, 0, 1 << 62, mode)

    def acquire_range(
        self, txn_id: int, root_page: int, lo: int, hi: int, mode: LockMode
    ) -> None:
        """Take an S/X lock on a byte range; raises LockConflict."""
        if mode not in (LockMode.S, LockMode.X):
            raise ValueError(f"object locks are S or X, got {mode}")
        if lo >= hi:
            hi = lo + 1
        wanted = RangeLock(root_page, lo, hi, mode)
        with self._mutex:
            for other_txn, locks in self.range_locks.items():
                if other_txn == txn_id:
                    continue
                for held in locks:
                    if held.overlaps(wanted) and not _compatible(held.mode, mode):
                        raise LockConflict(wanted, other_txn)
            self.range_locks.setdefault(txn_id, []).append(wanted)
            self.acquisitions += 1
        if self.order_sanitizer is not None:
            # Ordering is a property of the resource (the object), not
            # of each byte range, so all ranges share the object's key.
            self.order_sanitizer.record_acquire(txn_id, ("object", root_page))

    # ------------------------------------------------------------------
    # Segment release locks (the [Lehm89] hierarchy)
    # ------------------------------------------------------------------

    def acquire_release_lock(
        self, txn_id: int, start: int, size: int, max_size: int
    ) -> None:
        """Lock a freed segment and IR-lock its buddy-tree ancestors."""
        if not is_power_of_two(size) or start % size:
            raise ValueError(f"segment ({start}, {size}) is not buddy-aligned")
        with self._mutex:
            mine = self.segment_locks.setdefault(txn_id, [])
            self._check_segment_conflict(txn_id, start, size)
            mine.append(SegmentLock(start, size, LockMode.RELEASE))
            self.acquisitions += 1
            # Ancestors: successively larger enclosing buddy segments.
            parent_size = size * 2
            while parent_size <= max_size:
                parent_start = start - (start % parent_size)
                mine.append(
                    SegmentLock(parent_start, parent_size, LockMode.INTENTION_RELEASE)
                )
                parent_size *= 2
            self.acquisitions += 1
        if self.order_sanitizer is not None:
            # All release locks share one key: the hierarchy is one
            # resource for ordering purposes (IR locks never conflict).
            self.order_sanitizer.record_acquire(txn_id, ("segments",))

    def _check_segment_conflict(self, txn_id: int, start: int, size: int) -> None:
        end = start + size
        for other_txn, locks in self.segment_locks.items():
            if other_txn == txn_id:
                continue
            for held in locks:
                if held.mode is not LockMode.RELEASE:
                    continue
                if held.start < end and start < held.start + held.size:
                    raise LockConflict(SegmentLock(start, size, LockMode.RELEASE), other_txn)

    def segment_blocked(self, txn_id: int, start: int, size: int) -> bool:
        """True if [start, start+size) is pinned by another transaction's
        release lock — "they remain unallocated until the holding
        transaction releases the locks"."""
        end = start + size
        with self._mutex:
            for other_txn, locks in self.segment_locks.items():
                if other_txn == txn_id:
                    continue
                for held in locks:
                    if held.mode is not LockMode.RELEASE:
                        continue
                    # A candidate conflicts if it overlaps the released
                    # segment (descendant or ancestor alike).
                    if held.start < end and start < held.start + held.size:
                        return True
            return False

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------

    def held_by(self, txn_id: int) -> tuple[list[RangeLock], list[SegmentLock]]:
        """The (range, segment) locks a transaction currently holds."""
        with self._mutex:
            return (
                list(self.range_locks.get(txn_id, [])),
                list(self.segment_locks.get(txn_id, [])),
            )

    def release_all(self, txn_id: int) -> None:
        """Drop every lock a transaction holds (commit/abort)."""
        with self._mutex:
            self.range_locks.pop(txn_id, None)
            self.segment_locks.pop(txn_id, None)
        if self.order_sanitizer is not None:
            self.order_sanitizer.record_release_all(txn_id)
