"""Short-duration latches (paper Section 3.3).

"It is enough to hold a short duration lock (also called latch [Moha90])
on the superdirectory during a read or update and release it right after
this operation completes; i.e., the lock does not have to be held until
the end of the transaction."

The reproduction is single-process, like the EOS prototype, so the latch
does not need to block real threads; what it *does* provide is the
protocol — acquire/release pairing enforced, non-reentrancy detected —
plus counters showing how often the hot structure is latched.  A real
deployment would swap in ``threading.Lock`` without changing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LatchError


@dataclass
class Latch:
    """A non-reentrant short-duration latch with acquisition accounting."""

    name: str
    acquisitions: int = 0
    _held: bool = field(default=False, repr=False)

    def acquire(self) -> None:
        """Take the latch; raises if it is already held."""
        if self._held:
            raise LatchError(
                f"latch {self.name!r} acquired while already held "
                f"(latches are short-duration and non-reentrant)"
            )
        self._held = True
        self.acquisitions += 1

    def release(self) -> None:
        """Release the latch; raises if it is not held."""
        if not self._held:
            raise LatchError(f"latch {self.name!r} released while not held")
        self._held = False

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "Latch":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()
