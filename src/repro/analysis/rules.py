"""The six syntactic lint rules, EOS001-EOS006.

The flow-sensitive rules EOS007-EOS010 (borrow escapes, shard
confinement, async blocking, version discipline) live in
:mod:`repro.analysis.flowrules`; they run over the CFG/dataflow layer
instead of per-statement matching.

Each rule here guards one invariant the type system cannot express:

* **EOS001** — every ``BufferPool.fetch``/``fetch_new`` must be paired
  with an ``unpin`` that runs on *all* paths: either the fetch sits
  inside a ``try`` whose ``finally`` unpins, or the very next statement
  is such a ``try``.  Prefer ``pool.page(pid, dirty=...)``, which pairs
  for you.  (Pin leaks surface much later as AllPagesPinned — see the
  pin-leak sanitizer for the dynamic half of this rule.)
* **EOS002** — page I/O is confined to the storage substrate.  Only
  ``storage/``, ``core/pager.py``, ``core/segio.py``,
  ``versions/pager.py`` (the snapshot-read pagers), ``buddy/``,
  ``recovery/``, ``api.py`` (the page-0 catalog) and ``tools/fsck.py``
  may touch ``*.disk.read_page``-style primitives or construct
  ``DiskVolume``/``BufferPool``.  Everyone else goes through the pager,
  the buffer pool or :class:`~repro.core.segio.SegmentIO` — the paper's
  Section 3 premise is that the tree and the buddy directory share one
  page substrate.
* **EOS003** — a broad ``except:``/``except Exception`` handler must
  not silently swallow :mod:`repro.errors` types: it must re-raise,
  inspect the caught exception, or follow a narrower handler for the
  library's errors.
* **EOS004** — a function calling ``LockManager.acquire_*`` must
  guarantee ``release_all`` on exception paths: its own
  ``finally``/handler, a caller's ``finally`` in the same module, or a
  module-level commit/abort protocol that releases.
* **EOS005** — buddy directory state (``counts``, ``amap``, the
  superdirectory ``_super``) is mutated only inside ``buddy/``.  The
  sanitizer in :mod:`repro.analysis.buddycheck` checks the *result*;
  this rule checks the *access path*.
* **EOS006** — no bare ``bytes(...)`` materialization of page-sized
  buffers in the data-path hot modules (``storage/disk.py``,
  ``storage/buffer.py`` and the ``core/`` object-operation modules).
  The zero-copy discipline is that payload moves as ``memoryview``
  slices; the one sanctioned way to hand a caller an owning copy is
  :func:`repro.util.copytrace.materialize`, which keeps the copy
  explicit and accounted.  Zero-fill constructors (``bytes(n)``) and
  literals are not copies and are not flagged.

Every rule is suppressable with ``# eos-lint: disable=EOS00x`` on the
finding's line (file-wide within the first five lines) — see
:mod:`repro.analysis.lintcore`.
"""

from __future__ import annotations

import ast
from typing import Iterator

import repro.errors as _errors_module
from repro.analysis.lintcore import Finding, register_rule

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _ancestors(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> Iterator[ast.AST]:
    while node in parents:
        node = parents[node]
        yield node


def _call_attr(node: ast.AST) -> str | None:
    """The called name for ``x.y.attr(...)`` or ``attr(...)`` calls."""
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _contains_call(node: ast.AST, names: set[str]) -> bool:
    return any(_call_attr(sub) in names for sub in ast.walk(node))


def _statement_of(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> ast.stmt | None:
    """The outermost statement containing ``node`` within its block."""
    current: ast.AST = node
    for parent in _ancestors(node, parents):
        if isinstance(current, ast.stmt) and _block_of(parent, current) is not None:
            return current
        current = parent
    return None


def _block_of(parent: ast.AST, stmt: ast.stmt) -> list[ast.stmt] | None:
    for field in ("body", "orelse", "finalbody"):
        block = getattr(parent, field, None)
        if isinstance(block, list) and stmt in block:
            return block
    if isinstance(parent, ast.Try):
        for handler in parent.handlers:
            if stmt in handler.body:
                return handler.body
    return None


def _enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for ancestor in _ancestors(node, parents):
        if isinstance(ancestor, _FUNCTION_NODES):
            return ancestor
    return None


def _finding(node: ast.AST, message: str) -> Finding:
    return Finding("", "", node.lineno, node.col_offset, message)


# ---------------------------------------------------------------------------
# EOS001 — fetch without a guaranteed unpin
# ---------------------------------------------------------------------------

_PIN_CALLS = {"fetch", "fetch_new"}


@register_rule("EOS001")
def rule_eos001(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """fetch/fetch_new pin without an unpin guaranteed on all paths."""
    if mod == "storage/buffer.py":  # the defining module pairs internally
        return []
    parents = _parents(tree)
    findings = []
    for node in ast.walk(tree):
        if _call_attr(node) not in _PIN_CALLS or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        if _pin_is_guarded(node, parents):
            continue
        findings.append(
            _finding(
                node,
                f"{node.func.attr}() pins a page with no unpin guaranteed on "
                f"all paths; wrap in try/finally or use pool.page(...) / "
                f"pool.put_new(...)",
            )
        )
    return findings


def _pin_is_guarded(call: ast.Call, parents: dict[ast.AST, ast.AST]) -> bool:
    # Form 1: the fetch happens inside a try whose finally unpins.
    stmt: ast.AST = call
    for ancestor in _ancestors(call, parents):
        if (
            isinstance(ancestor, ast.Try)
            and isinstance(stmt, ast.stmt)
            and stmt in ancestor.body
            and any(_contains_call(f, {"unpin"}) for f in ancestor.finalbody)
        ):
            return True
        stmt = ancestor
    # Form 2: `image = pool.fetch(p)` immediately followed by such a try.
    statement = _statement_of(call, parents)
    if statement is None:
        return False
    parent = parents.get(statement)
    block = _block_of(parent, statement) if parent is not None else None
    if block is None:
        return False
    index = block.index(statement)
    if index + 1 < len(block):
        nxt = block[index + 1]
        if isinstance(nxt, ast.Try) and any(
            _contains_call(f, {"unpin"}) for f in nxt.finalbody
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# EOS002 — page I/O outside the storage substrate
# ---------------------------------------------------------------------------

_SUBSTRATE_PREFIXES = ("storage/", "recovery/", "buddy/")
_SUBSTRATE_FILES = {
    "core/pager.py",
    "core/segio.py",
    "versions/pager.py",  # snapshot pagers over immutable flushed pages
    "api.py",        # owns the page-0 catalog region
    "tools/fsck.py",  # validates raw pages by design
}
_DISK_PRIMITIVES = {
    "read_page",
    "write_page",
    "read_pages",
    "write_pages",
    "view_pages",
    "write_pages_v",
}
_SUBSTRATE_TYPES = {"DiskVolume", "BufferPool"}


def _is_substrate(mod: str) -> bool:
    return mod in _SUBSTRATE_FILES or any(
        mod.startswith(prefix) for prefix in _SUBSTRATE_PREFIXES
    )


@register_rule("EOS002")
def rule_eos002(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """direct page I/O or substrate construction outside the storage substrate."""
    if _is_substrate(mod):
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DISK_PRIMITIVES
            and _receiver_is_disk(func.value)
        ):
            findings.append(
                _finding(
                    node,
                    f"direct disk access ({func.attr}) outside the storage "
                    f"substrate; route leaf I/O through SegmentIO and index "
                    f"I/O through the pager/buffer pool",
                )
            )
        elif isinstance(func, ast.Name) and func.id in _SUBSTRATE_TYPES:
            findings.append(
                _finding(
                    node,
                    f"constructing {func.id} outside the storage substrate; "
                    f"only the facade and substrate modules own these",
                )
            )
    return findings


def _receiver_is_disk(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "disk") or (
        isinstance(node, ast.Name) and node.id == "disk"
    )


# ---------------------------------------------------------------------------
# EOS003 — broad except that swallows repro.errors
# ---------------------------------------------------------------------------

_REPRO_ERROR_NAMES = {
    name
    for name, obj in vars(_errors_module).items()
    if isinstance(obj, type) and issubclass(obj, Exception)
}
_BROAD_NAMES = {"Exception", "BaseException"}


def _handler_type_names(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    if node is None:
        return set()
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for element in elements:
        if isinstance(element, ast.Name):
            names.add(element.id)
        elif isinstance(element, ast.Attribute):
            names.add(element.attr)
    return names


@register_rule("EOS003")
def rule_eos003(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """broad except handler that silently swallows repro.errors types."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        repro_handled = False
        for handler in node.handlers:
            names = _handler_type_names(handler)
            is_broad = handler.type is None or (names & _BROAD_NAMES)
            if not is_broad:
                if names & _REPRO_ERROR_NAMES:
                    repro_handled = True
                continue
            if repro_handled:
                continue  # repro errors already routed to a narrower handler
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(handler)):
                continue  # re-raises: nothing is swallowed
            if handler.name is not None and any(
                isinstance(sub, ast.Name) and sub.id == handler.name
                for sub in ast.walk(handler)
            ):
                continue  # the exception is inspected/recorded, not dropped
            what = "bare except:" if handler.type is None else "except Exception"
            findings.append(
                _finding(
                    handler,
                    f"{what} silently swallows repro.errors types; re-raise, "
                    f"record the exception, or catch ReproError explicitly",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# EOS004 — lock acquisition without exception-safe release
# ---------------------------------------------------------------------------

_ACQUIRE_CALLS = {"acquire_root", "acquire_range", "acquire_release_lock"}
_TXN_RELEASE_METHODS = {"commit", "abort", "rollback", "close", "stop", "release"}


@register_rule("EOS004")
def rule_eos004(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """lock acquisition without release_all on exception paths."""
    if mod == "concurrency/locks.py":  # the defining module
        return []
    parents = _parents(tree)
    functions = [n for n in ast.walk(tree) if isinstance(n, _FUNCTION_NODES)]
    # Functions invoked inside a try whose finally calls release_all are
    # covered by their caller (the server's scheduler pattern).
    covered: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Try) and any(
            _contains_call(f, {"release_all"}) for f in node.finalbody
        ):
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    name = _call_attr(sub)
                    if name is not None:
                        covered.add(name)
    # A module whose commit/abort protocol releases covers its acquires
    # (locks are transaction-duration there, by design).
    txn_scoped = any(
        f.name in _TXN_RELEASE_METHODS and _contains_call(f, {"release_all"})
        for f in functions
    )
    findings = []
    for node in ast.walk(tree):
        if _call_attr(node) not in _ACQUIRE_CALLS:
            continue
        function = _enclosing_function(node, parents)
        if function is None:
            continue  # module-level experiments manage locks explicitly
        if txn_scoped or function.name in covered:
            continue
        if _releases_on_exception(function):
            continue
        findings.append(
            _finding(
                node,
                f"{_call_attr(node)}() without release_all() on exception "
                f"paths; release in a finally, or route through a caller "
                f"that does",
            )
        )
    return findings


def _releases_on_exception(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Try):
            blocks = list(node.finalbody) + [h for h in node.handlers]
            if any(_contains_call(b, {"release_all"}) for b in blocks):
                return True
    return False


# ---------------------------------------------------------------------------
# EOS005 — buddy directory state mutated outside buddy/
# ---------------------------------------------------------------------------

_BUDDY_STATE_ATTRS = {"counts", "amap", "_super"}
_AMAP_MUTATORS = {"set_segment", "write_quad_bits", "break_large"}


def _is_buddy_state(node: ast.AST) -> bool:
    """True for ``x.counts``, ``x.amap``, ``x._super`` or a subscript of one."""
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Attribute) and node.attr in _BUDDY_STATE_ATTRS


@register_rule("EOS005")
def rule_eos005(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """buddy directory state (counts/amap/superdirectory) mutated outside buddy/."""
    if mod.startswith("buddy/"):
        return []
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _AMAP_MUTATORS
                and _is_amap_receiver(func.value)
            ):
                findings.append(
                    _finding(
                        node,
                        f"{func.attr}() mutates the buddy allocation map from "
                        f"outside buddy/; go through BuddySpace/BuddyManager",
                    )
                )
            continue
        else:
            continue
        for target in targets:
            if _is_buddy_state(target):
                findings.append(
                    _finding(
                        node,
                        "assignment to buddy directory state (counts/amap/"
                        "superdirectory) outside buddy/; the count array and "
                        "map must only change together, inside the allocator",
                    )
                )
    return findings


def _is_amap_receiver(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "amap") or (
        isinstance(node, ast.Name) and node.id == "amap"
    )


# ---------------------------------------------------------------------------
# EOS006 — bytes() materialization on the data path
# ---------------------------------------------------------------------------

#: Modules whose reads/writes carry whole-object payloads: a stray
#: ``bytes(...)`` here re-copies megabytes per scan.
_HOT_MODULES = {
    "storage/disk.py",
    "storage/buffer.py",
    "core/segio.py",
    "core/search.py",
    "core/stream.py",
    "core/append.py",
    "core/insert.py",
    "core/delete.py",
    "core/reshuffle.py",
    "core/object.py",
}

#: Argument shapes that name an existing buffer (conversion = a copy).
#: ``bytes(Constant)`` and ``bytes(BinOp)`` are zero-fill constructors
#: (``bytes(n_pages * ps - len(data))``), not copies.
_BUFFER_ARG_NODES = (ast.Name, ast.Attribute, ast.Subscript, ast.Call)


@register_rule("EOS006")
def rule_eos006(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """bytes() conversion of a buffer inside a data-path hot module."""
    if mod not in _HOT_MODULES:
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Name) and node.func.id == "bytes"):
            continue
        if len(node.args) != 1 or node.keywords:
            continue
        if not isinstance(node.args[0], _BUFFER_ARG_NODES):
            continue
        findings.append(
            _finding(
                node,
                "bytes(...) materializes a buffer copy on the data path; "
                "pass memoryview slices through, or make the contract copy "
                "explicit with copytrace.materialize()",
            )
        )
    return findings
