"""Forward dataflow solving over :mod:`repro.analysis.cfg` graphs.

Two pieces live here:

* :func:`solve_forward` — a generic worklist solver.  The client
  supplies the lattice implicitly: an entry state, a ``transfer``
  function mapping (node, in-state) to an out-state, and a ``join``
  combining states at merge points.  A transfer may return per-edge
  overrides — ``(default, {successor: state})`` — which is how branch
  tests refine facts along their true/false edges (``CFG.branches``
  names the edges).  States are compared with ``==``; transfers must be
  monotone and the lattice of reachable states finite, which every
  client in this package satisfies (finite sets of AST facts).
* :func:`reaching_definitions` — the classic may-analysis instantiated
  on that solver: for each node, which definition sites can have
  produced the current value of each local name.  Flow rules use it to
  ask "could this name be a shard handle / a borrowed view here".
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Callable, TypeVar, Union

from repro.analysis.cfg import CFG

__all__ = [
    "solve_forward",
    "reaching_definitions",
    "assigned_names",
    "own_expressions",
    "scoped_walk",
    "PARAM_DEF",
]

S = TypeVar("S")
Transfer = Callable[[int, S], Union[S, tuple[S, dict[int, S]]]]
Join = Callable[[S, S], S]

#: Pseudo definition site for function parameters in reaching-defs maps.
PARAM_DEF = -1


def solve_forward(
    cfg: CFG, entry_state: S, transfer: Transfer[S], join: Join[S]
) -> dict[int, S]:
    """Least fixed point of a forward dataflow problem.

    Returns the IN state of every reached node (ENTRY's is the entry
    state; unreachable nodes are absent).  ``transfer`` is only applied
    to real statement nodes, never to ENTRY/EXIT.
    """
    edge_out: dict[tuple[int, int], S] = {}
    in_states: dict[int, S] = {CFG.ENTRY: entry_state}
    work: deque[int] = deque([CFG.ENTRY])
    while work:
        node = work.popleft()
        if node == CFG.ENTRY:
            state = entry_state
        else:
            pred_states = [
                edge_out[(pred, node)]
                for pred in cfg.preds[node]
                if (pred, node) in edge_out
            ]
            if not pred_states:
                continue
            state = pred_states[0]
            for other in pred_states[1:]:
                state = join(state, other)
        in_states[node] = state
        if node in (CFG.ENTRY, CFG.EXIT):
            default: S = state
            overrides: dict[int, S] = {}
        else:
            result = transfer(node, state)
            if isinstance(result, tuple):
                default, overrides = result
            else:
                default, overrides = result, {}
        for succ in cfg.succs[node]:
            new = overrides.get(succ, default)
            if edge_out.get((node, succ)) != new:
                edge_out[(node, succ)] = new
                work.append(succ)
    return in_states


def own_expressions(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions evaluated *at* a statement's own CFG node.

    For compound statements that is just the header (an ``if``'s test,
    a ``for``'s iterable and target, a ``with``'s context managers) —
    the body belongs to other nodes.  Simple statements own their whole
    subtree.  Nested ``def``/``class`` own nothing: their bodies are a
    different scope and their decorators/defaults are rare enough to
    ignore.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [stmt]


def scoped_walk(node: ast.AST) -> list[ast.AST]:
    """Like ``ast.walk`` but does not enter nested def/lambda bodies."""
    out: list[ast.AST] = [node]
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return out
    stack = [node]
    while stack:
        current = stack.pop()
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                out.append(child)  # the binding/value, not the body
                continue
            out.append(child)
            stack.append(child)
    return out


def assigned_names(stmt: ast.stmt) -> list[str]:
    """Local names a statement (re)binds, nested scopes excluded.

    Covers assignment targets, loop targets, ``with ... as``, walrus
    expressions, imports, and the names of nested ``def``/``class``
    statements (the binding, not their bodies).
    """
    names: list[str] = []

    def targets(node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                targets(elt)
        elif isinstance(node, ast.Starred):
            targets(node.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets(item.optional_vars)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(stmt.name)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            names.append(alias.asname or alias.name.split(".")[0])
    # Walrus targets in the statement's own expressions (nested
    # def/lambda bodies are another scope and are not entered).
    for expr in own_expressions(stmt):
        for node in scoped_walk(expr):
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                names.append(node.target.id)
    return names


def reaching_definitions(cfg: CFG) -> dict[int, dict[str, frozenset[int]]]:
    """IN reaching-definitions per node: name -> set of defining nodes.

    Function parameters reach with the pseudo-site :data:`PARAM_DEF`.
    A node id in the set means "the value bound at that statement may
    be the current one"; multiple ids mean a merge.
    """
    args = cfg.function.args
    params = [
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    ]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    entry: dict[str, frozenset[int]] = {
        name: frozenset([PARAM_DEF]) for name in params
    }

    def transfer(
        node: int, state: dict[str, frozenset[int]]
    ) -> dict[str, frozenset[int]]:
        stmt = cfg.stmt_of[node]
        killed = assigned_names(stmt)
        if not killed:
            return state
        new = dict(state)
        for name in killed:
            new[name] = frozenset([node])
        return new

    def join(
        a: dict[str, frozenset[int]], b: dict[str, frozenset[int]]
    ) -> dict[str, frozenset[int]]:
        if a == b:
            return a
        merged = dict(a)
        for name, defs in b.items():
            merged[name] = merged.get(name, frozenset()) | defs
        return merged

    return solve_forward(cfg, entry, transfer, join)
