"""Lock-order recorder: the acquired-before graph and its cycles.

The server's :class:`~repro.concurrency.locks.LockManager` is
try-acquire — a conflict raises and the scheduler retries — so a true
blocking deadlock cannot form.  What *can* form is its moral
equivalent: two transactions that acquire the same resources in
opposite orders will, under load, park each other forever in the retry
loop.  The classic detector for this is the acquired-before graph
[Havender68-style ordering]: every time a transaction that already
holds lock A acquires lock B, add edge A -> B; a cycle in the graph
means the locking protocol admits a deadlock, even if this particular
run got lucky with timing.

The sanitizer keys the graph by *resource*, not by individual lock
(all byte-range locks of one object share the object's key; all
segment release locks share one key), because ordering is a property
of resources.  On detecting a cycle it either raises
:class:`~repro.errors.LockOrderViolation` immediately (``mode="raise"``,
the default — you want the failing acquire's stack) or records it for
later inspection (``mode="record"``).
"""

from __future__ import annotations

import threading
from repro.errors import LockOrderViolation

#: A resource key: hashable, self-describing (e.g. ``("object", 7)``).
Key = tuple[object, ...]


class LockOrderSanitizer:
    """Build the acquired-before graph; detect and report cycles."""

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self._mutex = threading.Lock()
        self._held: dict[int, list[Key]] = {}   # txn -> keys, in order
        self._edges: dict[Key, set[Key]] = {}   # acquired-before edges
        #: Cycles seen so far (each a key path a -> ... -> a).  In
        #: ``raise`` mode the first one also raises.
        self.cycles: list[list[Key]] = []

    # -- recording -----------------------------------------------------------

    def record_acquire(self, txn_id: int, key: Key) -> None:
        """Note that ``txn_id`` acquired ``key``; add held -> key edges."""
        with self._mutex:
            held = self._held.setdefault(txn_id, [])
            if key in held:
                return  # re-acquiring a resource adds no ordering
            new_cycle: list[Key] | None = None
            for prior in held:
                targets = self._edges.setdefault(prior, set())
                if key not in targets:
                    targets.add(key)
                    cycle = self._find_cycle(key, prior)
                    if cycle is not None and new_cycle is None:
                        new_cycle = cycle
            held.append(key)
            if new_cycle is not None:
                self.cycles.append(new_cycle)
        if new_cycle is not None and self.mode == "raise":
            raise LockOrderViolation(self._describe(new_cycle))

    def record_release_all(self, txn_id: int) -> None:
        """The transaction dropped everything; its held list resets.

        The graph keeps its edges — ordering evidence accumulates across
        transactions; that is the entire point.
        """
        with self._mutex:
            self._held.pop(txn_id, None)

    # -- cycle detection -----------------------------------------------------

    def _find_cycle(self, start: Key, target: Key) -> list[Key] | None:
        """DFS from ``start``; a path back to ``target`` closes a cycle
        through the just-added edge ``target -> start``."""
        stack = [(start, [target, start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == target:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt == target:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- reporting -----------------------------------------------------------

    @staticmethod
    def _describe(cycle: list[Key]) -> str:
        chain = " -> ".join(repr(key) for key in cycle)
        return (
            f"lock-order cycle (potential deadlock): {chain}; transactions "
            f"acquire these resources in conflicting orders"
        )

    def edges(self) -> dict[Key, set[Key]]:
        """A copy of the acquired-before graph (for tests/inspection)."""
        with self._mutex:
            return {a: set(bs) for a, bs in self._edges.items()}

    def report(self) -> str:
        """Human-readable summary of recorded cycles ('' when clean)."""
        with self._mutex:
            cycles = list(self.cycles)
        if not cycles:
            return ""
        lines = [f"{len(cycles)} lock-order cycle(s) recorded:"]
        lines.extend(f"  {self._describe(cycle)}" for cycle in cycles)
        return "\n".join(lines)

    def assert_no_cycles(self) -> None:
        """Raise :class:`~repro.errors.LockOrderViolation` on any cycle."""
        report = self.report()
        if report:
            raise LockOrderViolation(report)

    def reset(self) -> None:
        """Forget all held locks, edges and recorded cycles."""
        with self._mutex:
            self._held.clear()
            self._edges.clear()
            self.cycles.clear()
