"""Pin-leak sanitizer for the buffer pool.

A pin without a matching unpin is the slowest-burning bug in the
system: nothing fails at the leak site — the page just becomes
unevictable, and much later some unrelated operation dies with
:class:`~repro.errors.AllPagesPinned` (or ``close()`` refuses to clear
the pool), with no clue where the pin came from.  The sanitizer records
a stack at every pin and pops one at every unpin, so whoever is still
holding pins at ``close()``/teardown is reported *with its origin*.

The lint rule EOS001 catches the statically visible cases; this catches
the rest (pins leaked through dynamic paths the linter cannot prove).
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass

from repro.errors import PinLeak

#: Frames kept per pin origin.  Deep enough to show the operation that
#: pinned (op -> tree -> pager -> pool), shallow enough to stay cheap.
_STACK_LIMIT = 16


@dataclass(frozen=True)
class PinRecord:
    """One outstanding pin: the page and where it was taken."""

    page: int
    origin: str  # formatted stack, innermost call last

    def __str__(self) -> str:
        return f"page {self.page} pinned at:\n{self.origin}"


class PinLeakSanitizer:
    """Track pin origins; report the ones never released.

    Attached to a :class:`~repro.storage.buffer.BufferPool` (see
    :meth:`BufferPool.attach_pin_sanitizer`), which calls
    :meth:`record_pin` / :meth:`record_unpin` from ``fetch`` /
    ``fetch_new`` / ``unpin``.  Thread-safe: the server pins from worker
    threads.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        # page -> origin stacks, one per outstanding pin (LIFO).
        self._pins: dict[int, list[str]] = {}

    # -- recording -----------------------------------------------------------

    def record_pin(self, page: int) -> None:
        """Capture the pinning call stack for ``page``."""
        # Drop the two innermost frames: this method and the pool's
        # fetch/fetch_new — the caller of the pool is the interesting one.
        stack = traceback.extract_stack(limit=_STACK_LIMIT)[:-2]
        origin = "".join(traceback.format_list(stack)).rstrip()
        with self._mutex:
            self._pins.setdefault(page, []).append(origin)

    def record_unpin(self, page: int) -> None:
        """Pop the most recent pin origin for ``page`` (LIFO)."""
        with self._mutex:
            stacks = self._pins.get(page)
            if stacks:
                stacks.pop()
                if not stacks:
                    del self._pins[page]

    # -- reporting -----------------------------------------------------------

    def leaks(self) -> list[PinRecord]:
        """Every outstanding pin, with its origin stack."""
        with self._mutex:
            return [
                PinRecord(page, origin)
                for page, stacks in sorted(self._pins.items())
                for origin in stacks
            ]

    def report(self) -> str:
        """Human-readable leak report (empty string when clean)."""
        leaks = self.leaks()
        if not leaks:
            return ""
        header = f"{len(leaks)} leaked buffer-pool pin(s):"
        return "\n".join([header, *(str(leak) for leak in leaks)])

    def assert_no_leaks(self) -> None:
        """Raise :class:`~repro.errors.PinLeak` if any pin is outstanding.

        Called by ``EOSDatabase.close()`` and usable directly from test
        teardown.
        """
        report = self.report()
        if report:
            raise PinLeak(report)

    def reset(self) -> None:
        """Forget all outstanding pins (after a deliberate pool reset)."""
        with self._mutex:
            self._pins.clear()
