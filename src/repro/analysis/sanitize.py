"""Opt-in gating for the runtime sanitizers.

Sanitizers are debug-mode checks: they cost time (stack capture on
every pin, a directory revalidation on every alloc/free) and therefore
stay off unless asked for.  There are two ways to ask:

* per instance — :class:`~repro.core.config.EOSConfig` carries
  ``sanitize_pins`` / ``sanitize_locks`` / ``sanitize_buddy`` flags,
  honoured by :class:`~repro.api.EOSDatabase`;
* globally — the ``EOS_SANITIZE`` environment variable, honoured by
  every :class:`~repro.storage.buffer.BufferPool`,
  :class:`~repro.concurrency.locks.LockManager` and
  :class:`~repro.buddy.manager.BuddyManager` at construction, so a
  whole test run can be sanitized without touching code::

      EOS_SANITIZE=all pytest ...          # everything
      EOS_SANITIZE=pins,locks pytest ...   # a subset

Accepted values: ``all`` or ``1`` (everything), or a comma-separated
subset of ``pins``, ``locks``, ``buddy``, ``confinement``.  Anything
else is ignored (sanitizers must never break production by typo).

``confinement`` (the thread-confinement sanitizer, see
:mod:`repro.analysis.confine`) is *excluded* from ``all`` on purpose:
a shard claims its substrate for its whole lifetime, and tests
legitimately adopt a database back after stopping a server, so blanket
enablement would flag that teardown pattern rather than a bug.  Ask
for it explicitly: ``EOS_SANITIZE=confinement``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

ENV_VAR = "EOS_SANITIZE"

_KNOWN = frozenset({"pins", "locks", "buddy", "confinement"})


@dataclass(frozen=True)
class SanitizerSettings:
    """Which sanitizers are switched on."""

    pins: bool = False
    locks: bool = False
    buddy: bool = False
    confinement: bool = False

    @property
    def any(self) -> bool:
        return self.pins or self.locks or self.buddy or self.confinement


def sanitizers_from_env(value: str | None = None) -> SanitizerSettings:
    """Parse ``EOS_SANITIZE`` (or an explicit ``value``) into settings.

    Re-read on every call so tests can flip the variable per test; the
    parse is a few string operations, not worth caching.
    """
    if value is None:
        value = os.environ.get(ENV_VAR, "")
    value = value.strip().lower()
    if not value:
        return SanitizerSettings()
    if value in ("all", "1", "true", "yes"):
        # confinement is lifetime-scoped, not request-scoped: see the
        # module docstring for why "all" leaves it off.
        return SanitizerSettings(pins=True, locks=True, buddy=True)
    wanted = {part.strip() for part in value.split(",")} & _KNOWN
    return SanitizerSettings(
        pins="pins" in wanted,
        locks="locks" in wanted,
        buddy="buddy" in wanted,
        confinement="confinement" in wanted,
    )
