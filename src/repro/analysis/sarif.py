"""SARIF 2.1.0 output for the EOS invariant lint.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-hosting UIs ingest — GitHub's code-scanning tab renders a
SARIF upload as inline annotations on the exact flagged lines.  The
renderer here maps the lint's :class:`~repro.analysis.lintcore.Finding`
list onto the minimal conforming document:

* one ``run`` by the ``eos-lint`` driver;
* one ``reportingDescriptor`` per registered rule, described by the
  first line of the rule function's docstring (the same text
  ``--list-rules`` prints);
* one ``result`` per finding, with a 1-based line/column region
  (findings carry 0-based columns, as ``ast`` does).

``python -m repro.tools.lint --format sarif src/`` emits the document;
CI uploads it with ``github/codeql-action/upload-sarif``.
"""

from __future__ import annotations

import json
from pathlib import PurePosixPath

from repro.analysis.lintcore import Finding, Rule, registered_rules

__all__ = ["render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Findings are invariant violations, never style nits.
_LEVEL = "error"


def _rule_descriptor(code: str, rule: Rule) -> dict[str, object]:
    doc = (rule.__doc__ or "").strip().splitlines()
    short = doc[0] if doc else rule.__name__
    return {
        "id": code,
        "name": rule.__name__,
        "shortDescription": {"text": short},
        "defaultConfiguration": {"level": _LEVEL},
    }


def _uri(path: str) -> str:
    # SARIF wants forward slashes regardless of the linting platform.
    return PurePosixPath(*path.replace("\\", "/").split("/")).as_posix()


def _result(finding: Finding, rule_index: dict[str, int]) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVEL,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _uri(finding.path),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        # Finding columns are 0-based (ast convention);
                        # SARIF columns are 1-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    # EOS000 (parse failure) has no registered rule object; every other
    # code resolves to its descriptor index for the viewers that use it.
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    return result


def render_sarif(
    findings: list[Finding], *, rules: dict[str, Rule] | None = None
) -> str:
    """The findings as a SARIF 2.1.0 JSON document (a string)."""
    if rules is None:
        rules = registered_rules()
    ordered = sorted(rules.items())
    rule_index = {code: i for i, (code, _) in enumerate(ordered)}
    document: dict[str, object] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "eos-lint",
                        "rules": [
                            _rule_descriptor(code, rule)
                            for code, rule in ordered
                        ],
                    }
                },
                "results": [
                    _result(finding, rule_index) for finding in findings
                ],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2)
