"""Flow-sensitive invariant lint rules (EOS007-EOS010).

These rules run on the CFG/dataflow layer (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`) plus one-level module summaries
(:mod:`repro.analysis.summaries`).  They complement the per-statement
rules in :mod:`repro.analysis.rules`:

EOS007  A borrowed zero-copy buffer (``memoryview`` from
        ``view_pages``/``view_run``, a pinned image from
        ``fetch``/``fetch_new`` or ``pool.page(...)``) escapes its
        borrow scope: stored into ``self.*``/a module global, returned
        after its ``unpin``/outside its ``with`` scope, or captured by
        a closure handed to another thread or executor.
EOS008  Shard-owned substrate (``pool``/``buddy``/``volume``/``disk``/
        ``pager``/``segio`` and the shard's ``locks``) reached from
        server code outside the shard's worker thread.  Work submitted
        via ``shard.submit(...)`` runs *on* the worker and is
        sanctioned; the snapshot-read pagers never touch these.
EOS009  A blocking call (disk page I/O, ``LockManager.acquire_*``,
        ``time.sleep``, ``open``, flight-recorder dumps, pool flushes)
        directly in an ``async def`` body of server code, including one
        module-local call away, without an executor hop.
EOS010  A ``LargeObject`` mutation (``append``/``insert``/``delete``/
        ``replace``/``destroy``) on a path where ``versions`` may be
        enabled, outside a ``VersionManager.mutate(...)`` unit.

Precision trades (documented in ``docs/INTERNALS.md``): unknown calls
launder borrows, cross-module calls are opaque, and EOS008/EOS010 only
apply to the modules that can actually hold shard handles or the
versioning switch.  Extra paths in the CFG only make the rules more
conservative, never less.
"""

from __future__ import annotations

import ast
from typing import Callable

from repro.analysis.cfg import CFG, FunctionNode, build_cfg
from repro.analysis.dataflow import (
    PARAM_DEF,
    own_expressions,
    reaching_definitions,
    scoped_walk,
    solve_forward,
)
from repro.analysis.lintcore import Finding, register_rule
from repro.analysis.summaries import (
    BORROW_VIEW_SOURCES,
    SUBSTRATE_ATTRS,
    ModuleSummaries,
    blocking_reason,
    summarize_module,
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

BorrowFact = tuple[str, int | None, bool]  # (kind, with-origin node, dead)
BorrowState = dict[str, frozenset[BorrowFact]]
BorrowTransfer = Callable[[int, BorrowState], BorrowState]

_PIN_SOURCES = frozenset({"fetch", "fetch_new"})
_WITH_SOURCES = frozenset({"page", "pinned"})
_VIEW_PROPAGATORS = frozenset({"cast", "toreadonly"})
_WEAK_APPENDS = frozenset({"append", "add", "appendleft"})
_THREAD_SINKS = frozenset(
    {
        "submit",
        "run_in_executor",
        "to_thread",
        "Thread",
        "call_soon_threadsafe",
        "run_coroutine_threadsafe",
        "apply_async",
    }
)

#: Modules allowed to return a still-alive borrow: the zero-copy data
#: path hands views up the stack by design (EOS006 polices the copies).
_BORROW_RETURN_OK_PREFIXES = ("storage/",)
_BORROW_RETURN_OK_FILES = frozenset({"core/segio.py", "versions/pager.py"})
#: The pool itself manufactures and retires borrows; its internal frame
#: bookkeeping is the thing every other module borrows *from*.
_EOS007_EXEMPT = frozenset({"storage/buffer.py"})


def _finding(node: ast.AST, message: str) -> Finding:
    return Finding(
        rule="",
        path="",
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _functions(tree: ast.AST) -> list[FunctionNode]:
    return [
        node for node in ast.walk(tree) if isinstance(node, _FUNCTION_NODES)
    ]


def _module_globals(tree: ast.AST) -> frozenset[str]:
    names: set[str] = set()
    for stmt in getattr(tree, "body", []):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return frozenset(names)


def _node_calls(stmt: ast.stmt) -> list[ast.Call]:
    """Calls evaluated at this statement's own CFG node."""
    out: list[ast.Call] = []
    for expr in own_expressions(stmt):
        for node in scoped_walk(expr):
            if isinstance(node, ast.Call):
                out.append(node)
    return out


def _call_attr(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


# ---------------------------------------------------------------------------
# EOS007 — borrowed-view escape
# ---------------------------------------------------------------------------


def _borrows(
    expr: ast.AST, state: BorrowState, summaries: ModuleSummaries
) -> frozenset[BorrowFact]:
    """Which borrow facts the value of this expression may carry."""
    empty: frozenset[BorrowFact] = frozenset()
    if isinstance(expr, ast.Name):
        return state.get(expr.id, empty)
    if isinstance(expr, (ast.Starred, ast.Await, ast.NamedExpr)):
        return _borrows(expr.value, state, summaries)
    if isinstance(expr, ast.Subscript):
        return _borrows(expr.value, state, summaries)
    if isinstance(expr, ast.Call):
        attr = _call_attr(expr)
        name = _call_name(expr)
        if attr in BORROW_VIEW_SOURCES:
            return frozenset({("view", None, False)})
        if attr in _PIN_SOURCES:
            return frozenset({("pin", None, False)})
        if attr in _VIEW_PROPAGATORS and isinstance(expr.func, ast.Attribute):
            return _borrows(expr.func.value, state, summaries)
        if name == "memoryview" and expr.args:
            return _borrows(expr.args[0], state, summaries)
        for called in (attr, name):
            if called is not None and summaries.returns_borrowed(called):
                return frozenset({("view", None, False)})
        # Every other call launders: bytes()/bytearray()/b"".join()/
        # materialize() genuinely copy, and unknown calls are assumed
        # to as well (precision trade).
        return empty
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        facts = empty
        for elt in expr.elts:
            facts |= _borrows(elt, state, summaries)
        return facts
    if isinstance(expr, ast.IfExp):
        return _borrows(expr.body, state, summaries) | _borrows(
            expr.orelse, state, summaries
        )
    if isinstance(expr, ast.BoolOp):
        facts = empty
        for value in expr.values:
            facts |= _borrows(value, state, summaries)
        return facts
    return empty


def _assign_parts(stmt: ast.stmt) -> tuple[list[ast.expr], ast.expr] | None:
    if isinstance(stmt, ast.Assign):
        return stmt.targets, stmt.value
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target], stmt.value
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target], stmt.value
    return None


def _kill_pins(state: BorrowState) -> BorrowState:
    """Mark every pinned-image fact dead (an unpin just ran)."""
    new: BorrowState = {}
    for var, facts in state.items():
        new[var] = frozenset(
            (kind, origin, True) if kind == "pin" else (kind, origin, dead)
            for (kind, origin, dead) in facts
        )
    return new


def _store_target_names(target: ast.expr) -> list[str]:
    return [
        node.id
        for node in ast.walk(target)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
    ]


def _borrow_transfer(
    cfg: CFG, summaries: ModuleSummaries
) -> BorrowTransfer:
    def transfer(node: int, state: BorrowState) -> BorrowState:
        stmt = cfg.stmt_of[node]
        new = dict(state)
        # unpin retires the pinned image (receiver-insensitive: one
        # statement unpinning *anything* marks pinned borrows dead).
        if any(_call_attr(call) == "unpin" for call in _node_calls(stmt)):
            new = dict(_kill_pins(new))
        parts = _assign_parts(stmt)
        if parts is not None:
            targets, value = parts
            facts = _borrows(value, state, summaries)
            weak = isinstance(stmt, ast.AugAssign)
            for target in targets:
                for name in _store_target_names(target):
                    if weak:
                        new[name] = new.get(name, frozenset()) | facts
                    else:
                        new[name] = facts
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = item.context_expr
                if (
                    isinstance(ctx, ast.Call)
                    and _call_attr(ctx) in _WITH_SOURCES
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    new[item.optional_vars.id] = frozenset(
                        {("pin", node, False)}
                    )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            facts = _borrows(stmt.iter, state, summaries)
            for name in _store_target_names(stmt.target):
                new[name] = facts
        # container.append(view) propagates the borrow into the
        # container (weak update: the container keeps older facts too).
        for call in _node_calls(stmt):
            if (
                _call_attr(call) in _WEAK_APPENDS
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.args
            ):
                receiver = call.func.value.id
                facts = frozenset()
                for arg in call.args:
                    facts |= _borrows(arg, state, summaries)
                if facts:
                    new[receiver] = new.get(receiver, frozenset()) | facts
        return new

    return transfer


def _join_borrows(a: BorrowState, b: BorrowState) -> BorrowState:
    if a == b:
        return a
    merged = dict(a)
    for name, facts in b.items():
        merged[name] = merged.get(name, frozenset()) | facts
    return merged


def _free_loads(func: ast.AST) -> set[str]:
    """Names a lambda/nested def reads from the enclosing scope."""
    if isinstance(func, ast.Lambda):
        body: list[ast.AST] = [func.body]
        args = func.args
    elif isinstance(func, _FUNCTION_NODES):
        body = list(func.body)
        args = func.args
    else:
        return set()
    bound = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    loads: set[str] = set()
    for part in body:
        for node in scoped_walk(part):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    bound.add(node.id)
                elif isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
    return loads - bound


def _borrow_return_allowed(mod: str) -> bool:
    return mod in _BORROW_RETURN_OK_FILES or any(
        mod.startswith(prefix) for prefix in _BORROW_RETURN_OK_PREFIXES
    )


def _returns_under_finally_unpin(func: FunctionNode) -> set[ast.stmt]:
    """Return statements lexically inside a try whose finally unpins.

    Such a return always hands the value out *after* the unpin runs —
    even a still-alive borrow fact at the return node is an escape.
    """
    out: set[ast.stmt] = set()
    for node in ast.walk(func):
        if not (isinstance(node, ast.Try) and node.finalbody):
            continue
        unpins = any(
            isinstance(sub, ast.Call) and _call_attr(sub) == "unpin"
            for fin in node.finalbody
            for sub in ast.walk(fin)
        )
        if not unpins:
            continue
        for body_stmt in node.body:
            for sub in ast.walk(body_stmt):
                if isinstance(sub, ast.Return):
                    out.add(sub)
    return out


@register_rule("EOS007")
def rule_eos007(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """Borrowed view escapes its pin/with scope (store, return, thread).

    A ``memoryview`` from ``view_pages``/``view_run`` or a pinned image
    from ``fetch``/``pool.page(...)`` is only valid while the pin is
    held.  Storing one into ``self.*``/a module global, returning it
    past its ``unpin``/``with`` scope, or capturing it in a closure
    handed to another thread lets it outlive the borrow.
    """
    if mod in _EOS007_EXEMPT:
        return []
    summaries = summarize_module(tree)
    module_globals = _module_globals(tree)
    findings: list[Finding] = []
    for func in _functions(tree):
        cfg = build_cfg(func)
        in_states = solve_forward(
            cfg, {}, _borrow_transfer(cfg, summaries), _join_borrows
        )
        local_defs = {
            stmt.name: stmt
            for stmt in ast.walk(func)
            if isinstance(stmt, _FUNCTION_NODES) and stmt is not func
        }
        finally_returns = _returns_under_finally_unpin(func)
        for node, state in in_states.items():
            if node in (CFG.ENTRY, CFG.EXIT):
                continue
            findings.extend(
                _eos007_check_node(
                    cfg.stmt_of[node],
                    state,
                    summaries,
                    module_globals,
                    mod,
                    local_defs,
                    finally_returns,
                )
            )
    return findings


def _eos007_check_node(
    stmt: ast.stmt,
    state: BorrowState,
    summaries: ModuleSummaries,
    module_globals: frozenset[str],
    mod: str,
    local_defs: dict[str, FunctionNode],
    finally_returns: set[ast.stmt],
) -> list[Finding]:
    findings: list[Finding] = []
    parts = _assign_parts(stmt)
    if parts is not None:
        targets, value = parts
        facts = _borrows(value, state, summaries)
        if facts:
            for target in targets:
                place = _escape_place(target, module_globals)
                if place is not None:
                    findings.append(
                        _finding(
                            stmt,
                            "borrowed view escapes into "
                            f"{place}; copy it (bytes()/materialize) "
                            "or keep it pin-scoped",
                        )
                    )
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        findings.extend(
            _eos007_check_return(
                stmt, state, summaries, mod, finally_returns
            )
        )
    for call in _node_calls(stmt):
        sink = _call_attr(call) or _call_name(call)
        if sink not in _THREAD_SINKS:
            continue
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            captured: set[str] = set()
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    captured |= _free_loads(sub)
            if isinstance(arg, ast.Name) and arg.id in local_defs:
                captured |= _free_loads(local_defs[arg.id])
            borrowed = sorted(
                name for name in captured if state.get(name)
            )
            if borrowed:
                findings.append(
                    _finding(
                        call,
                        "closure handed to another thread captures "
                        f"borrowed view(s) {', '.join(borrowed)}; the "
                        "pin is thread-local — materialize first",
                    )
                )
    return findings


def _eos007_check_return(
    stmt: ast.Return,
    state: BorrowState,
    summaries: ModuleSummaries,
    mod: str,
    finally_returns: set[ast.stmt],
) -> list[Finding]:
    assert stmt.value is not None
    facts = _borrows(stmt.value, state, summaries)
    if not facts:
        return []
    if any(dead for (_kind, _origin, dead) in facts):
        message = (
            "borrowed view returned after its unpin; the frame may be "
            "recycled — materialize before unpinning"
        )
    elif any(origin is not None for (_kind, origin, _dead) in facts):
        message = (
            "borrowed image escapes its with-scope via return; the "
            "context manager unpins before the caller sees it — "
            "materialize inside the with block"
        )
    elif stmt in finally_returns:
        message = (
            "borrowed view returned from inside a try whose finally "
            "unpins it; the unpin runs before the caller sees the "
            "view — materialize first"
        )
    elif not _borrow_return_allowed(mod):
        message = (
            "borrowed view returned from a module outside the "
            "zero-copy data path; materialize it or move the helper "
            "into storage/"
        )
    else:
        return []
    return [_finding(stmt, message)]


def _escape_place(
    target: ast.expr, module_globals: frozenset[str]
) -> str | None:
    if isinstance(target, ast.Attribute):
        return f"attribute .{target.attr}"
    if isinstance(target, ast.Subscript) and isinstance(
        target.value, ast.Attribute
    ):
        return f"container .{target.value.attr}[...]"
    if isinstance(target, ast.Name) and target.id in module_globals:
        return f"module global {target.id}"
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            place = _escape_place(elt, module_globals)
            if place is not None:
                return place
    return None


# ---------------------------------------------------------------------------
# EOS008 — shard confinement
# ---------------------------------------------------------------------------

#: LockManager is internally mutex-protected; the scheduler's lock
#: stage in server.py owns lock admission by design, and sharding.py
#: defines the shard itself.
_LOCKS_OK_MODULES = frozenset({"server/server.py", "server/sharding.py"})
_SHARD_SOURCE_CALLS = frozenset({"shard_for", "pick_for_create"})


def _eos008_in_scope(mod: str) -> bool:
    if mod == "server/sharding.py":
        return False  # the shard's own definition
    return (
        mod == ""
        or mod.startswith("server/")
        or mod.startswith("compact/")
        or mod == "tools/servectl.py"
    )


def _is_shards_collection(expr: ast.AST) -> bool:
    """``X.shards``, ``X.shards[i]``, ``X.live_shards()`` and friends."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "shards":
            return True
        if isinstance(node, ast.Call) and _call_attr(node) == "live_shards":
            return True
    return False


def _collect_shard_names(func: FunctionNode) -> tuple[set[str], set[str]]:
    """(shard handle names, shard-owned database names) in a function.

    Flow-insensitive over definition sites: a name that is ever bound
    to a shard (``Shard(...)``, ``shard_for(...)``, iteration over a
    ``.shards`` collection, or literally named ``shard``) taints every
    use — may-analysis, like everything else here.
    """
    shard_names: set[str] = {"shard"}
    for stmt in ast.walk(func):
        value: ast.expr | None = None
        target_names: list[str] = []
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            for target in stmt.targets:
                target_names.extend(
                    n.id for n in ast.walk(target) if isinstance(n, ast.Name)
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            value = stmt.iter
            target_names.extend(
                n.id
                for n in ast.walk(stmt.target)
                if isinstance(n, ast.Name)
            )
        if value is None or not target_names:
            continue
        is_shard = (
            (isinstance(value, ast.Call) and _call_name(value) == "Shard")
            or (
                isinstance(value, ast.Call)
                and _call_attr(value) in _SHARD_SOURCE_CALLS
            )
            or _is_shards_collection(value)
        )
        if is_shard:
            shard_names.update(target_names)
    shard_db_names: set[str] = set()
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.Assign):
            continue
        pairs: list[tuple[ast.expr, ast.expr]] = []
        for target in stmt.targets:
            if (
                isinstance(target, ast.Tuple)
                and isinstance(stmt.value, ast.Tuple)
                and len(target.elts) == len(stmt.value.elts)
            ):
                pairs.extend(zip(target.elts, stmt.value.elts))
            else:
                pairs.append((target, stmt.value))
        for tgt, val in pairs:
            if (
                isinstance(tgt, ast.Name)
                and isinstance(val, ast.Attribute)
                and val.attr == "db"
                and _is_shard_expr(val.value, shard_names)
            ):
                shard_db_names.add(tgt.id)
    return shard_names, shard_db_names


def _is_shard_expr(expr: ast.AST, shard_names: set[str]) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in shard_names
    if isinstance(expr, ast.Subscript):
        return _is_shards_collection(expr)
    if isinstance(expr, ast.Call):
        return _call_attr(expr) in _SHARD_SOURCE_CALLS
    return False


def _is_shard_db_expr(
    expr: ast.AST, shard_names: set[str], shard_db_names: set[str]
) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in shard_db_names
    if isinstance(expr, ast.Attribute) and expr.attr == "db":
        return _is_shard_expr(expr.value, shard_names)
    return False


def _inside_submit_args(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> bool:
    """Is this expression evaluated as (part of) a ``.submit(...)`` arg?

    Arguments to ``shard.submit`` are references shipped to the worker;
    substrate touched *inside* them (a lambda body) runs worker-side.
    """
    current = node
    while current in parents:
        parent = parents[current]
        if (
            isinstance(parent, ast.Call)
            and _call_attr(parent) == "submit"
            and current is not parent.func
        ):
            return True
        current = parent
    return False


@register_rule("EOS008")
def rule_eos008(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """Shard-owned substrate touched outside the shard's worker thread.

    A shard's ``pool``/``buddy``/``volume``/``disk``/``pager``/
    ``segio`` (and its ``locks``, outside the scheduler) are
    shared-nothing: only the worker thread may touch them.  Route the
    access through ``shard.submit(...)`` — or the snapshot-read pagers,
    which bypass this state entirely.
    """
    if not _eos008_in_scope(mod):
        return []
    summaries = summarize_module(tree)
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    findings: list[Finding] = []
    for func in _functions(tree):
        if func.name in summaries.worker_functions:
            continue  # this function is shipped to the worker
        shard_names, shard_db_names = _collect_shard_names(func)
        for stmt in func.body:
            for node in scoped_walk(stmt):
                if isinstance(node, ast.Attribute):
                    findings.extend(
                        _eos008_check_attribute(
                            node, mod, shard_names, shard_db_names, parents
                        )
                    )
                elif isinstance(node, ast.Call):
                    findings.extend(
                        _eos008_check_call(
                            node,
                            summaries,
                            shard_names,
                            shard_db_names,
                            parents,
                        )
                    )
    return findings


def _eos008_check_attribute(
    node: ast.Attribute,
    mod: str,
    shard_names: set[str],
    shard_db_names: set[str],
    parents: dict[ast.AST, ast.AST],
) -> list[Finding]:
    if node.attr in SUBSTRATE_ATTRS and _is_shard_db_expr(
        node.value, shard_names, shard_db_names
    ):
        if _inside_submit_args(node, parents):
            return []
        return [
            _finding(
                node,
                f"shard-owned substrate .{node.attr} reached outside "
                "the shard worker; route through shard.submit(...) or "
                "the snapshot-read pagers",
            )
        ]
    if (
        node.attr == "locks"
        and mod not in _LOCKS_OK_MODULES
        and _is_shard_expr(node.value, shard_names)
    ):
        if _inside_submit_args(node, parents):
            return []
        return [
            _finding(
                node,
                "shard .locks reached outside the scheduler; lock "
                "admission belongs to the server's lock stage",
            )
        ]
    return []


def _eos008_check_call(
    node: ast.Call,
    summaries: ModuleSummaries,
    shard_names: set[str],
    shard_db_names: set[str],
    parents: dict[ast.AST, ast.AST],
) -> list[Finding]:
    name = _call_name(node)
    if name is None:
        return []
    positions = summaries.substrate_positions(name)
    if not positions:
        return []
    if _inside_submit_args(node, parents):
        return []
    message = (
        f"{name}() walks the substrate of a shard-owned database "
        "off-worker; submit the walk to the owning shard instead"
    )
    findings: list[Finding] = []
    flagged_positions = set(positions.values())
    for index, arg in enumerate(node.args):
        if index in flagged_positions and _is_shard_db_expr(
            arg, shard_names, shard_db_names
        ):
            findings.append(_finding(node, message))
    for kw in node.keywords:
        if kw.arg in positions and _is_shard_db_expr(
            kw.value, shard_names, shard_db_names
        ):
            findings.append(_finding(node, message))
    return findings


# ---------------------------------------------------------------------------
# EOS009 — blocking call in async server code
# ---------------------------------------------------------------------------


def _eos009_in_scope(mod: str) -> bool:
    return mod == "" or mod.startswith("server/") or mod == "tools/servectl.py"


@register_rule("EOS009")
def rule_eos009(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """Blocking call inside ``async def`` server code, no executor hop.

    Disk page I/O, ``LockManager.acquire_*``, ``time.sleep``, ``open``,
    flight-recorder dumps and pool flushes block the whole event loop.
    Hop through ``loop.run_in_executor``/``asyncio.to_thread`` (their
    arguments are function references, never calls, so hopped work is
    naturally exempt) or route the work to a shard worker.  Module-
    local sync helpers are summarized transitively: calling a helper
    that blocks is flagged at the call site.
    """
    if not _eos009_in_scope(mod):
        return []
    summaries = summarize_module(tree)
    findings: list[Finding] = []
    for func in _functions(tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for stmt in func.body:
            for node in scoped_walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                reason = blocking_reason(node)
                if reason is not None:
                    findings.append(
                        _finding(
                            node,
                            f"blocking {reason} on the event loop in "
                            f"async {func.name}(); hop through an "
                            "executor or a shard worker",
                        )
                    )
                    continue
                called = _call_attr(node) or _call_name(node)
                if called is None or called == func.name:
                    continue
                blocked = summaries.blocking(called)
                if blocked is not None:
                    findings.append(
                        _finding(
                            node,
                            f"async {func.name}() calls {called}(), "
                            f"which blocks ({blocked.block_reason}); "
                            "hop through an executor or a shard worker",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# EOS010 — version-unit discipline
# ---------------------------------------------------------------------------

_MUTATORS = frozenset(
    {"append", "insert", "delete", "replace", "destroy", "replace_leaf_range"}
)
_HANDLE_CALLS = frozenset({"get_object", "create_object", "open_root"})
_HANDLE_TYPES = frozenset({"LargeObject", "ObjectFile"})
# Versions-enabled lattice: NONE and SOME join to MAYBE.
_V_NONE, _V_SOME, _V_MAYBE = "none", "some", "maybe"


def _eos010_in_scope(mod: str) -> bool:
    return mod in {"", "api.py"} or mod.startswith("compact/")


def _versions_test(expr: ast.AST) -> tuple[bool, bool] | None:
    """(enabled-when-true, enabled-when-false) for a ``versions`` test.

    Returns what the test proves about "versioning is enabled" on its
    true/false edges, or None when it says nothing about it.
    """
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        inner = _versions_test(expr.operand)
        if inner is not None:
            return (inner[1], inner[0])
        return None
    if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
        left, op, right = expr.left, expr.ops[0], expr.comparators[0]
        tests_versions = (_mentions_versions(left) and _is_none(right)) or (
            _mentions_versions(right) and _is_none(left)
        )
        if tests_versions:
            if isinstance(op, ast.Is):
                return (False, True)  # "versions is None" true => off
            if isinstance(op, ast.IsNot):
                return (True, False)
        return None
    if _mentions_versions(expr):
        return (True, False)  # truthiness: a manager object is truthy
    return None


def _mentions_versions(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Attribute):
        return expr.attr == "versions"
    if isinstance(expr, ast.Name):
        return expr.id == "versions"
    return False


def _is_none(expr: ast.AST) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is None


@register_rule("EOS010")
def rule_eos010(tree: ast.AST, mod: str, lines: list[str]) -> list[Finding]:
    """Object mutation outside a version unit on a versioning path.

    When ``db.versions`` is (or may be) enabled, every mutation must go
    through ``VersionManager.mutate(...)`` so index pages are written
    inside a ``VersionPager`` unit and a frozen version is published.
    Direct ``obj.append/insert/delete/replace/destroy`` is only legal
    on paths where the rule can prove ``versions is None``; callables
    handed to ``mutate(...)`` run inside the unit and are sanctioned.
    """
    if not _eos010_in_scope(mod):
        return []
    summaries = summarize_module(tree)
    findings: list[Finding] = []
    for func in _functions(tree):
        if (
            func.name in summaries.unit_functions
            or func.name in summaries.worker_functions
        ):
            continue  # runs inside a mutate(...) unit by construction
        cfg = build_cfg(func)
        reaching = reaching_definitions(cfg)
        versions_in = _solve_versions(cfg)
        for node in cfg.nodes():
            if node in (CFG.ENTRY, CFG.EXIT) or node not in versions_in:
                continue
            for call in _node_calls(cfg.stmt_of[node]):
                attr = _call_attr(call)
                if attr not in _MUTATORS or not isinstance(
                    call.func, ast.Attribute
                ):
                    continue
                receiver = call.func.value
                if (
                    isinstance(receiver, ast.Attribute)
                    and receiver.attr == "tree"
                ):
                    # ``obj.tree.replace_leaf_range(...)`` relocates
                    # the handle's extents just as surely as
                    # ``obj.replace(...)`` does.
                    receiver = receiver.value
                if not isinstance(receiver, ast.Name):
                    continue
                defs = reaching.get(node, {}).get(receiver.id, frozenset())
                if not _any_handle_def(defs, cfg):
                    continue
                if versions_in[node] == _V_NONE:
                    continue
                qualifier = (
                    "possibly-" if versions_in[node] == _V_MAYBE else ""
                )
                findings.append(
                    _finding(
                        call,
                        f"direct .{attr}() on an object handle on a "
                        f"{qualifier}versioning-enabled path; route "
                        "the mutation through versions.mutate(...) so "
                        "it runs in a VersionPager unit",
                    )
                )
    return findings


def _any_handle_def(defs: frozenset[int], cfg: CFG) -> bool:
    for def_node in defs:
        if def_node == PARAM_DEF:
            continue  # the caller owns parameter handles
        stmt = cfg.stmt_of.get(def_node)
        if stmt is None:
            continue
        parts = _assign_parts(stmt)
        if parts is None:
            continue
        _targets, value = parts
        for sub in scoped_walk(value):
            if isinstance(sub, ast.Call) and (
                _call_attr(sub) in _HANDLE_CALLS
                or _call_name(sub) in _HANDLE_TYPES
            ):
                return True
    return False


def _solve_versions(cfg: CFG) -> dict[int, str]:
    def transfer(node: int, state: str) -> str | tuple[str, dict[int, str]]:
        if node in cfg.branches:
            test = getattr(cfg.stmt_of[node], "test", None)
            if test is not None:
                refined = _versions_test(test)
                if refined is not None:
                    true_entry, false_entry = cfg.branches[node]
                    if true_entry != false_entry:
                        return (
                            state,
                            {
                                true_entry: (
                                    _V_SOME if refined[0] else _V_NONE
                                ),
                                false_entry: (
                                    _V_SOME if refined[1] else _V_NONE
                                ),
                            },
                        )
        return state

    def join(a: str, b: str) -> str:
        return a if a == b else _V_MAYBE

    return solve_forward(cfg, _V_MAYBE, transfer, join)
