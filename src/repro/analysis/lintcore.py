"""The invariant-lint framework: findings, pragmas, file walking, output.

Rules live in :mod:`repro.analysis.rules`; this module supplies the
machinery they share:

* :class:`Finding` — one violation, with machine-readable JSON form;
* **pragmas** — ``# eos-lint: disable=EOS00x`` (or a comma-separated
  list) on a line suppresses those rules for that line; the same pragma
  within the first five lines of a file suppresses them file-wide.
  Every rule must be disablable — an invariant lint that cannot be
  overruled in a justified place becomes an invariant people delete;
* **module identity** — rules like EOS002 (substrate confinement) and
  EOS005 (buddy-state confinement) decide by *where* code lives.  A
  file's module path is its path from the last ``repro/`` component
  (``.../src/repro/core/tree.py`` -> ``core/tree.py``); files outside a
  ``repro`` package get no substrate privileges;
* :func:`lint_paths` — walk files/directories and run every rule;
* :func:`render_text` / :func:`render_json` — the two output formats of
  ``python -m repro.tools.lint``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

_PRAGMA_RE = re.compile(r"#\s*eos-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_PRAGMA_LINES = 5  # a pragma this early applies to the whole file


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, str | int]:
        """The finding as a JSON-serializable dict."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


#: A rule: (tree, module_path, source_lines) -> findings.  ``module_path``
#: is the repro-relative posix path ('' when the file is outside repro).
Rule = Callable[[ast.AST, str, list[str]], list[Finding]]

_RULES: dict[str, Rule] = {}


def register_rule(code: str) -> Callable[[Rule], Rule]:
    """Decorator: add a rule to the registry under its EOS00x code."""

    def wrap(rule: Rule) -> Rule:
        _RULES[code] = rule
        return rule

    return wrap


def registered_rules() -> dict[str, Rule]:
    """All registered rules, keyed by code (loads the rule modules)."""
    # Importing the rule modules populates the registry on first use:
    # rules has the per-statement matchers (EOS001-EOS006), flowrules
    # the CFG/dataflow rules (EOS007-EOS010).
    from repro.analysis import flowrules, rules  # noqa: F401

    return dict(_RULES)


def module_path(path: Path) -> str:
    """The path relative to the innermost ``repro`` package, or ''."""
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1 :])
    return ""


def pragma_disabled(source_lines: list[str]) -> tuple[set[str], dict[int, set[str]]]:
    """Parse pragmas: (file-wide disabled codes, per-line disabled codes)."""
    file_wide: set[str] = set()
    per_line: dict[int, set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _PRAGMA_RE.search(text)
        if not match:
            continue
        codes = {code.strip().upper() for code in match.group(1).split(",")}
        codes.discard("")
        per_line[lineno] = codes
        if lineno <= _FILE_PRAGMA_LINES:
            file_wide |= codes
    return file_wide, per_line


def lint_source(
    source: str, path: Path, *, rules: dict[str, Rule] | None = None
) -> list[Finding]:
    """Lint one file's text; pragma filtering applied."""
    if rules is None:
        rules = registered_rules()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                "EOS000", str(path), exc.lineno or 1, exc.offset or 0,
                f"file does not parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    mod = module_path(path)
    file_wide, per_line = pragma_disabled(lines)
    findings: list[Finding] = []
    for code, rule in sorted(rules.items()):
        if code in file_wide:
            continue
        for finding in rule(tree, mod, lines):
            if code in per_line.get(finding.line, ()):
                continue
            findings.append(
                Finding(code, str(path), finding.line, finding.col, finding.message)
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path], *, rules: dict[str, Rule] | None = None
) -> list[Finding]:
    """Lint every .py file under ``paths``."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            lint_source(path.read_text(encoding="utf-8"), path, rules=rules)
        )
    return findings


def render_text(findings: list[Finding]) -> str:
    """One finding per line, plus a trailing count (or 'clean')."""
    if not findings:
        return "eos-lint: clean"
    lines = [str(finding) for finding in findings]
    lines.append(f"eos-lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable report: findings, per-rule counts, clean flag."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "counts": counts,
            "clean": not findings,
        },
        indent=2,
    )
