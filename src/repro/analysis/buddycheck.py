"""The buddy-directory invariant checker — one core, two consumers.

A buddy-space directory page is internally redundant: the count array
and the allocation map describe the same free list twice, and the
coalescing rules promise a canonical form (paper Section 2.2/3.2).
This module validates all of it and returns *findings* rather than
raising, so the same core serves:

* the **runtime sanitizer** — :class:`~repro.buddy.manager.BuddyManager`
  revalidates a space right after each alloc/free in debug mode and
  raises :class:`~repro.errors.InvariantViolation` on any finding;
* the **on-disk fsck** — :func:`repro.tools.fsck.fsck` runs the same
  checks on every directory page of a saved volume and reports findings
  instead of raising.

Checked invariants:

1. map well-formedness and full coverage — segments tile the space with
   no gaps or overlapping extents (delegated to ``BuddySpace.verify``);
2. utilization accounting — the count array and the map agree on the
   free list (also ``verify``), so ``free_pages()`` is trustworthy;
3. free-list pairing — no two free buddies of equal size coexist:
   deallocation coalesces eagerly ("the buddy of a segment can easily
   be found by simply taking the exclusive OR of the segment address
   with its size"), so an unmerged pair means a free path skipped its
   merge and the space will fragment permanently.

The module deliberately avoids importing :mod:`repro.buddy` — the
manager imports *us*, and the checker only needs the ``verify()`` /
``max_segment_pages`` surface of a space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError


@dataclass
class SpaceCheck:
    """Findings for one buddy space.

    ``segments`` is the decoded segment list when the map decoded at
    all (consumers like fsck walk it); ``None`` when even decoding
    failed.  ``problems`` is empty iff every invariant held.
    """

    segments: list[Any] | None = None
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def check_space(space: Any) -> SpaceCheck:
    """Validate one :class:`~repro.buddy.space.BuddySpace` in memory."""
    check = SpaceCheck()
    try:
        check.segments = space.verify()
    except ReproError as exc:
        check.problems.append(str(exc))
        return check
    # Free-list pairing: eager XOR coalescing must leave no mergeable
    # buddy pair behind.  Segments at the maximum type cannot merge
    # further (the directory page bounds the segment size).
    free = {
        (seg.start, seg.size) for seg in check.segments if not seg.allocated
    }
    for start, size in sorted(free):
        if size >= space.max_segment_pages:
            continue
        buddy = start ^ size
        if buddy > start and (buddy, size) in free:
            check.problems.append(
                f"free buddies at pages {start} and {buddy} (size {size}) "
                f"were left unmerged; coalescing is eager, so a free path "
                f"skipped its merge"
            )
    return check


def check_manager(manager: Any) -> list[str]:
    """Validate every space of a :class:`~repro.buddy.manager.BuddyManager`.

    Also cross-checks the superdirectory: guesses start optimistic and
    are corrected downward on first contact, so a guess *below* the
    space's actual best free segment means an update was lost and the
    allocator will skip a space that could serve requests.
    """
    problems: list[str] = []
    guesses = manager.superdirectory()
    for index in range(manager.volume.n_spaces):
        space = manager.load_space(index)
        check = check_space(space)
        problems.extend(f"space {index}: {p}" for p in check.problems)
        if check.ok and guesses[index] < space.max_free_type():
            problems.append(
                f"space {index}: superdirectory guesses max free type "
                f"{guesses[index]} but the directory holds a free segment of "
                f"type {space.max_free_type()} (lost update; the allocator "
                f"will wrongly skip this space)"
            )
    return problems
