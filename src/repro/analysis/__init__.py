"""Static and dynamic invariant analysis for the EOS reproduction.

EOS's correctness rests on disciplines the type system cannot see:
every buffer-pool pin must be matched by an unpin on all exception
paths, all page I/O must flow through the pager/buffer/segio substrate
(the B-tree and the buddy directory share one page substrate, paper
Section 3), and the buddy directory must stay internally consistent
after every alloc/free (Section 2.2/3).  This package enforces those
disciplines twice over:

* **statically** — an AST linter with repo-specific rules: the
  syntactic EOS001-EOS006 (:mod:`repro.analysis.lintcore`,
  :mod:`repro.analysis.rules`) plus the flow-sensitive EOS007-EOS010
  (:mod:`repro.analysis.flowrules`, on the CFG/dataflow engine in
  :mod:`repro.analysis.cfg`, :mod:`repro.analysis.dataflow` and
  :mod:`repro.analysis.summaries`), run as
  ``python -m repro.tools.lint``;
* **dynamically** — opt-in runtime sanitizers
  (:mod:`repro.analysis.pinleak`, :mod:`repro.analysis.lockorder`,
  :mod:`repro.analysis.buddycheck`, :mod:`repro.analysis.confine`),
  enabled per :class:`~repro.core.config.EOSConfig` flag or the
  ``EOS_SANITIZE`` environment variable (see
  :mod:`repro.analysis.sanitize`).
"""

from repro.analysis.buddycheck import SpaceCheck, check_space
from repro.analysis.confine import ThreadConfinement
from repro.analysis.lintcore import Finding, lint_paths, render_json, render_text
from repro.analysis.lockorder import LockOrderSanitizer
from repro.analysis.pinleak import PinLeakSanitizer
from repro.analysis.sanitize import SanitizerSettings, sanitizers_from_env
from repro.analysis.sarif import render_sarif

__all__ = [
    "Finding",
    "LockOrderSanitizer",
    "PinLeakSanitizer",
    "SanitizerSettings",
    "SpaceCheck",
    "ThreadConfinement",
    "check_space",
    "lint_paths",
    "render_json",
    "render_sarif",
    "render_text",
    "sanitizers_from_env",
]
