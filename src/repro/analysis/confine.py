"""Runtime thread-confinement sanitizer (the dynamic twin of EOS008).

A shard's buffer pool and buddy manager are shared-nothing: after the
shard claims them, only its worker thread may call their entry points
(the lock-free snapshot readers bypass both by design, so they never
trip this).  The static rule EOS008 catches the escapes it can see;
this sanitizer catches the rest at runtime, at the exact substrate
entry point, with both thread names in the error.

Enable with ``EOS_SANITIZE=confinement`` (or
``EOSConfig.sanitize_confinement``).  It is deliberately *not* part of
``EOS_SANITIZE=all``: ownership is claimed for the shard's lifetime,
and tests legitimately adopt a database back after stopping a server —
blanket enablement would flag that teardown pattern, not a bug.
"""

from __future__ import annotations

import threading

from repro.errors import ConfinementViolation

__all__ = ["ThreadConfinement"]


class ThreadConfinement:
    """Ownership tag asserting single-thread access to substrate state.

    A shard claims ownership from its worker thread (``claim()`` in the
    executor initializer); every guarded entry point calls ``check()``.
    ``release()`` — on shard close/kill — returns the substrate to
    unconfined use (e.g. a test adopting the database afterwards).
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self._owner: threading.Thread | None = None

    def claim(self) -> None:
        """Bind ownership to the calling thread."""
        self._owner = threading.current_thread()

    def release(self) -> None:
        """Drop ownership; any thread may touch the substrate again."""
        self._owner = None

    @property
    def owner(self) -> threading.Thread | None:
        """The owning thread, or None while unclaimed/released."""
        return self._owner

    def check(self, entry: str) -> None:
        """Raise unless the calling thread owns the substrate."""
        owner = self._owner
        if owner is None:
            return
        current = threading.current_thread()
        if current is not owner:
            raise ConfinementViolation(
                f"{entry} entered from thread {current.name!r}, but "
                f"{self.label} confines it to worker {owner.name!r}; "
                "route the access through shard.submit(...) or the "
                "snapshot-read pagers (EOS008)"
            )
