"""Per-function control-flow graphs over the Python AST.

The point-matching rules (EOS001-EOS006) ask "does this statement look
right"; the flow rules (EOS007-EOS010) ask "can execution reach this
statement in a bad state", which needs a CFG.  :func:`build_cfg` turns
one ``def``/``async def`` into a statement-level graph:

* every statement is a node (compound statements — ``if``, ``while``,
  ``for``, ``try``, ``with`` — get a node for their header: the test,
  the iterable, the context expression);
* ``ENTRY`` and ``EXIT`` are synthetic nodes 0 and 1;
* loops carry a back edge from the last body statement to the header;
* ``if``/``while`` headers record which successor is the true branch
  (``CFG.branches``), so a dataflow client can refine facts per edge;
* ``try`` is conservative: every statement in the try body may also
  jump to each handler and to the ``finally`` entry (exceptions can
  fire mid-block), the else body runs after a clean body, and handlers
  fall through to the ``finally``;
* ``return`` edges to ``EXIT`` and, when enclosed by a ``try`` with a
  ``finally``, to that finally's entry as well (the finally runs before
  the function actually returns); ``raise`` edges to ``EXIT`` and picks
  up the blanket exceptional edges of any enclosing ``try``;
* nested ``def``/``lambda`` bodies are *not* inlined — a definition is
  one ordinary statement; analyze nested functions with their own CFG.

The graph is deliberately a may-analysis substrate: extra edges are
fine (they only make clients more conservative), missing edges are not.
"""

from __future__ import annotations

import ast

__all__ = ["CFG", "build_cfg", "function_cfgs"]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

_LOOPS = (ast.While, ast.For, ast.AsyncFor)


class CFG:
    """A statement-level control-flow graph for one function."""

    ENTRY = 0
    EXIT = 1

    def __init__(self, function: FunctionNode) -> None:
        self.function = function
        self.succs: dict[int, list[int]] = {self.ENTRY: [], self.EXIT: []}
        self.preds: dict[int, list[int]] = {self.ENTRY: [], self.EXIT: []}
        #: node id -> the statement it models (ENTRY/EXIT have none).
        self.stmt_of: dict[int, ast.stmt] = {}
        #: statement -> node id (header node for compound statements).
        self.node_of: dict[ast.stmt, int] = {}
        #: branch headers (If/While): node -> (true_successor, false_successor).
        self.branches: dict[int, tuple[int, int]] = {}
        self._next = 2

    # -- construction (used by the builder) ---------------------------------

    def add_node(self, stmt: ast.stmt) -> int:
        """Allocate a node for one statement; returns its id."""
        nid = self._next
        self._next += 1
        self.succs[nid] = []
        self.preds[nid] = []
        self.stmt_of[nid] = stmt
        self.node_of[stmt] = nid
        return nid

    def add_edge(self, a: int, b: int) -> None:
        """Add a directed edge a -> b (idempotent)."""
        if b not in self.succs[a]:
            self.succs[a].append(b)
            self.preds[b].append(a)

    # -- queries ------------------------------------------------------------

    def nodes(self) -> list[int]:
        """Every node id, ENTRY and EXIT included."""
        return list(self.succs)

    def back_edges(self) -> set[tuple[int, int]]:
        """Edges (u, v) where v is reachable on a path ENTRY->..->v->..->u."""
        out: set[tuple[int, int]] = set()
        state: dict[int, int] = {}  # 0 = visiting, 1 = done

        def visit(node: int) -> None:
            state[node] = 0
            for succ in self.succs[node]:
                if succ not in state:
                    visit(succ)
                elif state[succ] == 0:
                    out.add((node, succ))
            state[node] = 1

        visit(self.ENTRY)
        return out


class _Builder:
    def __init__(self, function: FunctionNode) -> None:
        self.cfg = CFG(function)
        # (continue target, break target) per enclosing loop.
        self.loops: list[tuple[int, int]] = []
        # Entry node of each enclosing finally block, innermost last.
        self.finallies: list[int] = []

    def build(self) -> CFG:
        entry = self.block(self.cfg.function.body, CFG.EXIT)
        self.cfg.add_edge(CFG.ENTRY, entry)
        return self.cfg

    def block(self, stmts: list[ast.stmt], succ: int) -> int:
        """Wire a statement list; returns the entry node (succ if empty)."""
        nxt = succ
        for stmt in reversed(stmts):
            nxt = self.stmt(stmt, nxt)
        return nxt

    def stmt(self, stmt: ast.stmt, succ: int) -> int:
        cfg = self.cfg
        nid = cfg.add_node(stmt)
        if isinstance(stmt, ast.If):
            true_entry = self.block(stmt.body, succ)
            false_entry = self.block(stmt.orelse, succ)
            cfg.add_edge(nid, true_entry)
            cfg.add_edge(nid, false_entry)
            cfg.branches[nid] = (true_entry, false_entry)
        elif isinstance(stmt, _LOOPS):
            exit_entry = self.block(stmt.orelse, succ)
            self.loops.append((nid, succ))
            body_entry = self.block(stmt.body, nid)  # back edge via continuation
            self.loops.pop()
            cfg.add_edge(nid, body_entry)
            cfg.add_edge(nid, exit_entry)
            if isinstance(stmt, ast.While):
                cfg.branches[nid] = (body_entry, exit_entry)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.add_edge(nid, self.block(stmt.body, succ))
        elif isinstance(stmt, ast.Try):
            fin_entry = (
                self.block(stmt.finalbody, succ) if stmt.finalbody else succ
            )
            handler_entries = [
                self.block(handler.body, fin_entry)
                for handler in stmt.handlers
            ]
            after_body = (
                self.block(stmt.orelse, fin_entry) if stmt.orelse else fin_entry
            )
            if stmt.finalbody:
                self.finallies.append(fin_entry)
            body_entry = self.block(stmt.body, after_body)
            if stmt.finalbody:
                self.finallies.pop()
            cfg.add_edge(nid, body_entry)
            # Any statement of the try body may raise mid-block: give each
            # an edge to every handler and to the finally.  Extra paths
            # only make may-analyses more conservative.
            body_nodes = [
                cfg.node_of[s]
                for body_stmt in stmt.body
                for s in ast.walk(body_stmt)
                if isinstance(s, ast.stmt) and s in cfg.node_of
            ]
            for body_node in [nid] + body_nodes:
                for handler_entry in handler_entries:
                    cfg.add_edge(body_node, handler_entry)
                if stmt.finalbody:
                    cfg.add_edge(body_node, fin_entry)
        elif isinstance(stmt, ast.Return):
            cfg.add_edge(nid, CFG.EXIT)
            if self.finallies:
                cfg.add_edge(nid, self.finallies[-1])
        elif isinstance(stmt, ast.Raise):
            cfg.add_edge(nid, CFG.EXIT)
            if self.finallies:
                cfg.add_edge(nid, self.finallies[-1])
        elif isinstance(stmt, ast.Break):
            cfg.add_edge(nid, self.loops[-1][1] if self.loops else CFG.EXIT)
        elif isinstance(stmt, ast.Continue):
            cfg.add_edge(nid, self.loops[-1][0] if self.loops else CFG.EXIT)
        elif isinstance(stmt, ast.Match):
            for case in stmt.cases:
                cfg.add_edge(nid, self.block(case.body, succ))
            cfg.add_edge(nid, succ)  # no case may match
        else:
            # Simple statements — and nested def/class, whose bodies are
            # not part of this function's flow.
            cfg.add_edge(nid, succ)
        return nid


def build_cfg(function: FunctionNode) -> CFG:
    """The statement-level CFG of one function definition."""
    return _Builder(function).build()


def function_cfgs(tree: ast.AST) -> list[CFG]:
    """A CFG per function in the tree, nested functions included."""
    return [
        build_cfg(node)
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
