"""Module-local call graph and one-level function summaries.

The flow rules are intraprocedural, but most real violations hide one
call away: ``async`` code calling a sync helper that dumps the flight
recorder, or the metrics walker handing ``shard.db`` to a function that
pokes its buffer pool.  This module computes just enough interprocedural
context to catch those without whole-program analysis:

* a **call graph** over the functions of one module (edges by bare
  callee name — receivers are ignored, so ``self._incident()`` links to
  ``_incident``);
* a **may-block** bit per sync function, seeded by direct blocking
  primitives (disk page I/O, ``LockManager.acquire_*``, ``time.sleep``,
  ``open``, flight-recorder dumps, pool flushes) and closed transitively
  over module-local calls (EOS009);
* **substrate parameters**: which parameters of a function have shard
  substrate attributes (``pool``/``buddy``/``volume``/...) touched on
  them, so a call passing ``shard.db`` can be flagged one level deep
  (EOS008);
* a **returns-borrowed** bit for functions whose return value is a
  zero-copy view straight from ``view_pages``/``view_run`` (EOS007
  treats calls to them as borrow sources);
* **worker/unit executor sets**: functions and lambdas handed to
  ``Shard.submit(...)`` run on the shard worker thread (sanctioned for
  EOS008), and ones handed to ``VersionManager.mutate(...)`` run inside
  a version unit (sanctioned for EOS010).

Cross-module calls stay opaque on purpose: the one-level summaries are
a precision/soundness trade documented in INTERNALS.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow import scoped_walk

__all__ = [
    "FunctionSummary",
    "ModuleSummaries",
    "summarize_module",
    "blocking_reason",
    "SUBSTRATE_ATTRS",
    "BORROW_VIEW_SOURCES",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Shard-owned substrate attributes (EOS008): reaching one of these on a
#: shard's database outside its worker thread breaks shared-nothing.
SUBSTRATE_ATTRS = frozenset(
    {"pool", "buddy", "volume", "disk", "pager", "segio"}
)
#: Methods on the database facade that walk substrate state directly.
SUBSTRATE_METHODS = frozenset({"free_pages"})

#: Calls that hand out a zero-copy view over pool/disk-owned memory.
BORROW_VIEW_SOURCES = frozenset({"view_pages", "view_run"})

_BLOCKING_ATTRS = frozenset(
    {
        # Disk page I/O (DiskVolume / SegmentIO primitives).
        "read_page",
        "write_page",
        "read_pages",
        "write_pages",
        "write_pages_v",
        "read_span",
        # LockManager acquisition (can wait on a contended range).
        "acquire_root",
        "acquire_range",
        "acquire_release_lock",
        # Pool/database flushing walks frames and writes pages.
        "flush_page",
        "flush_all",
        "checkpoint",
        "fsync",
    }
)
_FLIGHT_DUMPS = frozenset({"dump", "maybe_dump"})


def _mentions(expr: ast.AST, word: str) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id == word:
            return True
        if isinstance(node, ast.Attribute) and node.attr == word:
            return True
    return False


def blocking_reason(call: ast.Call) -> str | None:
    """Why this call blocks the calling thread, or None if it doesn't."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open()"
    if not isinstance(func, ast.Attribute):
        return None
    if (
        func.attr == "sleep"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return "time.sleep()"
    if func.attr in _BLOCKING_ATTRS:
        return f".{func.attr}()"
    if func.attr in _FLIGHT_DUMPS and _mentions(func.value, "flight"):
        return f"flight recorder .{func.attr}()"
    return None


@dataclass
class FunctionSummary:
    """One-level facts about a single module-local function."""

    name: str
    node: FunctionNode
    is_async: bool
    #: Bare names of everything this function calls (receivers ignored).
    calls: frozenset[str]
    #: Direct blocking primitive in the body, if any.
    direct_block: str | None
    #: Closed over module-local calls; async callees don't propagate
    #: (awaiting them yields the loop instead of blocking it).
    may_block: bool = False
    #: Explains may_block: "<primitive>" or "calls <name>, which blocks".
    block_reason: str = ""
    #: Returns a zero-copy borrowed view (one syntactic level deep).
    returns_borrowed: bool = False
    #: Names of parameters whose substrate attributes the body touches.
    substrate_params: frozenset[str] = frozenset()

    def param_names(self) -> list[str]:
        """Positional parameter names, in declaration order."""
        args = self.node.args
        return [
            a.arg for a in (list(args.posonlyargs) + list(args.args))
        ]


@dataclass
class ModuleSummaries:
    """Summaries for every function of one module, keyed by bare name.

    Name collisions (same method name on two classes) keep every
    definition; queries answer conservatively over all of them.
    """

    by_name: dict[str, list[FunctionSummary]] = field(default_factory=dict)
    #: Functions/lambdas that run on a shard worker (``.submit`` args).
    worker_functions: set[str] = field(default_factory=set)
    worker_lambdas: set[ast.Lambda] = field(default_factory=set)
    #: Functions/lambdas that run inside a version unit (``.mutate`` args).
    unit_functions: set[str] = field(default_factory=set)
    unit_lambdas: set[ast.Lambda] = field(default_factory=set)

    def blocking(self, name: str) -> FunctionSummary | None:
        """A sync module-local function by this name that may block."""
        for summary in self.by_name.get(name, []):
            if not summary.is_async and summary.may_block:
                return summary
        return None

    def substrate_positions(self, name: str) -> dict[str, int]:
        """Substrate parameter name -> positional index, over all defs."""
        positions: dict[str, int] = {}
        for summary in self.by_name.get(name, []):
            params = summary.param_names()
            for pname in summary.substrate_params:
                if pname in params:
                    positions[pname] = params.index(pname)
        return positions

    def returns_borrowed(self, name: str) -> bool:
        """Does any function by this name return a borrowed view?"""
        return any(s.returns_borrowed for s in self.by_name.get(name, []))


def _body_nodes(func: FunctionNode) -> list[ast.AST]:
    """Every AST node of the function body, nested scopes excluded."""
    out: list[ast.AST] = []
    for stmt in func.body:
        out.extend(scoped_walk(stmt))
    return out


def _summarize_function(func: FunctionNode) -> FunctionSummary:
    calls: set[str] = set()
    direct_block: str | None = None
    params = {
        a.arg
        for a in (
            list(func.args.posonlyargs)
            + list(func.args.args)
            + list(func.args.kwonlyargs)
        )
    }
    substrate_params: set[str] = set()
    returns_borrowed = False
    for node in _body_nodes(func):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                calls.add(node.func.id)
            elif isinstance(node.func, ast.Attribute):
                calls.add(node.func.attr)
            if direct_block is None:
                direct_block = blocking_reason(node)
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            base = node.value.id
            if base in params and (
                node.attr in SUBSTRATE_ATTRS or node.attr in SUBSTRATE_METHODS
            ):
                substrate_params.add(base)
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in scoped_walk(node.value):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in BORROW_VIEW_SOURCES
                ):
                    returns_borrowed = True
    return FunctionSummary(
        name=func.name,
        node=func,
        is_async=isinstance(func, ast.AsyncFunctionDef),
        calls=frozenset(calls),
        direct_block=direct_block,
        returns_borrowed=returns_borrowed,
        substrate_params=frozenset(substrate_params),
    )


def _collect_executor_args(
    tree: ast.AST, method: str, names: set[str], lambdas: set[ast.Lambda]
) -> None:
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
        ):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                lambdas.add(arg)
            elif isinstance(arg, ast.Name):
                names.add(arg.id)
            elif isinstance(arg, ast.Attribute):
                names.add(arg.attr)
            # A lambda *inside* a larger arg expression still runs on
            # the executor (e.g. wrapped in functools.partial).
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    lambdas.add(sub)


def summarize_module(tree: ast.AST) -> ModuleSummaries:
    """Summarize every function in a module and close may-block facts."""
    summaries = ModuleSummaries()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary = _summarize_function(node)
            summaries.by_name.setdefault(node.name, []).append(summary)
    # Transitive may-block over the module-local call graph.  Seeds are
    # direct primitives; only sync callees propagate.
    for group in summaries.by_name.values():
        for summary in group:
            if summary.direct_block is not None:
                summary.may_block = True
                summary.block_reason = summary.direct_block
    changed = True
    while changed:
        changed = False
        for group in summaries.by_name.values():
            for summary in group:
                if summary.may_block:
                    continue
                for callee in summary.calls:
                    blocked = summaries.blocking(callee)
                    if blocked is not None and callee != summary.name:
                        summary.may_block = True
                        summary.block_reason = (
                            f"calls {callee}(), which blocks via "
                            f"{blocked.block_reason}"
                        )
                        changed = True
                        break
    _collect_executor_args(
        tree, "submit", summaries.worker_functions, summaries.worker_lambdas
    )
    _collect_executor_args(
        tree, "mutate", summaries.unit_functions, summaries.unit_lambdas
    )
    return summaries
